//! The end-to-end analysis pipeline: parse -> rough solve -> feature
//! fusion -> model inference.

use crate::cache::{design_fingerprint, FeatureCache};
use crate::config::FusionConfig;
use crate::train::TrainedModel;
use irf_data::golden::golden_drops;
use irf_data::Design;
use irf_features::{FeatureExtractor, FeatureStack};
use irf_metrics::Timer;
use irf_nn::{Tape, Tensor};
use irf_pg::{GridMap, ModelError, PowerGrid, Rasterizer};
use irf_sparse::{SolveReport, Solver};
use irf_spice::Netlist;
use std::sync::Arc;

/// A design prepared up to (but excluding) the golden label: feature
/// stack, rough numerical map, and the solve report behind it.
///
/// This is the label-free unit of work the [`FeatureCache`] stores and
/// the serving layer batches: everything needed for inference, nothing
/// that requires the golden solution.
#[derive(Debug, Clone)]
pub struct PreparedStack {
    /// Extracted feature maps.
    pub features: FeatureStack,
    /// Rough bottom-layer drop map from the truncated solve (volts).
    pub rough: GridMap,
    /// Report of the truncated solve.
    pub solve_report: SolveReport,
    /// Seconds spent in the truncated numerical solve.
    pub solve_seconds: f64,
    /// Seconds spent extracting features.
    pub feature_seconds: f64,
}

impl PreparedStack {
    /// Features as a `(1, C, H, W)` tensor.
    #[must_use]
    pub fn feature_tensor(&self) -> Tensor {
        let (c, h, w, data) = self.features.to_nchw();
        Tensor::from_vec([1, c, h, w], data)
    }
}

/// A design prepared for training or inference: feature stack plus
/// golden label map.
#[derive(Debug, Clone)]
pub struct PreparedSample {
    /// Extracted feature maps.
    pub features: FeatureStack,
    /// Golden bottom-layer drop map (volts).
    pub label: GridMap,
    /// Rough bottom-layer drop map from the truncated solve (volts) —
    /// the base the residual fusion corrects.
    pub rough: GridMap,
    /// Seconds spent in the truncated numerical solve.
    pub solve_seconds: f64,
    /// Seconds spent extracting features.
    pub feature_seconds: f64,
}

impl PreparedSample {
    /// Rotated copy (augmentation).
    #[must_use]
    pub fn rotated(&self, quarters: u32) -> PreparedSample {
        PreparedSample {
            features: self.features.rotated(quarters),
            label: self.label.rotated(quarters),
            rough: self.rough.rotated(quarters),
            solve_seconds: self.solve_seconds,
            feature_seconds: self.feature_seconds,
        }
    }

    /// Features as a `(1, C, H, W)` tensor.
    #[must_use]
    pub fn feature_tensor(&self) -> Tensor {
        let (c, h, w, data) = self.features.to_nchw();
        Tensor::from_vec([1, c, h, w], data)
    }

    /// Label as a `(1, 1, H, W)` tensor, scaled by `scale`.
    #[must_use]
    pub fn label_tensor(&self, scale: f32) -> Tensor {
        let data = self.label.data().iter().map(|v| v * scale).collect();
        Tensor::from_vec([1, 1, self.label.height(), self.label.width()], data)
    }

    /// Residual target `(label - rough) * scale` as a `(1, 1, H, W)`
    /// tensor — what the fusion model learns to predict.
    #[must_use]
    pub fn residual_tensor(&self, scale: f32) -> Tensor {
        let data = self
            .label
            .data()
            .iter()
            .zip(self.rough.data())
            .map(|(l, r)| (l - r) * scale)
            .collect();
        Tensor::from_vec([1, 1, self.label.height(), self.label.width()], data)
    }
}

/// Result of one full analysis.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The rough numerical drop map (bottom layer) after the truncated
    /// solve — what a pure numerical flow at the same budget reports.
    pub rough_map: GridMap,
    /// The model-refined prediction, if a trained model was supplied.
    pub fused_map: Option<GridMap>,
    /// Report of the truncated solve.
    pub solve_report: SolveReport,
    /// Total wall-clock seconds (solve + features + inference).
    pub runtime_seconds: f64,
}

/// The IR-Fusion pipeline. See the crate-level example.
#[derive(Debug, Clone)]
pub struct IrFusionPipeline {
    config: FusionConfig,
    cache: Option<Arc<FeatureCache>>,
}

impl IrFusionPipeline {
    /// Creates a pipeline. The configured `num_threads` is applied to
    /// the global parallel runtime (`0` = auto; see
    /// [`FusionConfig::num_threads`]).
    #[must_use]
    pub fn new(config: FusionConfig) -> Self {
        irf_runtime::set_num_threads(config.num_threads);
        IrFusionPipeline {
            config,
            cache: None,
        }
    }

    /// Attaches a feature-stack cache: subsequent
    /// [`IrFusionPipeline::prepare_stack_cached`] calls (and everything
    /// built on them — `prepare`, `prepare_all`, `analyze_grid`) reuse
    /// previously prepared stacks for identical designs.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<FeatureCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached feature-stack cache, if any.
    #[must_use]
    pub fn cache(&self) -> Option<&Arc<FeatureCache>> {
        self.cache.as_ref()
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &FusionConfig {
        &self.config
    }

    /// Runs the truncated AMG-PCG solve, returning per-node drops.
    #[must_use]
    pub fn rough_solution(&self, grid: &PowerGrid) -> (Vec<f64>, SolveReport) {
        let _span = irf_trace::span("rough_solve");
        let system = grid.build_system();
        let report = Solver::new(self.config.solver_kind)
            .with_amg_params(self.config.amg)
            .with_tolerance(1e-12) // iteration budget is the only stop
            .with_max_iterations(self.config.solver_iterations)
            .solve(&system.matrix, &system.rhs);
        let drops = system.expand_solution(&report.x);
        (drops, report)
    }

    /// Prepares a labelled design (training path).
    #[must_use]
    pub fn prepare(&self, design: &Design) -> PreparedSample {
        self.prepare_grid(&design.grid, &design.golden)
    }

    /// Prepares every design concurrently (one task per design; the
    /// parallel kernels inside each run inline on the task's thread).
    /// Output order matches input order, and each sample is bitwise
    /// identical to what a serial [`IrFusionPipeline::prepare`] yields.
    #[must_use]
    pub fn prepare_all(&self, designs: &[Design]) -> Vec<PreparedSample> {
        let tasks: Vec<_> = designs.iter().map(|d| move || self.prepare(d)).collect();
        irf_runtime::par_map(tasks)
    }

    /// Prepares the label-free part of a design: truncated solve,
    /// feature extraction, rough bottom-layer map.
    #[must_use]
    pub fn prepare_stack(&self, grid: &PowerGrid) -> PreparedStack {
        let extractor = FeatureExtractor::new(self.config.feature);
        let ((drops, solve_report), solve_seconds) = Timer::time(|| self.rough_solution(grid));
        let (features, feature_seconds) = Timer::time(|| {
            // The "w/o Num. Solu." ablation zeroes the numerical
            // channels by disabling them in the config instead.
            extractor.extract(grid, &drops)
        });
        let registry = irf_trace::registry();
        registry.counter_add(
            "irf_stage_seconds_total",
            &[("stage", "rough_solve")],
            solve_seconds,
        );
        registry.counter_add(
            "irf_stage_seconds_total",
            &[("stage", "features")],
            feature_seconds,
        );
        let raster = extractor.rasterizer(grid);
        let rough = irf_features::solution::bottom_layer_solution_map(grid, &drops, &raster);
        PreparedStack {
            features,
            rough,
            solve_report,
            solve_seconds,
            feature_seconds,
        }
    }

    /// [`IrFusionPipeline::prepare_stack`] through the attached
    /// [`FeatureCache`] (a plain uncached call when none is attached).
    ///
    /// The key is [`design_fingerprint`], which covers the grid content
    /// and every preparation-relevant configuration field, so a hit is
    /// bitwise identical to a fresh preparation.
    /// Concurrent misses on the same design are single-flighted: one
    /// caller prepares, the rest wait and share the result (see
    /// [`FeatureCache::get_or_compute`]).
    #[must_use]
    pub fn prepare_stack_cached(&self, grid: &PowerGrid) -> Arc<PreparedStack> {
        let Some(cache) = &self.cache else {
            return Arc::new(self.prepare_stack(grid));
        };
        let key = design_fingerprint(grid, &self.config);
        cache.get_or_compute(key, || Arc::new(self.prepare_stack(grid)))
    }

    /// Prepares a grid with a supplied golden solution.
    ///
    /// # Panics
    ///
    /// Panics if `golden.len() != grid.nodes.len()`.
    #[must_use]
    pub fn prepare_grid(&self, grid: &PowerGrid, golden: &[f64]) -> PreparedSample {
        let stack = self.prepare_stack_cached(grid);
        let extractor = FeatureExtractor::new(self.config.feature);
        let raster = extractor.rasterizer(grid);
        let label = irf_features::solution::bottom_layer_solution_map(grid, golden, &raster);
        PreparedSample {
            features: stack.features.clone(),
            label,
            rough: stack.rough.clone(),
            solve_seconds: stack.solve_seconds,
            feature_seconds: stack.feature_seconds,
        }
    }

    /// Analyzes a netlist end to end (inference path). Pass a trained
    /// `model` to get the fused prediction; without one, only the
    /// rough numerical map is produced.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] when the netlist does not describe a
    /// valid power grid.
    pub fn analyze_netlist(&self, netlist: &Netlist) -> Result<Analysis, ModelError> {
        let grid = PowerGrid::from_netlist(netlist)?;
        Ok(self.analyze_grid(&grid, None))
    }

    /// Analyzes a grid, optionally refining with a trained model.
    ///
    /// In residual mode (the fusion default), the model's signed
    /// correction is added to the rough numerical map and the result
    /// clamped at zero; in absolute mode the model output *is* the
    /// prediction. When a [`FeatureCache`] is attached, the solve +
    /// feature stage is served from it for repeated designs.
    #[must_use]
    pub fn analyze_grid(&self, grid: &PowerGrid, model: Option<&TrainedModel>) -> Analysis {
        let _span = irf_trace::span("analyze_grid");
        let mut timer = Timer::new();
        timer.start();
        // Pure-ML baselines (absolute prediction, no numerical feature
        // channels) never consume the solver output, so they do not
        // pay for it — keeping the runtime column honest. Everything
        // else runs the truncated solve (through the cache, if any).
        let needs_solve = self.config.feature.numerical || model.is_none_or(|t| t.residual);
        let stack = if needs_solve {
            self.prepare_stack_cached(grid)
        } else {
            let extractor = FeatureExtractor::new(self.config.feature);
            let drops = vec![0.0; grid.nodes.len()];
            let features = extractor.extract(grid, &drops);
            let raster = extractor.rasterizer(grid);
            let rough = irf_features::solution::bottom_layer_solution_map(grid, &drops, &raster);
            Arc::new(PreparedStack {
                features,
                rough,
                solve_report: SolveReport {
                    x: Vec::new(),
                    converged: false,
                    iterations: 0,
                    residual: f64::INFINITY,
                    setup_seconds: 0.0,
                    solve_seconds: 0.0,
                    trace: irf_sparse::cg::ConvergenceTrace::default(),
                },
                solve_seconds: 0.0,
                feature_seconds: 0.0,
            })
        };
        let fused_map = model.map(|trained| self.predict(trained, &stack));
        timer.stop();
        Analysis {
            rough_map: stack.rough.clone(),
            fused_map,
            solve_report: stack.solve_report.clone(),
            runtime_seconds: timer.seconds(),
        }
    }

    /// Runs model inference on one prepared stack, applying the
    /// residual (or absolute) postprocessing.
    ///
    /// Equivalent to `predict_batch(trained, &[stack])[0]`, bit for
    /// bit.
    #[must_use]
    pub fn predict(&self, trained: &TrainedModel, stack: &PreparedStack) -> GridMap {
        self.predict_batch(trained, &[stack])
            .pop()
            .expect("predict_batch returns one map per stack")
    }

    /// Runs ONE batched forward pass over `stacks` and postprocesses
    /// each sample against its own rough map.
    ///
    /// The batched pass is bitwise identical to calling
    /// [`IrFusionPipeline::predict`] on each stack sequentially, at any
    /// thread count: every tape operation computes per-sample values
    /// with the same serial inner loops regardless of batch size. This
    /// is the contract the serving layer's micro-batching relies on
    /// (and what `tests/integration_batch.rs` asserts).
    ///
    /// # Panics
    ///
    /// Panics if the stacks disagree on feature shape.
    #[must_use]
    pub fn predict_batch(&self, trained: &TrainedModel, stacks: &[&PreparedStack]) -> Vec<GridMap> {
        if stacks.is_empty() {
            return Vec::new();
        }
        let mut span = irf_trace::span("nn_forward");
        span.attr("batch", stacks.len());
        let inputs: Vec<Tensor> = stacks.iter().map(|s| s.feature_tensor()).collect();
        let batched = Tensor::concat_batch(&inputs);
        let [_, _, h, w] = batched.shape();
        let mut tape = Tape::new();
        let x = tape.input(batched);
        let y = trained.model.forward(&mut tape, &trained.store, x);
        let pred = tape.value(y);
        drop(span);
        let scale = trained.label_scale;
        let inv = if scale > 0.0 { 1.0 / scale } else { 1.0 };
        pred.split_batch()
            .iter()
            .zip(stacks)
            .map(|(sample, stack)| {
                if trained.residual {
                    let data = sample
                        .data()
                        .iter()
                        .zip(stack.rough.data())
                        .map(|(corr, rough)| (rough + corr * inv).max(0.0))
                        .collect();
                    GridMap::from_vec(w, h, data)
                } else {
                    GridMap::from_vec(w, h, sample.data().iter().map(|v| v * inv).collect())
                }
            })
            .collect()
    }

    /// Golden analysis via the exact direct solver (for labels and
    /// verification).
    #[must_use]
    pub fn golden_map(&self, grid: &PowerGrid) -> GridMap {
        let extractor = FeatureExtractor::new(self.config.feature);
        let raster: Rasterizer = extractor.rasterizer(grid);
        let drops = golden_drops(grid);
        irf_features::solution::bottom_layer_solution_map(grid, &drops, &raster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FusionConfig;
    use irf_data::{synthesize, SynthSpec};
    use irf_metrics::mae;

    fn pipeline() -> IrFusionPipeline {
        IrFusionPipeline::new(FusionConfig::tiny())
    }

    fn grid() -> PowerGrid {
        PowerGrid::from_netlist(&synthesize(&SynthSpec::default())).expect("valid grid")
    }

    #[test]
    fn rough_solution_respects_iteration_budget() {
        let p = pipeline();
        let (drops, report) = p.rough_solution(&grid());
        assert_eq!(report.iterations, 2);
        assert_eq!(drops.len(), grid().nodes.len());
    }

    #[test]
    fn more_iterations_approach_golden() {
        let g = grid();
        let golden = golden_drops(&g);
        let mut cfg = FusionConfig::tiny();
        let err_at = |k: usize, cfg: &mut FusionConfig| {
            cfg.solver_iterations = k;
            let p = IrFusionPipeline::new(*cfg);
            let (drops, _) = p.rough_solution(&g);
            drops
                .iter()
                .zip(&golden)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max)
        };
        let e2 = err_at(2, &mut cfg);
        let e8 = err_at(8, &mut cfg);
        assert!(e8 < e2, "k=8 ({e8:e}) should beat k=2 ({e2:e})");
    }

    #[test]
    fn prepare_produces_consistent_shapes() {
        let p = pipeline();
        let design = irf_data::Design::fake(1);
        let sample = p.prepare(&design);
        let (c, h, w, _) = sample.features.to_nchw();
        assert_eq!((h, w), (16, 16));
        assert_eq!(c, p.config().feature_channels(3));
        assert_eq!(sample.label.width(), 16);
        assert!(sample.label.max() > 0.0);
    }

    #[test]
    fn analyze_without_model_gives_rough_map_only() {
        let p = pipeline();
        let netlist = synthesize(&SynthSpec::default());
        let a = p.analyze_netlist(&netlist).expect("valid");
        assert!(a.fused_map.is_none());
        assert!(a.rough_map.max() > 0.0);
        assert!(a.runtime_seconds > 0.0);
    }

    #[test]
    fn rough_map_is_a_reasonable_estimate() {
        // Even at k=2 the rough map should correlate with golden.
        let p = pipeline();
        let g = grid();
        let a = p.analyze_grid(&g, None);
        let golden = p.golden_map(&g);
        let err = mae(a.rough_map.data(), golden.data());
        assert!(
            err < f64::from(golden.max()),
            "rough map error {err} should be below the peak drop"
        );
    }

    #[test]
    fn label_tensor_applies_scale() {
        let p = pipeline();
        let sample = p.prepare(&irf_data::Design::fake(2));
        let t1 = sample.label_tensor(1.0);
        let t100 = sample.label_tensor(100.0);
        let r = t100.data()[0] / t1.data()[0].max(1e-30);
        assert!(t1.data()[0] == 0.0 || (r - 100.0).abs() < 1e-3);
    }
}
