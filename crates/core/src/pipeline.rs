//! The end-to-end analysis pipeline: parse -> rough solve -> feature
//! fusion -> model inference, decomposed into the stage graph of
//! [`crate::stages`] and cached per stage in a [`StageStore`].

use crate::config::FusionConfig;
use crate::stages::{
    apply_topology_deltas, design_fingerprint, warm_stage_fingerprint, EditError, Prediction,
    RoughSolution, StagePlan, TopologyDelta,
};
use crate::store::StageStore;
use crate::train::TrainedModel;
use irf_data::golden::golden_drops;
use irf_data::Design;
use irf_features::{FeatureError, FeatureExtractor, FeatureStack};
use irf_metrics::Timer;
use irf_nn::{Tape, Tensor};
use irf_pg::{GridMap, Load, ModelError, PgStructure, PowerGrid, Rasterizer};
use irf_sparse::{SolveReport, Solver, SolverSetup};
use irf_spice::Netlist;
use std::sync::Arc;

/// A design prepared up to (but excluding) the golden label: feature
/// stack, rough numerical map, and the solve report behind it.
///
/// This is the label-free unit of work the [`StageStore`] stores under
/// [`crate::stages::Stage::Stack`] and the serving layer batches:
/// everything needed for inference, nothing that requires the golden
/// solution.
#[derive(Debug, Clone)]
pub struct PreparedStack {
    /// The [`design_fingerprint`] this stack was prepared under — the
    /// key it lives under in the stage store.
    pub fingerprint: u64,
    /// Extracted feature maps.
    pub features: FeatureStack,
    /// Rough bottom-layer drop map from the truncated solve (volts).
    pub rough: GridMap,
    /// Report of the truncated solve.
    pub solve_report: SolveReport,
    /// Seconds spent in the truncated numerical solve.
    pub solve_seconds: f64,
    /// Seconds spent extracting features.
    pub feature_seconds: f64,
}

impl PreparedStack {
    /// Features as a `(1, C, H, W)` tensor.
    #[must_use]
    pub fn feature_tensor(&self) -> Tensor {
        let (c, h, w, data) = self.features.to_nchw();
        Tensor::from_vec([1, c, h, w], data)
    }
}

/// A design prepared for training or inference: feature stack plus
/// golden label map.
#[derive(Debug, Clone)]
pub struct PreparedSample {
    /// Extracted feature maps.
    pub features: FeatureStack,
    /// Golden bottom-layer drop map (volts).
    pub label: GridMap,
    /// Rough bottom-layer drop map from the truncated solve (volts) —
    /// the base the residual fusion corrects.
    pub rough: GridMap,
    /// Seconds spent in the truncated numerical solve.
    pub solve_seconds: f64,
    /// Seconds spent extracting features.
    pub feature_seconds: f64,
}

impl PreparedSample {
    /// Rotated copy (augmentation).
    #[must_use]
    pub fn rotated(&self, quarters: u32) -> PreparedSample {
        PreparedSample {
            features: self.features.rotated(quarters),
            label: self.label.rotated(quarters),
            rough: self.rough.rotated(quarters),
            solve_seconds: self.solve_seconds,
            feature_seconds: self.feature_seconds,
        }
    }

    /// Features as a `(1, C, H, W)` tensor.
    #[must_use]
    pub fn feature_tensor(&self) -> Tensor {
        let (c, h, w, data) = self.features.to_nchw();
        Tensor::from_vec([1, c, h, w], data)
    }

    /// Label as a `(1, 1, H, W)` tensor, scaled by `scale`.
    #[must_use]
    pub fn label_tensor(&self, scale: f32) -> Tensor {
        let data = self.label.data().iter().map(|v| v * scale).collect();
        Tensor::from_vec([1, 1, self.label.height(), self.label.width()], data)
    }

    /// Residual target `(label - rough) * scale` as a `(1, 1, H, W)`
    /// tensor — what the fusion model learns to predict.
    #[must_use]
    pub fn residual_tensor(&self, scale: f32) -> Tensor {
        let data = self
            .label
            .data()
            .iter()
            .zip(self.rough.data())
            .map(|(l, r)| (l - r) * scale)
            .collect();
        Tensor::from_vec([1, 1, self.label.height(), self.label.width()], data)
    }
}

/// Result of one full analysis.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The rough numerical drop map (bottom layer) after the truncated
    /// solve — what a pure numerical flow at the same budget reports.
    pub rough_map: GridMap,
    /// The model-refined prediction, if a trained model was supplied.
    pub fused_map: Option<GridMap>,
    /// Report of the truncated solve.
    pub solve_report: SolveReport,
    /// Total wall-clock seconds (solve + features + inference).
    pub runtime_seconds: f64,
}

/// How a [`FeatureStackBuilder`] or [`AnalysisSession`] interacts
/// with the pipeline's attached [`StageStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Use the attached cache (single-flighted); a plain uncached
    /// preparation when none is attached.
    #[default]
    Shared,
    /// Always prepare fresh, never reading or populating the cache.
    Bypass,
}

/// Errors from the streaming preparation front door
/// ([`FeatureStackBuilder::prepare_spice_path`]): everything the
/// ingest half can raise (I/O, parse, grid modeling) plus the
/// downstream feature errors of the shared prepare path.
#[derive(Debug)]
pub enum StreamPrepareError {
    /// Reading, parsing, or modeling the SPICE file failed.
    Ingest(irf_pg::IngestError),
    /// The ingested grid was rejected by feature extraction.
    Feature(FeatureError),
}

impl std::fmt::Display for StreamPrepareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamPrepareError::Ingest(e) => write!(f, "streaming ingest failed: {e}"),
            StreamPrepareError::Feature(e) => write!(f, "feature extraction failed: {e}"),
        }
    }
}

impl std::error::Error for StreamPrepareError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamPrepareError::Ingest(e) => Some(e),
            StreamPrepareError::Feature(e) => Some(e),
        }
    }
}

impl From<irf_pg::IngestError> for StreamPrepareError {
    fn from(e: irf_pg::IngestError) -> Self {
        StreamPrepareError::Ingest(e)
    }
}

impl From<FeatureError> for StreamPrepareError {
    fn from(e: FeatureError) -> Self {
        StreamPrepareError::Feature(e)
    }
}

/// The accumulated edits of an [`AnalysisSession`] relative to its
/// base design, plus the stage keys of the base artifacts a
/// topology-delta walk can rebuild from.
///
/// Current deltas leave every topology-keyed fingerprint intact, so
/// they need no base hints — the warm artifacts are found under the
/// *same* keys. Topology deltas (strap/via/segment resistance edits)
/// change the assembled and solver-setup keys; the plan remembers the
/// keys those artifacts lived under *before the first topology edit*
/// so [`IrFusionPipeline`] can re-stamp the edited conductances into
/// the base CSR ([`PgStructure::restamped`]) and rebuild the AMG
/// hierarchy against the base setup
/// ([`irf_sparse::Solver::rebuild_from`]) instead of assembling from
/// scratch. Chained topology edits keep the original base hints: the
/// base is the last design that went through a full (or cached)
/// assembly.
#[derive(Debug, Clone, Default)]
pub struct EditPlan {
    current_deltas: Vec<(usize, f64)>,
    topology_deltas: Vec<TopologyDelta>,
    base_assembled: Option<u64>,
    base_solver_setup: Option<u64>,
    rough_seed: Option<Arc<RoughSolution>>,
}

impl EditPlan {
    /// Per-cell current deltas recorded so far (`(node, amps)` pairs).
    #[must_use]
    pub fn current_deltas(&self) -> &[(usize, f64)] {
        &self.current_deltas
    }

    /// Topology deltas recorded so far, in application order.
    #[must_use]
    pub fn topology_deltas(&self) -> &[TopologyDelta] {
        &self.topology_deltas
    }

    /// The [`crate::stages::Stage::Assembled`] key of the pre-edit
    /// base, once a topology delta has been recorded.
    #[must_use]
    pub fn base_assembled(&self) -> Option<u64> {
        self.base_assembled
    }

    /// The [`crate::stages::Stage::SolverSetup`] key of the pre-edit
    /// base, once a topology delta has been recorded.
    #[must_use]
    pub fn base_solver_setup(&self) -> Option<u64> {
        self.base_solver_setup
    }

    /// The base [`RoughSolution`] the rough solve is seeded from, when
    /// warm-starting was opted into via
    /// [`AnalysisSession::with_rough_warm_start`].
    #[must_use]
    pub fn rough_seed(&self) -> Option<&Arc<RoughSolution>> {
        self.rough_seed.as_ref()
    }

    /// `true` when no edits have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.current_deltas.is_empty() && self.topology_deltas.is_empty()
    }
}

/// Builder-style entry point for feature-stack preparation and
/// analysis — the one front door for one-shot work (for incremental
/// what-if re-analysis, see [`IrFusionPipeline::session`]).
///
/// Obtained from [`IrFusionPipeline::stack_builder`]; options select
/// feature families, thread count and cache policy, and the terminal
/// methods ([`FeatureStackBuilder::prepare`],
/// [`FeatureStackBuilder::prepare_labelled`],
/// [`FeatureStackBuilder::analyze`]) return `Result` instead of
/// asserting — a padless grid surfaces as
/// [`FeatureError::NoPads`].
///
/// ```
/// use ir_fusion::{FusionConfig, IrFusionPipeline};
/// use irf_data::{synthesize, SynthSpec};
/// use irf_pg::PowerGrid;
///
/// let grid = PowerGrid::from_netlist(&synthesize(&SynthSpec::default()))?;
/// let pipeline = IrFusionPipeline::new(FusionConfig::tiny());
/// let analysis = pipeline.stack_builder().analyze(&grid, None)?;
/// assert!(analysis.rough_map.max() > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct FeatureStackBuilder<'p> {
    pipeline: &'p IrFusionPipeline,
    numerical: Option<bool>,
    hierarchical: Option<bool>,
    threads: Option<usize>,
    cache: CachePolicy,
}

impl<'p> FeatureStackBuilder<'p> {
    fn new(pipeline: &'p IrFusionPipeline) -> Self {
        FeatureStackBuilder {
            pipeline,
            numerical: None,
            hierarchical: None,
            threads: None,
            cache: CachePolicy::Shared,
        }
    }

    /// Overrides [`FeatureConfig::numerical`] (the per-layer
    /// rough-solution channels; `false` is the "w/o Num. Solu."
    /// ablation).
    ///
    /// [`FeatureConfig::numerical`]: irf_features::FeatureConfig::numerical
    #[must_use]
    pub fn numerical(mut self, on: bool) -> Self {
        self.numerical = Some(on);
        self
    }

    /// Overrides [`FeatureConfig::hierarchical`] (the per-layer
    /// current channels; `false` is the "w/o hierarchical" ablation).
    ///
    /// [`FeatureConfig::hierarchical`]: irf_features::FeatureConfig::hierarchical
    #[must_use]
    pub fn hierarchical(mut self, on: bool) -> Self {
        self.hierarchical = Some(on);
        self
    }

    /// Runs this builder's terminal call at an explicit thread count
    /// (`0` = automatic), restoring the ambient configuration
    /// afterwards. Results are bitwise identical at any setting; this
    /// only trades latency for core usage. The count is global for
    /// the duration of the call, so it is meant for CLI / batch use,
    /// not for mixing per-request inside one concurrent server.
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Sets the cache policy (default [`CachePolicy::Shared`]).
    #[must_use]
    pub fn cache_policy(mut self, policy: CachePolicy) -> Self {
        self.cache = policy;
        self
    }

    /// Shorthand for `cache_policy(CachePolicy::Bypass)`.
    #[must_use]
    pub fn bypass_cache(self) -> Self {
        self.cache_policy(CachePolicy::Bypass)
    }

    /// The pipeline configuration with this builder's feature-family
    /// overrides applied — also what the cache fingerprint covers, so
    /// ablated and full stacks never collide in the cache.
    #[must_use]
    pub fn effective_config(&self) -> FusionConfig {
        let mut config = *self.pipeline.config();
        if let Some(numerical) = self.numerical {
            config.feature.numerical = numerical;
        }
        if let Some(hierarchical) = self.hierarchical {
            config.feature.hierarchical = hierarchical;
        }
        if let Some(threads) = self.threads {
            config.num_threads = threads;
        }
        config
    }

    fn with_threads<R>(&self, f: impl FnOnce() -> R) -> R {
        match self.threads {
            None => f(),
            Some(n) => {
                let previous = irf_runtime::configured_threads();
                irf_runtime::set_num_threads(n);
                let result = f();
                irf_runtime::set_num_threads(previous);
                result
            }
        }
    }

    /// Prepares the label-free stack: truncated solve, feature
    /// extraction, rough bottom-layer map — walking the stage graph
    /// through the attached [`StageStore`] under
    /// [`CachePolicy::Shared`] (each stage keyed by its own
    /// fingerprint, single-flighting concurrent misses).
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::NoPads`] when the grid has no pads.
    pub fn prepare(&self, grid: &PowerGrid) -> Result<Arc<PreparedStack>, FeatureError> {
        let config = self.effective_config();
        let store = match self.cache {
            CachePolicy::Shared => self.pipeline.cache().map(Arc::as_ref),
            CachePolicy::Bypass => None,
        };
        self.with_threads(|| self.pipeline.staged_prepare(&config, grid, store, None))
    }

    /// Prepares the label-free stack straight from a SPICE file on
    /// disk, streaming cards into the grid model without ever holding
    /// the netlist text (or an [`irf_spice::Netlist`]) in memory —
    /// the front door for paper-size designs whose source files dwarf
    /// the working set of the solve itself. Downstream of ingest this
    /// is exactly [`FeatureStackBuilder::prepare`]: same stage graph,
    /// same cache keys, bitwise-identical stack.
    ///
    /// # Errors
    ///
    /// Returns [`StreamPrepareError::Ingest`] when the file cannot be
    /// read, parsed, or modeled as a grid, and
    /// [`StreamPrepareError::Feature`] for downstream feature errors
    /// (today only [`FeatureError::NoPads`]).
    pub fn prepare_spice_path(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<Arc<PreparedStack>, StreamPrepareError> {
        let grid = irf_pg::grid_from_spice_path(path)?;
        Ok(self.prepare(&grid)?)
    }

    /// Prepares a labelled sample (training path): the cached stack
    /// plus the rasterized golden solution.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::NoPads`] when the grid has no pads.
    ///
    /// # Panics
    ///
    /// Panics if `golden.len() != grid.nodes.len()`.
    pub fn prepare_labelled(
        &self,
        grid: &PowerGrid,
        golden: &[f64],
    ) -> Result<PreparedSample, FeatureError> {
        let stack = self.prepare(grid)?;
        let config = self.effective_config();
        let extractor = FeatureExtractor::new(config.feature);
        let raster = extractor.rasterizer(grid);
        let label = irf_features::solution::bottom_layer_solution_map(grid, golden, &raster);
        Ok(PreparedSample {
            features: stack.features.clone(),
            label,
            rough: stack.rough.clone(),
            solve_seconds: stack.solve_seconds,
            feature_seconds: stack.feature_seconds,
        })
    }

    /// Analyzes a grid, optionally refining with a trained model.
    ///
    /// In residual mode (the fusion default), the model's signed
    /// correction is added to the rough numerical map and the result
    /// clamped at zero; in absolute mode the model output *is* the
    /// prediction. Pure-ML baselines (absolute prediction, numerical
    /// channels off) skip the solve entirely, keeping the runtime
    /// column honest.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::NoPads`] when the grid has no pads.
    pub fn analyze(
        &self,
        grid: &PowerGrid,
        model: Option<&TrainedModel>,
    ) -> Result<Analysis, FeatureError> {
        let _span = irf_trace::span("analyze_grid");
        let mut timer = Timer::new();
        timer.start();
        let config = self.effective_config();
        let needs_solve = config.feature.numerical || model.is_none_or(|t| t.residual);
        let stack = if needs_solve {
            self.prepare(grid)?
        } else {
            self.with_threads(|| {
                let extractor = FeatureExtractor::new(config.feature);
                let drops = vec![0.0; grid.nodes.len()];
                let features = extractor.extract(grid, &drops)?;
                let raster = extractor.rasterizer(grid);
                let rough =
                    irf_features::solution::bottom_layer_solution_map(grid, &drops, &raster);
                Ok(Arc::new(PreparedStack {
                    fingerprint: design_fingerprint(grid, &config),
                    features,
                    rough,
                    solve_report: SolveReport {
                        x: Vec::new(),
                        converged: false,
                        iterations: 0,
                        residual: f64::INFINITY,
                        setup_seconds: 0.0,
                        solve_seconds: 0.0,
                        trace: irf_sparse::cg::ConvergenceTrace::default(),
                    },
                    solve_seconds: 0.0,
                    feature_seconds: 0.0,
                }))
            })?
        };
        let fused_map =
            model.map(|trained| self.with_threads(|| self.pipeline.predict(trained, &stack)));
        timer.stop();
        Ok(Analysis {
            rough_map: stack.rough.clone(),
            fused_map,
            solve_report: stack.solve_report.clone(),
            runtime_seconds: timer.seconds(),
        })
    }
}

/// The IR-Fusion pipeline. See the crate-level example.
#[derive(Debug, Clone)]
pub struct IrFusionPipeline {
    config: FusionConfig,
    cache: Option<Arc<StageStore>>,
}

impl IrFusionPipeline {
    /// Creates a pipeline. The configured `num_threads` is applied to
    /// the global parallel runtime (`0` = auto; see
    /// [`FusionConfig::num_threads`]).
    #[must_use]
    pub fn new(config: FusionConfig) -> Self {
        irf_runtime::set_num_threads(config.num_threads);
        IrFusionPipeline {
            config,
            cache: None,
        }
    }

    /// Attaches a stage-artifact store: subsequent
    /// [`FeatureStackBuilder::prepare`] and [`AnalysisSession`] calls
    /// (and everything built on them — `prepare`, `prepare_all`,
    /// `analyze`) reuse previously computed stage artifacts whose
    /// fingerprints still match.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<StageStore>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached stage-artifact store, if any.
    #[must_use]
    pub fn cache(&self) -> Option<&Arc<StageStore>> {
        self.cache.as_ref()
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &FusionConfig {
        &self.config
    }

    /// The configured solver, tolerance pinned below reach so the
    /// iteration budget is the only stop.
    fn solver(&self) -> Solver {
        Solver::new(self.config.solver_kind)
            .with_amg_params(self.config.amg)
            .with_tolerance(1e-12)
            .with_max_iterations(self.config.solver_iterations)
    }

    /// Runs the truncated AMG-PCG solve, returning per-node drops.
    #[must_use]
    pub fn rough_solution(&self, grid: &PowerGrid) -> (Vec<f64>, SolveReport) {
        let _span = irf_trace::span("rough_solve");
        let structure = PgStructure::build(grid);
        let setup = self.solver().prepare(&structure.matrix);
        let rhs = structure.rhs(&grid.loads);
        let report = setup.solve(&structure.matrix, &rhs);
        let drops = structure.expand_solution(&report.x);
        (drops, report)
    }

    /// One stage-graph walk: every artifact is fetched from `store`
    /// under its own fingerprint (computing on miss, single-flighted)
    /// or computed directly when `store` is `None`. Because each
    /// stage's compute is the *same* code the cold path runs, a walk
    /// over warm artifacts is bitwise identical to a cold analysis at
    /// any thread count. `edit` carries an [`AnalysisSession`]'s base
    /// hints so topology-delta misses can rebuild incrementally.
    fn staged_prepare(
        &self,
        config: &FusionConfig,
        grid: &PowerGrid,
        store: Option<&StageStore>,
        edit: Option<&EditPlan>,
    ) -> Result<Arc<PreparedStack>, FeatureError> {
        if grid.pads.is_empty() {
            return Err(FeatureError::NoPads);
        }
        let plan = Self::effective_plan(config, grid, edit);
        let build = || self.build_stack(config, grid, &plan, store, edit);
        Ok(match store {
            Some(s) => s.stack(plan.stack, build),
            None => build(),
        })
    }

    /// The stage keys an edit actually resolves under. Default plans
    /// are exactly [`StagePlan::for_design`]; when the edit opted into
    /// a warm-started rough solve, the rough and stack keys are tagged
    /// with [`warm_stage_fingerprint`] so warm-started artifacts never
    /// shadow (or get shadowed by) their bitwise-cold counterparts.
    fn effective_plan(
        config: &FusionConfig,
        grid: &PowerGrid,
        edit: Option<&EditPlan>,
    ) -> StagePlan {
        let mut plan = StagePlan::for_design(grid, config);
        if let Some(seed) = edit.and_then(EditPlan::rough_seed) {
            plan.rough = warm_stage_fingerprint(plan.rough, seed.fingerprint);
            plan.stack = warm_stage_fingerprint(plan.stack, seed.fingerprint);
        }
        plan
    }

    /// Computes the [`PreparedStack`] for one design, pulling every
    /// upstream artifact through `store` when attached. Pads must have
    /// been checked by the caller.
    ///
    /// On an [`crate::stages::Stage::Assembled`] or
    /// [`crate::stages::Stage::SolverSetup`] miss with base hints in
    /// `edit`, the compute closure first tries the incremental route —
    /// re-stamping the edited conductances into the warm base CSR
    /// ([`PgStructure::restamped`]) and rebuilding the AMG hierarchy
    /// against the warm base setup
    /// ([`irf_sparse::Solver::rebuild_from`]) — and falls back to the
    /// cold build when the base is gone or structurally incompatible.
    /// Both incremental routes are bitwise identical to their cold
    /// counterparts, so the determinism contract is unaffected.
    fn build_stack(
        &self,
        config: &FusionConfig,
        grid: &PowerGrid,
        plan: &StagePlan,
        store: Option<&StageStore>,
        edit: Option<&EditPlan>,
    ) -> Arc<PreparedStack> {
        let extractor = FeatureExtractor::new(config.feature);
        let (rough, solve_seconds) = Timer::time(|| self.rough_walk(grid, plan, store, edit));
        let (stack, feature_seconds) = Timer::time(|| {
            let geometry = || {
                Arc::new(
                    extractor
                        .geometry(grid)
                        .expect("pads checked by staged_prepare"),
                )
            };
            let geometry = match store {
                Some(s) => s.structural(plan.structural, geometry),
                None => geometry(),
            };
            let resistance = || {
                Arc::new(
                    extractor
                        .resistance_maps(grid)
                        .expect("pads checked by staged_prepare"),
                )
            };
            let resistance = match store {
                Some(s) => s.resistance(plan.resistance, resistance),
                None => resistance(),
            };
            let features = extractor
                .extract_with_parts(grid, &rough.drops, &geometry, &resistance)
                .expect("pads checked by staged_prepare");
            let raster = extractor.rasterizer(grid);
            let rough_map =
                irf_features::solution::bottom_layer_solution_map(grid, &rough.drops, &raster);
            (features, rough_map)
        });
        let registry = irf_trace::registry();
        registry.counter_add(
            "irf_stage_seconds_total",
            &[("stage", "rough_solve")],
            solve_seconds,
        );
        registry.counter_add(
            "irf_stage_seconds_total",
            &[("stage", "features")],
            feature_seconds,
        );
        let (features, rough_map) = stack;
        Arc::new(PreparedStack {
            fingerprint: plan.stack,
            features,
            rough: rough_map,
            solve_report: rough.report.clone(),
            solve_seconds,
            feature_seconds,
        })
    }

    /// The stage walk up to (and including) the rough solve: assembled
    /// system, prepared solver, rough solution — each fetched from
    /// `store` under its key in `plan` or computed on miss. `plan` must
    /// already carry the edit's effective keys
    /// ([`IrFusionPipeline::effective_plan`]); when the edit carries a
    /// rough seed, the solve is warm-started under the tagged key.
    fn rough_walk(
        &self,
        grid: &PowerGrid,
        plan: &StagePlan,
        store: Option<&StageStore>,
        edit: Option<&EditPlan>,
    ) -> Arc<RoughSolution> {
        let assemble = || {
            if let (Some(s), Some(base_key)) = (store, edit.and_then(EditPlan::base_assembled)) {
                if base_key != plan.assembled {
                    if let Some(base) = s.peek_assembled(base_key) {
                        if let Some(restamped) = base.restamped(grid) {
                            return Arc::new(restamped);
                        }
                    }
                }
            }
            Arc::new(PgStructure::build(grid))
        };
        let structure = match store {
            Some(s) => s.assembled(plan.assembled, assemble),
            None => assemble(),
        };
        let prepare = || {
            if let (Some(s), Some(base_key)) = (store, edit.and_then(EditPlan::base_solver_setup)) {
                if base_key != plan.solver_setup {
                    if let Some(base) = s.peek_solver_setup(base_key) {
                        return Arc::new(self.solver().rebuild_from(&base, &structure.matrix));
                    }
                }
            }
            Arc::new(self.solver().prepare(&structure.matrix))
        };
        let setup = match store {
            Some(s) => s.solver_setup(plan.solver_setup, prepare),
            None => prepare(),
        };
        let solve = || {
            if let Some(seed) = edit.and_then(EditPlan::rough_seed) {
                if let Some(warm) =
                    self.warm_rough_stage(grid, &structure, &setup, plan.rough, seed)
                {
                    return Arc::new(warm);
                }
            }
            Arc::new(self.rough_stage(grid, &structure, &setup, plan.rough))
        };
        match store {
            Some(s) => s.rough(plan.rough, solve),
            None => solve(),
        }
    }

    /// The warm-started [`crate::stages::Stage::Rough`] compute: the
    /// truncated solve starts from the seed's solution vector and stops
    /// as soon as the relative residual matches the seed's final
    /// residual (never looser than the configured tolerance, never more
    /// iterations than the configured budget). Returns `None` when the
    /// seed's reduced dimension disagrees with the assembled system —
    /// a geometry change — so the caller falls back to the cold
    /// compute under the same tagged key, keeping the result a pure
    /// function of (grid, config, seed) regardless of cache state.
    fn warm_rough_stage(
        &self,
        grid: &PowerGrid,
        structure: &PgStructure,
        setup: &SolverSetup,
        fingerprint: u64,
        seed: &RoughSolution,
    ) -> Option<RoughSolution> {
        if seed.report.x.len() != structure.matrix.rows() {
            return None;
        }
        let _span = irf_trace::span("rough_solve_warm");
        let t0 = std::time::Instant::now();
        let rhs = structure.rhs(&grid.loads);
        let relaxed = setup.with_stopping(
            seed.report.residual.max(setup.tolerance()),
            setup.max_iterations(),
        );
        let report = relaxed.solve_with_guess(&structure.matrix, &rhs, seed.report.x.clone());
        let drops = structure.expand_solution(&report.x);
        Some(RoughSolution {
            fingerprint,
            drops,
            report,
            solve_seconds: t0.elapsed().as_secs_f64(),
        })
    }

    /// The [`crate::stages::Stage::Rough`] compute: right-hand side
    /// from the current loads, truncated solve on the prepared setup,
    /// solution expanded back to full node space.
    fn rough_stage(
        &self,
        grid: &PowerGrid,
        structure: &PgStructure,
        setup: &SolverSetup,
        fingerprint: u64,
    ) -> RoughSolution {
        let _span = irf_trace::span("rough_solve");
        let t0 = std::time::Instant::now();
        let rhs = structure.rhs(&grid.loads);
        let report = setup.solve(&structure.matrix, &rhs);
        let drops = structure.expand_solution(&report.x);
        RoughSolution {
            fingerprint,
            drops,
            report,
            solve_seconds: t0.elapsed().as_secs_f64(),
        }
    }

    /// Opens an incremental what-if session on a design. The session
    /// holds the base grid and composes edits into one [`EditPlan`]:
    /// [`AnalysisSession::with_currents`] /
    /// [`AnalysisSession::with_current_deltas`] swap only the load
    /// vector, so a re-analysis reuses the assembled system, the
    /// prepared solver and the structural maps from the attached
    /// store; [`AnalysisSession::with_topology_deltas`] edits strap /
    /// via / segment resistances, reusing the parsed design and the
    /// geometry maps outright and rebuilding the assembled system and
    /// the solver setup incrementally from the warm base artifacts.
    #[must_use]
    pub fn session(&self, grid: Arc<PowerGrid>) -> AnalysisSession<'_> {
        AnalysisSession {
            pipeline: self,
            grid,
            cache: CachePolicy::Shared,
            plan: EditPlan::default(),
        }
    }

    /// Starts a [`FeatureStackBuilder`] — the front door for stack
    /// preparation and analysis. Options (feature families, thread
    /// count, cache policy) are builder methods; terminals return
    /// `Result` so padless grids surface as [`FeatureError::NoPads`]
    /// instead of a panic deep in feature extraction.
    #[must_use]
    pub fn stack_builder(&self) -> FeatureStackBuilder<'_> {
        FeatureStackBuilder::new(self)
    }

    /// Prepares a labelled design (training path).
    ///
    /// # Panics
    ///
    /// Panics if the design's grid has no pads; use
    /// [`FeatureStackBuilder::prepare_labelled`] to handle that case
    /// as a `Result`.
    #[must_use]
    pub fn prepare(&self, design: &Design) -> PreparedSample {
        self.stack_builder()
            .prepare_labelled(&design.grid, &design.golden)
            .expect("design grid has pads")
    }

    /// Prepares every design concurrently (one task per design; the
    /// parallel kernels inside each run inline on the task's thread).
    /// Output order matches input order, and each sample is bitwise
    /// identical to what a serial [`IrFusionPipeline::prepare`] yields.
    #[must_use]
    pub fn prepare_all(&self, designs: &[Design]) -> Vec<PreparedSample> {
        let tasks: Vec<_> = designs.iter().map(|d| move || self.prepare(d)).collect();
        irf_runtime::par_map(tasks)
    }

    /// Prepares the label-free part of a design: truncated solve,
    /// feature extraction, rough bottom-layer map. Uncached; most
    /// callers want [`FeatureStackBuilder::prepare`].
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::NoPads`] when the grid has no pads.
    pub fn prepare_stack(&self, grid: &PowerGrid) -> Result<PreparedStack, FeatureError> {
        self.staged_prepare(&self.config, grid, None, None)
            .map(|stack| (*stack).clone())
    }

    /// Analyzes a netlist end to end (inference path). Pass a trained
    /// `model` to get the fused prediction; without one, only the
    /// rough numerical map is produced.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] when the netlist does not describe a
    /// valid power grid (a padless grid surfaces as
    /// [`ModelError::NoPads`]).
    pub fn analyze_netlist(&self, netlist: &Netlist) -> Result<Analysis, ModelError> {
        let grid = PowerGrid::from_netlist(netlist)?;
        // The only feature error today is NoPads; `FeatureError` is
        // non_exhaustive, so map conservatively.
        self.stack_builder()
            .analyze(&grid, None)
            .map_err(|_| ModelError::NoPads)
    }

    /// Runs model inference on one prepared stack, applying the
    /// residual (or absolute) postprocessing.
    ///
    /// Equivalent to `predict_batch(trained, &[stack])[0]`, bit for
    /// bit.
    #[must_use]
    pub fn predict(&self, trained: &TrainedModel, stack: &PreparedStack) -> GridMap {
        self.predict_batch(trained, &[stack])
            .pop()
            .expect("predict_batch returns one map per stack")
    }

    /// Runs ONE batched forward pass over `stacks` and postprocesses
    /// each sample against its own rough map.
    ///
    /// The batched pass is bitwise identical to calling
    /// [`IrFusionPipeline::predict`] on each stack sequentially, at any
    /// thread count: every tape operation computes per-sample values
    /// with the same serial inner loops regardless of batch size. This
    /// is the contract the serving layer's micro-batching relies on
    /// (and what `tests/integration_batch.rs` asserts).
    ///
    /// # Panics
    ///
    /// Panics if the stacks disagree on feature shape.
    #[must_use]
    pub fn predict_batch(&self, trained: &TrainedModel, stacks: &[&PreparedStack]) -> Vec<GridMap> {
        if stacks.is_empty() {
            return Vec::new();
        }
        let mut span = irf_trace::span("nn_forward");
        span.attr("batch", stacks.len());
        span.attr("precision", trained.precision.name());
        let inputs: Vec<Tensor> = stacks.iter().map(|s| s.feature_tensor()).collect();
        let batched = Tensor::concat_batch(&inputs);
        let [_, _, h, w] = batched.shape();
        let mut tape = Tape::new();
        tape.set_precision(trained.precision);
        let x = tape.input(batched);
        let y = trained.model.forward(&mut tape, &trained.store, x);
        let pred = tape.value(y);
        drop(span);
        let scale = trained.label_scale;
        let inv = if scale > 0.0 { 1.0 / scale } else { 1.0 };
        pred.split_batch()
            .iter()
            .zip(stacks)
            .map(|(sample, stack)| {
                if trained.residual {
                    let data = sample
                        .data()
                        .iter()
                        .zip(stack.rough.data())
                        .map(|(corr, rough)| (rough + corr * inv).max(0.0))
                        .collect();
                    GridMap::from_vec(w, h, data)
                } else {
                    GridMap::from_vec(w, h, sample.data().iter().map(|v| v * inv).collect())
                }
            })
            .collect()
    }

    /// Golden analysis via the exact direct solver (for labels and
    /// verification).
    #[must_use]
    pub fn golden_map(&self, grid: &PowerGrid) -> GridMap {
        let extractor = FeatureExtractor::new(self.config.feature);
        let raster: Rasterizer = extractor.rasterizer(grid);
        let drops = golden_drops(grid);
        irf_features::solution::bottom_layer_solution_map(grid, &drops, &raster)
    }
}

/// An incremental what-if session: a base design plus edits, analyzed
/// through the stage graph so unchanged artifacts are reused from the
/// pipeline's attached [`StageStore`].
///
/// The session owns an `Arc` of the effective grid and an [`EditPlan`]
/// composing every recorded edit. `with_currents` /
/// `with_current_deltas` clone the grid once and swap only its load
/// vector, leaving topology, vias and pads — and therefore the
/// assembled MNA system, the prepared solver and the structural
/// feature maps — fingerprint-identical to the base.
/// [`AnalysisSession::with_topology_deltas`] edits strap / via /
/// segment resistances: the parsed design and the geometry maps stay
/// warm (their fingerprints cover only node/segment *placement*), and
/// the assembled system and solver setup are rebuilt incrementally
/// from the recorded base artifacts instead of from scratch.
///
/// ```
/// use ir_fusion::{FusionConfig, IrFusionPipeline, StageStore};
/// use irf_data::{synthesize, SynthSpec};
/// use irf_pg::PowerGrid;
/// use std::sync::Arc;
///
/// let grid = Arc::new(PowerGrid::from_netlist(&synthesize(&SynthSpec::default()))?);
/// let pipeline =
///     IrFusionPipeline::new(FusionConfig::tiny()).with_cache(Arc::new(StageStore::new(4)));
/// let cold = pipeline.session(Arc::clone(&grid)).prepare()?;
/// // Bump one cell current: only the rough solve and stack rebuild.
/// let warm = pipeline
///     .session(grid)
///     .with_current_deltas(&[(0, 1e-3)])
///     .prepare()?;
/// assert_ne!(cold.fingerprint, warm.fingerprint);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct AnalysisSession<'p> {
    pipeline: &'p IrFusionPipeline,
    grid: Arc<PowerGrid>,
    cache: CachePolicy,
    plan: EditPlan,
}

impl AnalysisSession<'_> {
    /// The effective grid this session analyzes.
    #[must_use]
    pub fn grid(&self) -> &Arc<PowerGrid> {
        &self.grid
    }

    /// The [`design_fingerprint`] of the effective grid under the
    /// pipeline configuration — the key a prepared stack lives under.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        design_fingerprint(&self.grid, self.pipeline.config())
    }

    /// Sets the cache policy (default [`CachePolicy::Shared`]).
    #[must_use]
    pub fn cache_policy(mut self, policy: CachePolicy) -> Self {
        self.cache = policy;
        self
    }

    /// Replaces the whole load vector.
    #[must_use]
    pub fn with_currents(mut self, loads: Vec<Load>) -> Self {
        let mut grid = (*self.grid).clone();
        grid.loads = loads;
        self.grid = Arc::new(grid);
        self
    }

    /// Applies per-cell current deltas: for each `(node, amps)` pair
    /// the delta is added to that node's existing load, or a new load
    /// is created when the node drew no current before.
    #[must_use]
    pub fn with_current_deltas(mut self, deltas: &[(usize, f64)]) -> Self {
        let mut grid = (*self.grid).clone();
        for &(node, amps) in deltas {
            match grid.loads.iter_mut().find(|l| l.node == node) {
                Some(load) => load.amps += amps,
                None => grid.loads.push(Load { node, amps }),
            }
        }
        self.grid = Arc::new(grid);
        self.plan.current_deltas.extend_from_slice(deltas);
        self
    }

    /// Applies topology deltas — strap / via / segment resistance
    /// edits — to the effective grid, recording the pre-edit stage
    /// keys so the next [`AnalysisSession::prepare`] can rebuild the
    /// assembled system and the solver setup incrementally from the
    /// warm base artifacts. Validation is all-or-nothing: every delta
    /// in the batch is checked against the base grid before any is
    /// applied, so a failing batch applies none of them.
    ///
    /// Chained calls keep the *first* pre-edit base as the rebuild
    /// anchor — the last design that actually went through a full (or
    /// cached) assembly.
    ///
    /// # Errors
    ///
    /// Returns [`EditError`] when a delta references a layer pair or
    /// segment the base grid does not have, or carries a non-finite /
    /// non-positive value.
    pub fn with_topology_deltas(mut self, deltas: &[TopologyDelta]) -> Result<Self, EditError> {
        if self.plan.base_assembled.is_none() {
            let base = StagePlan::for_design(&self.grid, self.pipeline.config());
            self.plan.base_assembled = Some(base.assembled);
            self.plan.base_solver_setup = Some(base.solver_setup);
        }
        let mut grid = (*self.grid).clone();
        apply_topology_deltas(&mut grid, deltas)?;
        self.grid = Arc::new(grid);
        self.plan.topology_deltas.extend_from_slice(deltas);
        Ok(self)
    }

    /// Opts this session into warm-starting the rough solve from a
    /// prior [`RoughSolution`] — typically the base analysis a
    /// sweep/optimize candidate was derived from. The solve starts at
    /// the seed's solution vector and stops once the relative residual
    /// matches the seed's final residual, so small conductance edits
    /// converge in a fraction of the truncated iteration budget.
    ///
    /// Warm-started results are *not* bitwise identical to cold
    /// analyses of the same design; they are therefore keyed under
    /// separate, seed-tagged stage fingerprints
    /// ([`crate::stages::warm_stage_fingerprint`]) and never observed
    /// by default-path sessions. For a fixed seed the result is fully
    /// deterministic — a pure function of (grid, config, seed)
    /// independent of cache state and thread count. A seed whose
    /// dimension disagrees with the edited design (a geometry change)
    /// is ignored and the tagged artifact is computed cold.
    #[must_use]
    pub fn with_rough_warm_start(mut self, seed: Arc<RoughSolution>) -> Self {
        self.plan.rough_seed = Some(seed);
        self
    }

    /// Runs the stage walk up to the rough solve and returns the
    /// (possibly warm-started) [`RoughSolution`] for the effective
    /// grid: per-node voltage drops in full node space plus the solve
    /// report. This is what a closed-loop optimizer needs to generate
    /// candidates from and to seed child sessions with.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::NoPads`] when the grid has no pads.
    pub fn rough_solution(&self) -> Result<Arc<RoughSolution>, FeatureError> {
        if self.grid.pads.is_empty() {
            return Err(FeatureError::NoPads);
        }
        let store = match self.cache {
            CachePolicy::Shared => self.pipeline.cache().map(Arc::as_ref),
            CachePolicy::Bypass => None,
        };
        let config = self.pipeline.config();
        let plan = IrFusionPipeline::effective_plan(config, &self.grid, Some(&self.plan));
        Ok(self
            .pipeline
            .rough_walk(&self.grid, &plan, store, Some(&self.plan)))
    }

    /// The composed [`EditPlan`] recorded so far.
    #[must_use]
    pub fn edit_plan(&self) -> &EditPlan {
        &self.plan
    }

    /// Prepares the stack for the effective grid through the stage
    /// graph. With a warm store, a current-only edit skips SPICE
    /// parsing, MNA assembly and AMG setup entirely; a topology edit
    /// reuses the parsed design and geometry maps and rebuilds the
    /// assembled system / solver setup incrementally from the warm
    /// base artifacts recorded in the [`EditPlan`].
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::NoPads`] when the grid has no pads.
    pub fn prepare(&self) -> Result<Arc<PreparedStack>, FeatureError> {
        let store = match self.cache {
            CachePolicy::Shared => self.pipeline.cache().map(Arc::as_ref),
            CachePolicy::Bypass => None,
        };
        self.pipeline
            .staged_prepare(self.pipeline.config(), &self.grid, store, Some(&self.plan))
    }

    /// Analyzes the effective grid, optionally refining with a
    /// trained model — the incremental counterpart of
    /// [`FeatureStackBuilder::analyze`].
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::NoPads`] when the grid has no pads.
    pub fn analyze(&self, model: Option<&TrainedModel>) -> Result<Analysis, FeatureError> {
        let _span = irf_trace::span("analyze_grid");
        let mut timer = Timer::new();
        timer.start();
        let stack = self.prepare()?;
        let fused_map = model.map(|trained| self.pipeline.predict(trained, &stack));
        timer.stop();
        Ok(Analysis {
            rough_map: stack.rough.clone(),
            fused_map,
            solve_report: stack.solve_report.clone(),
            runtime_seconds: timer.seconds(),
        })
    }

    /// Runs the model on the (possibly warm) stack, returning the
    /// fused map tagged with the stack fingerprint it came from.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::NoPads`] when the grid has no pads.
    pub fn predict(&self, model: &TrainedModel) -> Result<Prediction, FeatureError> {
        let stack = self.prepare()?;
        Ok(Prediction {
            fingerprint: stack.fingerprint,
            map: self.pipeline.predict(model, &stack),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FusionConfig;
    use irf_data::{synthesize, SynthSpec};
    use irf_metrics::mae;

    fn pipeline() -> IrFusionPipeline {
        IrFusionPipeline::new(FusionConfig::tiny())
    }

    fn grid() -> PowerGrid {
        PowerGrid::from_netlist(&synthesize(&SynthSpec::default())).expect("valid grid")
    }

    #[test]
    fn rough_solution_respects_iteration_budget() {
        let p = pipeline();
        let (drops, report) = p.rough_solution(&grid());
        assert_eq!(report.iterations, 2);
        assert_eq!(drops.len(), grid().nodes.len());
    }

    #[test]
    fn more_iterations_approach_golden() {
        let g = grid();
        let golden = golden_drops(&g);
        let mut cfg = FusionConfig::tiny();
        let err_at = |k: usize, cfg: &mut FusionConfig| {
            cfg.solver_iterations = k;
            let p = IrFusionPipeline::new(*cfg);
            let (drops, _) = p.rough_solution(&g);
            drops
                .iter()
                .zip(&golden)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max)
        };
        let e2 = err_at(2, &mut cfg);
        let e8 = err_at(8, &mut cfg);
        assert!(e8 < e2, "k=8 ({e8:e}) should beat k=2 ({e2:e})");
    }

    #[test]
    fn prepare_produces_consistent_shapes() {
        let p = pipeline();
        let design = irf_data::Design::fake(1);
        let sample = p.prepare(&design);
        let (c, h, w, _) = sample.features.to_nchw();
        assert_eq!((h, w), (16, 16));
        assert_eq!(c, p.config().feature_channels(3));
        assert_eq!(sample.label.width(), 16);
        assert!(sample.label.max() > 0.0);
    }

    #[test]
    fn analyze_without_model_gives_rough_map_only() {
        let p = pipeline();
        let netlist = synthesize(&SynthSpec::default());
        let a = p.analyze_netlist(&netlist).expect("valid");
        assert!(a.fused_map.is_none());
        assert!(a.rough_map.max() > 0.0);
        assert!(a.runtime_seconds > 0.0);
    }

    #[test]
    fn rough_map_is_a_reasonable_estimate() {
        // Even at k=2 the rough map should correlate with golden.
        let p = pipeline();
        let g = grid();
        let a = p.stack_builder().analyze(&g, None).expect("grid has pads");
        let golden = p.golden_map(&g);
        let err = mae(a.rough_map.data(), golden.data());
        assert!(
            err < f64::from(golden.max()),
            "rough map error {err} should be below the peak drop"
        );
    }

    #[test]
    fn builder_reports_padless_grids_as_errors() {
        let p = pipeline();
        let g = PowerGrid::default();
        assert_eq!(
            p.stack_builder().prepare(&g).unwrap_err(),
            FeatureError::NoPads
        );
        assert_eq!(
            p.stack_builder().analyze(&g, None).unwrap_err(),
            FeatureError::NoPads
        );
    }

    #[test]
    fn builder_ablations_change_the_channel_count() {
        let p = pipeline();
        let g = grid();
        let full = p.stack_builder().prepare(&g).expect("pads");
        let ablated = p
            .stack_builder()
            .numerical(false)
            .hierarchical(false)
            .prepare(&g)
            .expect("pads");
        let (c_full, ..) = full.features.to_nchw();
        let (c_ablated, ..) = ablated.features.to_nchw();
        assert!(
            c_ablated < c_full,
            "ablated stack ({c_ablated} ch) should be thinner than full ({c_full} ch)"
        );
    }

    #[test]
    fn builder_thread_override_restores_ambient_configuration() {
        let p = pipeline();
        let g = grid();
        let before = irf_runtime::configured_threads();
        let at2 = p.stack_builder().threads(2).prepare(&g).expect("pads");
        assert_eq!(irf_runtime::configured_threads(), before);
        let ambient = p.stack_builder().bypass_cache().prepare(&g).expect("pads");
        assert_eq!(at2.rough.data(), ambient.rough.data());
        assert_eq!(
            at2.features.to_nchw().3,
            ambient.features.to_nchw().3,
            "thread override must not change feature values"
        );
    }

    #[test]
    fn builder_shares_the_attached_cache() {
        let cache = Arc::new(StageStore::new(4));
        let p = pipeline().with_cache(Arc::clone(&cache));
        let g = grid();
        let a = p.stack_builder().prepare(&g).expect("pads");
        let b = p.stack_builder().prepare(&g).expect("pads");
        assert!(Arc::ptr_eq(&a, &b), "second prepare should be a cache hit");
        let c = p.stack_builder().bypass_cache().prepare(&g).expect("pads");
        assert!(!Arc::ptr_eq(&a, &c), "bypass must not read the cache");
    }

    #[test]
    fn session_current_edit_reuses_structure_and_setup() {
        use crate::stages::Stage;
        let cache = Arc::new(StageStore::new(4));
        let p = pipeline().with_cache(Arc::clone(&cache));
        let g = Arc::new(grid());
        let cold = p.session(Arc::clone(&g)).prepare().expect("pads");
        let warm_session = p.session(Arc::clone(&g)).with_current_deltas(&[(1, 2e-3)]);
        let warm = warm_session.prepare().expect("pads");
        assert_ne!(cold.fingerprint, warm.fingerprint);
        // The warm walk re-hit the topology-keyed artifacts...
        assert!(cache.stage_counters(Stage::Assembled).hits >= 1);
        assert!(cache.stage_counters(Stage::SolverSetup).hits >= 1);
        assert!(cache.stage_counters(Stage::Structural).hits >= 1);
        // ...but had to rerun the rough solve and stack assembly.
        assert_eq!(cache.stage_counters(Stage::Rough).misses, 2);
        assert_eq!(cache.stage_counters(Stage::Stack).misses, 2);
        // And the warm result matches a cold analysis of the same
        // edited design, bit for bit.
        let fresh = p
            .session(Arc::clone(warm_session.grid()))
            .cache_policy(CachePolicy::Bypass)
            .prepare()
            .expect("pads");
        assert_eq!(warm.rough.data(), fresh.rough.data());
        assert_eq!(warm.features.to_nchw().3, fresh.features.to_nchw().3);
    }

    #[test]
    fn label_tensor_applies_scale() {
        let p = pipeline();
        let sample = p.prepare(&irf_data::Design::fake(2));
        let t1 = sample.label_tensor(1.0);
        let t100 = sample.label_tensor(100.0);
        let r = t100.data()[0] / t1.data()[0].max(1e-30);
        assert!(t1.data()[0] == 0.0 || (r - 100.0).abs() < 1e-3);
    }
}
