//! Experiment drivers that regenerate the paper's tables and figures.
//!
//! Each driver is sized by an [`ExperimentScale`] so the same code
//! serves smoke tests (`tiny`) and the bench harness (`paper`).

use crate::config::FusionConfig;
use crate::evaluate::{evaluate_model, evaluate_numerical};
use crate::pipeline::IrFusionPipeline;
use crate::train::train;
use irf_data::Dataset;
use irf_metrics::MetricReport;
use irf_models::ModelKind;
use irf_nn::PrecisionMode;

/// Sizing of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentScale {
    /// Fake designs in the corpus.
    pub n_fake: usize,
    /// Real-like designs in the corpus.
    pub n_real: usize,
    /// Real designs held out for testing.
    pub n_test: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Feature/label resolution (square).
    pub resolution: usize,
    /// Model base channel width.
    pub base_channels: usize,
    /// Dataset seed.
    pub seed: u64,
}

impl ExperimentScale {
    /// Smoke-test scale: a handful of designs at 16x16.
    #[must_use]
    pub fn tiny() -> Self {
        ExperimentScale {
            n_fake: 3,
            n_real: 3,
            n_test: 2,
            epochs: 3,
            resolution: 16,
            base_channels: 6,
            seed: 42,
        }
    }

    /// Bench scale: the shape of the contest setup scaled to CPU
    /// training (the paper uses 100 fake + 20 real at 256x256).
    #[must_use]
    pub fn paper() -> Self {
        ExperimentScale {
            n_fake: 16,
            n_real: 10,
            n_test: 5,
            epochs: 14,
            resolution: 32,
            base_channels: 6,
            seed: 2023,
        }
    }

    /// The fusion configuration this scale implies.
    #[must_use]
    pub fn config(&self) -> FusionConfig {
        let mut cfg = FusionConfig::default();
        cfg.feature.width = self.resolution;
        cfg.feature.height = self.resolution;
        cfg.model.base_channels = self.base_channels;
        cfg.train.epochs = self.epochs;
        cfg
    }

    /// Generates the dataset this scale implies.
    #[must_use]
    pub fn dataset(&self) -> Dataset {
        Dataset::generate(self.n_fake, self.n_real, self.n_test, self.seed)
    }
}

/// One Table I row: model name, forward precision, and averaged
/// metrics. Quantized rows carry the gate verdict against their f32
/// parent.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Model display name.
    pub name: String,
    /// Forward-pass precision this row was evaluated at.
    pub precision: PrecisionMode,
    /// Metrics averaged over the test designs.
    pub report: MetricReport,
    /// Accuracy-delta gate vs the f32 row (`None` for f32 rows).
    pub gate: Option<QuantGate>,
}

/// Maximum relative MAE increase (percent) a quantized variant may
/// show over its f32 parent and still ship.
pub const QUANT_GATE_MAE_PCT: f64 = 10.0;
/// Maximum absolute F1 decrease a quantized variant may show over its
/// f32 parent and still ship.
pub const QUANT_GATE_F1_DROP: f64 = 0.10;

/// Accuracy-delta gate verdict for one quantized zoo entry.
#[derive(Debug, Clone, Copy)]
pub struct QuantGate {
    /// Relative MAE increase vs f32, in percent (negative = better).
    pub mae_delta_pct: f64,
    /// Absolute F1 change vs f32 (negative = worse).
    pub f1_delta: f64,
    /// `true` when both deltas are within the gate thresholds.
    pub pass: bool,
}

/// Scores a quantized report against its f32 parent: the variant
/// passes when MAE regresses by at most [`QUANT_GATE_MAE_PCT`] percent
/// and F1 drops by at most [`QUANT_GATE_F1_DROP`] absolute.
#[must_use]
pub fn quantization_gate(base: &MetricReport, quant: &MetricReport) -> QuantGate {
    let mae_delta_pct = if base.mae_volts > 0.0 {
        (quant.mae_volts - base.mae_volts) / base.mae_volts * 100.0
    } else {
        0.0
    };
    let f1_delta = quant.f1 - base.f1;
    QuantGate {
        mae_delta_pct,
        f1_delta,
        pass: mae_delta_pct <= QUANT_GATE_MAE_PCT && -f1_delta <= QUANT_GATE_F1_DROP,
    }
}

/// Regenerates **Table I**: trains every model on the same augmented
/// corpus ("all baselines adopt the data after augmentation") and
/// evaluates on the held-out real designs. Each model is scored at
/// f32 and, when `quantized` is set, re-scored at int8 and f16 from
/// the same trained weights (quantization is checkpoint-level — no
/// retraining), with the accuracy-delta gate attached to each
/// quantized row.
#[must_use]
pub fn table1_with_options(scale: &ExperimentScale, quantized: bool) -> Vec<Table1Row> {
    let dataset = scale.dataset();
    let config = scale.config();
    let mut rows = Vec::new();
    for kind in ModelKind::TABLE1 {
        let mut cfg = config;
        if kind != ModelKind::IrFusion {
            // Baselines consume the flat (non-hierarchical,
            // non-numerical) inputs, exactly like the original
            // models that see only current / distance / density.
            cfg.feature.numerical = false;
            cfg.feature.hierarchical = false;
        }
        let pipeline = IrFusionPipeline::new(cfg);
        let mut trained = train(kind, &dataset, &cfg);
        let name = trained.model.name().to_string();
        let base = MetricReport::mean(&evaluate_model(&trained, &dataset, &pipeline));
        rows.push(Table1Row {
            name: name.clone(),
            precision: PrecisionMode::F32,
            report: base,
            gate: None,
        });
        if quantized {
            for mode in [PrecisionMode::Int8, PrecisionMode::F16] {
                trained = trained.with_precision(mode);
                let report = MetricReport::mean(&evaluate_model(&trained, &dataset, &pipeline));
                rows.push(Table1Row {
                    name: name.clone(),
                    precision: mode,
                    report,
                    gate: Some(quantization_gate(&base, &report)),
                });
            }
        }
    }
    rows
}

/// [`table1_with_options`] without the quantized re-scores: one f32
/// row per zoo entry, matching the paper's table.
#[must_use]
pub fn table1(scale: &ExperimentScale) -> Vec<Table1Row> {
    table1_with_options(scale, false)
}

/// One Fig. 7 point: iteration count, numerical-only metrics, fused
/// metrics.
#[derive(Debug, Clone)]
pub struct Fig7Point {
    /// PCG iterations `k`.
    pub iterations: usize,
    /// PowerRush-style raw numerical result at `k`.
    pub numerical: MetricReport,
    /// IR-Fusion result at `k`.
    pub fused: MetricReport,
}

/// Regenerates **Fig. 7**: sweeps the solver budget `k = 1..=k_max`,
/// comparing the raw numerical solution with the fused prediction.
/// The model is trained once per `k` (its numerical input channels
/// depend on the budget).
#[must_use]
pub fn fig7(scale: &ExperimentScale, k_max: usize) -> Vec<Fig7Point> {
    let dataset = scale.dataset();
    (1..=k_max)
        .map(|k| {
            let mut cfg = scale.config();
            cfg.solver_iterations = k;
            let pipeline = IrFusionPipeline::new(cfg);
            let numerical = MetricReport::mean(&evaluate_numerical(&dataset, &pipeline));
            let trained = train(ModelKind::IrFusion, &dataset, &cfg);
            let fused = MetricReport::mean(&evaluate_model(&trained, &dataset, &pipeline));
            Fig7Point {
                iterations: k,
                numerical,
                fused,
            }
        })
        .collect()
}

/// One Fig. 8 bar: ablation label plus the metric changes relative to
/// the full model (positive `mae_increase_pct` = worse MAE, positive
/// `f1_decrease_pct` = worse F1 — matching the paper's plot).
#[derive(Debug, Clone)]
pub struct Fig8Bar {
    /// Ablation label.
    pub label: String,
    /// MAE increase in percent vs the full model.
    pub mae_increase_pct: f64,
    /// F1 decrease in percent vs the full model.
    pub f1_decrease_pct: f64,
}

/// Regenerates **Fig. 8**: retrains IR-Fusion with one technique
/// removed at a time and reports the metric deltas.
#[must_use]
pub fn fig8(scale: &ExperimentScale) -> Vec<Fig8Bar> {
    let dataset = scale.dataset();
    let base_cfg = scale.config();

    let run = |kind: ModelKind, cfg: &FusionConfig| -> MetricReport {
        let trained = train(kind, &dataset, cfg);
        MetricReport::mean(&evaluate_model(
            &trained,
            &dataset,
            &IrFusionPipeline::new(*cfg),
        ))
    };
    let full = run(ModelKind::IrFusion, &base_cfg);

    let mut bars = Vec::new();
    let mut push = |label: &str, ablated: MetricReport| {
        let mae_increase_pct = if full.mae_volts > 0.0 {
            (ablated.mae_volts - full.mae_volts) / full.mae_volts * 100.0
        } else {
            0.0
        };
        let f1_decrease_pct = if full.f1 > 0.0 {
            (full.f1 - ablated.f1) / full.f1 * 100.0
        } else {
            0.0
        };
        bars.push(Fig8Bar {
            label: label.to_string(),
            mae_increase_pct,
            f1_decrease_pct,
        });
    };

    // w/o numerical solution: drop the rough-solution channels.
    let mut cfg = base_cfg;
    cfg.feature.numerical = false;
    push("w/o Num. Solu.", run(ModelKind::IrFusion, &cfg));

    // w/o hierarchical features: drop the per-layer channels.
    let mut cfg = base_cfg;
    cfg.feature.hierarchical = false;
    push("w/o Hierarchical", run(ModelKind::IrFusion, &cfg));

    // w/o Inception: plain double-conv encoder.
    push(
        "w/o Inception",
        run(ModelKind::IrFusionNoInception, &base_cfg),
    );

    // w/o CBAM.
    push("w/o CBAM", run(ModelKind::IrFusionNoCbam, &base_cfg));

    // w/o data augmentation (rotations off).
    let mut cfg = base_cfg;
    cfg.train.rotations = false;
    push("w/o Data Aug.", run(ModelKind::IrFusion, &cfg));

    // w/o curriculum learning.
    let mut cfg = base_cfg;
    cfg.train.curriculum = None;
    push("w/o Curr. Lear.", run(ModelKind::IrFusion, &cfg));

    bars
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scale_builds_config_and_dataset() {
        let s = ExperimentScale::tiny();
        let cfg = s.config();
        assert_eq!(cfg.feature.width, 16);
        let ds = s.dataset();
        assert_eq!(ds.designs.len(), 6);
        assert_eq!(ds.test_indices.len(), 2);
    }

    #[test]
    fn quantized_rows_carry_gates_that_pass() {
        let mut s = ExperimentScale::tiny();
        s.n_fake = 1;
        s.n_real = 1;
        s.n_test = 1;
        s.epochs = 1;
        let rows = table1_with_options(&s, true);
        // Three rows per zoo entry: f32, int8, f16.
        assert_eq!(rows.len(), irf_models::ModelKind::TABLE1.len() * 3);
        for chunk in rows.chunks(3) {
            assert_eq!(chunk[0].precision, PrecisionMode::F32);
            assert!(chunk[0].gate.is_none());
            for q in &chunk[1..] {
                assert_eq!(q.name, chunk[0].name);
                let gate = q.gate.expect("quantized rows carry a gate");
                assert!(
                    gate.pass,
                    "{} {} failed the accuracy gate: MAE {:+.2}%, F1 {:+.3}",
                    q.name, q.precision, gate.mae_delta_pct, gate.f1_delta
                );
            }
        }
    }

    #[test]
    fn fig7_points_are_ordered() {
        // Smallest possible sweep to keep the test fast.
        let mut s = ExperimentScale::tiny();
        s.n_fake = 1;
        s.n_real = 1;
        s.n_test = 1;
        s.epochs = 1;
        let points = fig7(&s, 2);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].iterations, 1);
        assert!(points[1].numerical.mae_volts <= points[0].numerical.mae_volts);
    }
}
