//! Whole-bundle checkpoints for a [`TrainedModel`]: architecture id,
//! hyperparameters, fusion metadata, and the parameter blob.
//!
//! Format (little-endian): magic `IRFM`, version `u32`, model-kind id
//! `u32`, in-channels `u32`, base-channels `u32`, seed `u64`, residual
//! flag `u8`, label scale `f32`, precision tag `u8` (version >= 2),
//! followed by the [`irf_nn::serialize`] parameter stream.
//!
//! Parameters are always stored at full f32 precision; a non-f32
//! precision tag makes [`load_model`] rebuild the quantization
//! sidecars deterministically after loading, so quantized checkpoints
//! cost no extra bytes. Version-1 streams (no tag) load as f32.

use crate::train::TrainedModel;
use irf_models::{build_model, ModelConfig, ModelKind};
use irf_nn::serialize::{self, CheckpointError};
use irf_nn::PrecisionMode;
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"IRFM";
const VERSION: u32 = 2;

/// Saves a trained bundle; load it back with [`load_model`].
/// A `&mut` writer may be passed.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn save_model<W: Write>(
    trained: &TrainedModel,
    kind: ModelKind,
    config: ModelConfig,
    mut w: W,
) -> Result<(), CheckpointError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&kind.id().to_le_bytes())?;
    w.write_all(
        &u32::try_from(config.in_channels)
            .expect("channels fit u32")
            .to_le_bytes(),
    )?;
    w.write_all(
        &u32::try_from(config.base_channels)
            .expect("channels fit u32")
            .to_le_bytes(),
    )?;
    w.write_all(&config.seed.to_le_bytes())?;
    w.write_all(&[u8::from(trained.residual)])?;
    w.write_all(&trained.label_scale.to_le_bytes())?;
    w.write_all(&[trained.precision.id()])?;
    serialize::save(&trained.store, w)
}

/// Loads a bundle saved by [`save_model`], rebuilding the architecture
/// and restoring the trained parameters. A `&mut` reader may be
/// passed.
///
/// # Errors
///
/// Returns [`CheckpointError::BadMagic`] / [`CheckpointError::BadVersion`]
/// for foreign streams, [`CheckpointError::Mismatch`] for unknown model
/// ids, and propagates parameter-stream errors.
pub fn load_model<R: Read>(mut r: R) -> Result<TrainedModel, CheckpointError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = read_u32(&mut r)?;
    if version == 0 || version > VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let kind_id = read_u32(&mut r)?;
    let kind = ModelKind::from_id(kind_id)
        .ok_or_else(|| CheckpointError::Mismatch(format!("unknown model kind id {kind_id}")))?;
    let in_channels = read_u32(&mut r)? as usize;
    let base_channels = read_u32(&mut r)? as usize;
    let mut seed_bytes = [0u8; 8];
    r.read_exact(&mut seed_bytes)?;
    let seed = u64::from_le_bytes(seed_bytes);
    let mut flag = [0u8; 1];
    r.read_exact(&mut flag)?;
    let residual = flag[0] != 0;
    let mut scale_bytes = [0u8; 4];
    r.read_exact(&mut scale_bytes)?;
    let label_scale = f32::from_le_bytes(scale_bytes);
    let precision = if version >= 2 {
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        PrecisionMode::from_id(tag[0])
            .ok_or_else(|| CheckpointError::Mismatch(format!("unknown precision tag {}", tag[0])))?
    } else {
        PrecisionMode::F32
    };
    let (model, mut store) = build_model(
        kind,
        ModelConfig {
            in_channels,
            base_channels,
            seed,
            linear_head: residual,
        },
    );
    serialize::load(&mut store, r)?;
    // Sidecars are derived data: rebuild them from the freshly loaded
    // f32 weights (deterministic, so two loads agree bitwise).
    store.quantize(precision);
    Ok(TrainedModel {
        model,
        store,
        label_scale,
        residual,
        loss_history: Vec::new(),
        precision,
    })
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, CheckpointError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FusionConfig;
    use crate::evaluate::evaluate_model;
    use crate::pipeline::IrFusionPipeline;
    use crate::train::train;
    use irf_data::Dataset;

    #[test]
    fn bundle_roundtrip_preserves_everything() {
        let ds = Dataset::generate(2, 2, 1, 99);
        let mut cfg = FusionConfig::tiny();
        cfg.train.epochs = 1;
        let trained = train(ModelKind::IrFusion, &ds, &cfg);
        // The in_channels used by training are inferred from the data.
        let mut model_cfg = cfg.model;
        model_cfg.in_channels = 11;
        model_cfg.linear_head = trained.residual;
        let mut buf = Vec::new();
        save_model(&trained, ModelKind::IrFusion, model_cfg, &mut buf).expect("save");
        let loaded = load_model(buf.as_slice()).expect("load");
        assert_eq!(loaded.residual, trained.residual);
        assert_eq!(loaded.label_scale, trained.label_scale);
        // Same predictions bit-for-bit on the evaluation path.
        let pipeline = IrFusionPipeline::new(cfg);
        let a = evaluate_model(&trained, &ds, &pipeline);
        let b = evaluate_model(&loaded, &ds, &pipeline);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.mae_volts, y.mae_volts);
        }
    }

    #[test]
    fn quantized_bundle_roundtrips_with_identical_predictions() {
        let ds = Dataset::generate(2, 2, 1, 41);
        let mut cfg = FusionConfig::tiny();
        cfg.train.epochs = 1;
        let trained = train(ModelKind::IrFusion, &ds, &cfg).with_precision(PrecisionMode::Int8);
        let mut model_cfg = cfg.model;
        model_cfg.in_channels = 11;
        model_cfg.linear_head = trained.residual;
        let mut buf = Vec::new();
        save_model(&trained, ModelKind::IrFusion, model_cfg, &mut buf).expect("save");
        let loaded = load_model(buf.as_slice()).expect("load");
        assert_eq!(loaded.precision, PrecisionMode::Int8);
        let pipeline = IrFusionPipeline::new(cfg);
        let a = evaluate_model(&trained, &ds, &pipeline);
        let b = evaluate_model(&loaded, &ds, &pipeline);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.mae_volts, y.mae_volts, "sidecar rebuild must be exact");
        }
    }

    #[test]
    fn version1_stream_loads_as_f32() {
        // Build a V2 bundle, then rewrite it as a V1 stream (no
        // precision tag) and confirm it still loads, defaulting to f32.
        let ds = Dataset::generate(1, 1, 1, 43);
        let mut cfg = FusionConfig::tiny();
        cfg.train.epochs = 0;
        let trained = train(ModelKind::IrFusion, &ds, &cfg);
        let mut model_cfg = cfg.model;
        model_cfg.in_channels = 11;
        model_cfg.linear_head = trained.residual;
        let mut buf = Vec::new();
        save_model(&trained, ModelKind::IrFusion, model_cfg, &mut buf).expect("save");
        // Header: magic(4) version(4) kind(4) in_ch(4) base_ch(4)
        // seed(8) residual(1) scale(4) tag(1).
        let mut v1 = Vec::with_capacity(buf.len() - 1);
        v1.extend_from_slice(&buf[..4]);
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&buf[8..33]);
        v1.extend_from_slice(&buf[34..]);
        let loaded = load_model(v1.as_slice()).expect("v1 load");
        assert_eq!(loaded.precision, PrecisionMode::F32);
        assert_eq!(loaded.label_scale, trained.label_scale);
    }

    #[test]
    fn unknown_precision_tag_is_rejected() {
        let ds = Dataset::generate(1, 1, 1, 44);
        let mut cfg = FusionConfig::tiny();
        cfg.train.epochs = 0;
        let trained = train(ModelKind::IrFusion, &ds, &cfg);
        let mut model_cfg = cfg.model;
        model_cfg.in_channels = 11;
        model_cfg.linear_head = trained.residual;
        let mut buf = Vec::new();
        save_model(&trained, ModelKind::IrFusion, model_cfg, &mut buf).expect("save");
        buf[33] = 0xEE; // precision tag byte
        assert!(matches!(
            load_model(buf.as_slice()),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    #[test]
    fn foreign_streams_are_rejected() {
        assert!(matches!(
            load_model(&b"NOTAMODEL"[..]),
            Err(CheckpointError::BadMagic)
        ));
    }

    #[test]
    fn unknown_kind_is_reported() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"IRFM");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&999u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 32]);
        assert!(matches!(
            load_model(buf.as_slice()),
            Err(CheckpointError::Mismatch(_))
        ));
    }
}
