//! IR-Fusion: a fusion framework for static IR drop analysis combining
//! numerical solution and machine learning.
//!
//! This crate is the top of the reproduction stack. It wires together:
//!
//! - the SPICE front door ([`irf_spice`]) and circuit model
//!   ([`irf_pg`]);
//! - the **AMG-PCG** numerical solver ([`irf_sparse`]) run for a small
//!   number of iterations to obtain a *rough* solution;
//! - hierarchical numerical-structural **feature fusion**
//!   ([`irf_features`]);
//! - the **Inception Attention U-Net** and the baseline zoo
//!   ([`irf_models`]) on the in-house autograd framework
//!   ([`irf_nn`]);
//! - **augmented curriculum learning** ([`irf_data`]) for training;
//! - contest metrics ([`irf_metrics`]) for evaluation.
//!
//! # Quickstart
//!
//! ```
//! use ir_fusion::{FusionConfig, IrFusionPipeline};
//! use irf_data::{synthesize, SynthSpec};
//!
//! // Synthesize a small design and analyze it end to end.
//! let netlist = synthesize(&SynthSpec::default());
//! let pipeline = IrFusionPipeline::new(FusionConfig::default());
//! let analysis = pipeline.analyze_netlist(&netlist)?;
//! assert!(analysis.rough_map.max() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod config;
pub mod evaluate;
pub mod experiment;
pub mod pipeline;
pub mod report;
pub mod stages;
pub mod store;
pub mod train;

pub use checkpoint::{load_model, save_model};
pub use config::{FusionConfig, TrainConfig};
pub use evaluate::{evaluate_model, evaluate_numerical};
pub use irf_features::FeatureError;
pub use irf_nn::PrecisionMode;
pub use pipeline::{
    Analysis, AnalysisSession, CachePolicy, EditPlan, FeatureStackBuilder, IrFusionPipeline,
    PreparedSample, PreparedStack, StreamPrepareError,
};
pub use report::SignoffReport;
pub use stages::{
    apply_topology_deltas, conductance_fingerprint, currents_fingerprint, design_fingerprint,
    geometry_fingerprint, topology_fingerprint, warm_stage_fingerprint, EditError, Prediction,
    RoughSolution, Stage, StagePlan, TopologyDelta, WARM_ROUGH_TAG,
};
pub use store::{StageArtifact, StageCounters, StageStore};
pub use train::{train, TrainedModel};
