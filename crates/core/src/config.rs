//! Configuration of the end-to-end fusion pipeline.

use irf_data::curriculum::CurriculumScheduler;
use irf_features::FeatureConfig;
use irf_models::ModelConfig;
use irf_nn::optim::LrSchedule;
use irf_sparse::amg::AmgParams;
use irf_sparse::smoother::SmootherKind;
use irf_sparse::SolverKind;

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Optional learning-rate schedule; when set it overrides
    /// `learning_rate` per epoch (warmup + step decay).
    pub lr_schedule: Option<LrSchedule>,
    /// Apply the paper's 90/180/270 rotation augmentation.
    pub rotations: bool,
    /// Apply the paper's class oversampling (fake x2, real x5).
    pub oversample: bool,
    /// Curriculum scheduler; `None` trains on everything from epoch 0
    /// (the "w/o Curr. Lear." ablation).
    pub curriculum: Option<CurriculumScheduler>,
    /// Weight of the Kirchhoff-constraint loss for models that request
    /// it (IRPnet).
    pub kirchhoff_alpha: f32,
    /// Gradient-norm clip applied before each optimizer step.
    pub grad_clip: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 12,
            learning_rate: 2e-3,
            lr_schedule: None,
            rotations: true,
            oversample: true,
            curriculum: Some(CurriculumScheduler::default()),
            kirchhoff_alpha: 1e-3,
            grad_clip: 5.0,
        }
    }
}

/// Full pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusionConfig {
    /// PCG iterations for the rough numerical solution (the paper's
    /// Fig. 7 sweeps this from 1 to 10; 2 is the sweet spot).
    pub solver_iterations: usize,
    /// Which solver produces the rough solution. The default is the
    /// V-cycle AMG-PCG operating point: on laptop-scale grids the full
    /// K-cycle nearly converges within a couple of iterations, which
    /// would leave Fig. 7 with no trade-off to study; the lighter
    /// cycle reproduces the paper's still-rough-at-k-iterations regime
    /// (see EXPERIMENTS.md).
    pub solver_kind: SolverKind,
    /// AMG setup parameters.
    pub amg: AmgParams,
    /// Feature extraction settings (resolution, hierarchy toggles).
    pub feature: FeatureConfig,
    /// Model instantiation settings.
    pub model: ModelConfig,
    /// Training settings.
    pub train: TrainConfig,
    /// Worker threads for the parallel runtime. `0` means "auto":
    /// `IRF_THREADS` when set, otherwise the machine's available
    /// parallelism. `1` runs everything serially on the calling thread.
    /// Results are bitwise identical at any setting.
    pub num_threads: usize,
}

impl Default for FusionConfig {
    fn default() -> Self {
        let feature = FeatureConfig::default();
        FusionConfig {
            solver_iterations: 2,
            solver_kind: SolverKind::AmgPcgVCycle,
            amg: AmgParams {
                smoother: SmootherKind::Jacobi,
                ..AmgParams::default()
            },
            feature,
            model: ModelConfig::default(),
            train: TrainConfig::default(),
            num_threads: 0,
        }
    }
}

impl FusionConfig {
    /// A configuration sized for fast tests: tiny maps, one epoch.
    #[must_use]
    pub fn tiny() -> Self {
        let mut cfg = FusionConfig::default();
        cfg.feature.width = 16;
        cfg.feature.height = 16;
        cfg.model.base_channels = 6;
        cfg.train.epochs = 1;
        cfg
    }

    /// Number of feature channels the configured extractor produces
    /// for a grid with `n_layers` metal layers.
    #[must_use]
    pub fn feature_channels(&self, n_layers: usize) -> usize {
        let mut c = 5; // shared structural maps
        if self.feature.hierarchical {
            c += n_layers; // per-layer current
        }
        if self.feature.numerical {
            c += n_layers; // per-layer rough solution
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = FusionConfig::default();
        assert_eq!(cfg.solver_iterations, 2);
        assert!(cfg.train.rotations && cfg.train.oversample);
        assert!(cfg.train.curriculum.is_some());
    }

    #[test]
    fn channel_count_tracks_toggles() {
        let mut cfg = FusionConfig::default();
        assert_eq!(cfg.feature_channels(3), 11);
        cfg.feature.numerical = false;
        assert_eq!(cfg.feature_channels(3), 8);
        cfg.feature.hierarchical = false;
        assert_eq!(cfg.feature_channels(3), 5);
    }

    #[test]
    fn tiny_config_shrinks_everything() {
        let t = FusionConfig::tiny();
        assert!(t.feature.width <= 16 && t.train.epochs <= 1);
    }
}
