//! The stage graph: typed pipeline artifacts and the content
//! fingerprints that key them.
//!
//! A full analysis decomposes into a chain of stage artifacts
//!
//! ```text
//! ParsedDesign -> AssembledSystem -> SolverSetup -> RoughSolution
//!                                 \-> StructuralMaps -/
//!                                        -> FeatureStack -> Prediction
//! ```
//!
//! where each artifact is determined by *exactly* the inputs its
//! fingerprint covers:
//!
//! | stage                | fingerprint inputs                               |
//! |----------------------|--------------------------------------------------|
//! | `Parsed`             | raw netlist bytes ([`irf_spice::source_hash`])   |
//! | `Assembled`          | topology (geometry + conductances + pad volts)   |
//! | `SolverSetup`        | topology + solver configuration                  |
//! | `Rough`              | topology + solver configuration + currents       |
//! | `Structural`         | geometry + feature configuration                 |
//! | `Resistance`         | geometry + conductances + feature configuration  |
//! | `Stack`              | all of the above                                 |
//!
//! The topology fingerprint is itself split: the *geometry* half
//! (node positions, layers, segment endpoints, pad set) and the
//! *conductance* half (segment resistances) are hashed separately and
//! combined. Editing only the current vector invalidates `Rough` and
//! `Stack` while the assembled MNA matrix, the AMG hierarchy and all
//! structural feature maps are reused verbatim. A strap/via resistance
//! edit ([`TopologyDelta`]) keeps the `Parsed` and geometry-keyed
//! `Structural` artifacts warm and recomputes only the
//! conductance-dependent chain (`Assembled → SolverSetup → Rough`,
//! `Resistance`, `Stack`) — and those recomputations ride incremental
//! fast paths (CSR re-stamping, AMG pattern reuse) where possible.
//! Predictions are *not* cached: the model can be hot-swapped at any
//! time, so they are recomputed from the (cached) stack.
//!
//! All fingerprints are 64-bit FNV-1a ([`irf_spice::Fnv1a`]): stable
//! across processes and platforms, so a restarted server reproduces
//! the same keys for the same designs.

use crate::config::FusionConfig;
use irf_pg::{GridMap, Load, PowerGrid};
use irf_sparse::SolveReport;
use irf_spice::Fnv1a;

/// Identifies one stage of the analysis pipeline in the stage store
/// and its metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Parsed design (power grid) keyed by netlist source or design
    /// fingerprint.
    Parsed,
    /// Assembled MNA system (matrix + node index maps).
    Assembled,
    /// Prepared solver handle (AMG hierarchy, factorization, ...).
    SolverSetup,
    /// Truncated rough solve result.
    Rough,
    /// Geometry-only structural feature maps (distance, density) —
    /// reusable across both current and strap/via resistance edits.
    Structural,
    /// Resistance-dependent structural feature maps (resistance mass,
    /// shortest-path resistance) — invalidated by strap/via edits but
    /// not by current edits.
    Resistance,
    /// The fully assembled feature stack.
    Stack,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 7] = [
        Stage::Parsed,
        Stage::Assembled,
        Stage::SolverSetup,
        Stage::Rough,
        Stage::Structural,
        Stage::Resistance,
        Stage::Stack,
    ];

    /// Stable label for metrics and trace attributes.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Stage::Parsed => "parsed",
            Stage::Assembled => "assembled",
            Stage::SolverSetup => "solver_setup",
            Stage::Rough => "rough",
            Stage::Structural => "structural",
            Stage::Resistance => "resistance",
            Stage::Stack => "stack",
        }
    }

    /// Dense index for per-stage counter arrays.
    #[must_use]
    pub(crate) fn index(self) -> usize {
        match self {
            Stage::Parsed => 0,
            Stage::Assembled => 1,
            Stage::SolverSetup => 2,
            Stage::Rough => 3,
            Stage::Structural => 4,
            Stage::Resistance => 5,
            Stage::Stack => 6,
        }
    }
}

/// The truncated rough-solve artifact: per-node drops plus the solve
/// report behind them.
#[derive(Debug, Clone)]
pub struct RoughSolution {
    /// The [`Stage::Rough`] fingerprint this solution was computed
    /// under (topology + solver configuration + currents).
    pub fingerprint: u64,
    /// Per-node voltage drops (full node space, pads at zero).
    pub drops: Vec<f64>,
    /// Report of the truncated solve.
    pub report: SolveReport,
    /// Seconds spent in the solve (excluding reused setup).
    pub solve_seconds: f64,
}

/// A model prediction, tagged with the fingerprint of the stack it
/// was computed from. Not cached — the model can be hot-swapped — but
/// carrying the fingerprint lets callers correlate predictions with
/// the warm artifacts that produced them.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// The [`Stage::Stack`] fingerprint of the input stack.
    pub fingerprint: u64,
    /// The fused bottom-layer drop map (volts).
    pub map: GridMap,
}

/// Fingerprint of the grid *geometry*: node names, layers, positions
/// and pad membership, segment endpoints, and the pad node set —
/// everything that shapes the structural rasterization and the MNA
/// sparsity pattern, but **not** the segment resistances, pad
/// voltages, or load currents. A strap/via resistance edit keeps this
/// fingerprint (and the geometry-keyed [`Stage::Structural`] maps)
/// valid.
#[must_use]
pub fn geometry_fingerprint(grid: &PowerGrid) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(grid.nodes.len() as u64);
    for n in &grid.nodes {
        h.write(n.name.as_bytes());
        h.write(&[0]);
        h.write_u64(u64::from(n.layer));
        h.write(&n.x.to_le_bytes());
        h.write(&n.y.to_le_bytes());
        h.write(&[u8::from(n.is_pad)]);
    }
    h.write_u64(grid.segments.len() as u64);
    for s in &grid.segments {
        h.write_u64(s.a as u64);
        h.write_u64(s.b as u64);
    }
    h.write_u64(grid.pads.len() as u64);
    for p in &grid.pads {
        h.write_u64(p.node as u64);
    }
    h.finish()
}

/// Fingerprint of the segment resistances alone — the half of the
/// topology a strap/via edit changes. Segment endpoints are covered
/// by [`geometry_fingerprint`]; this hash covers only the `ohms`
/// values, positionally.
#[must_use]
pub fn conductance_fingerprint(grid: &PowerGrid) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(grid.segments.len() as u64);
    for s in &grid.segments {
        h.write_f64(s.ohms);
    }
    h.finish()
}

/// Fingerprint of the grid *topology*: nodes, segments and pads —
/// everything that shapes the MNA matrix, and nothing that doesn't.
/// The load (current) vector is deliberately excluded: it only enters
/// the right-hand side, so a current-only edit keeps this fingerprint
/// (and every artifact keyed by it) valid.
///
/// Composed from [`geometry_fingerprint`], [`conductance_fingerprint`]
/// and the pad voltages, so artifacts keyed on the geometry half alone
/// can be shared across resistance edits.
#[must_use]
pub fn topology_fingerprint(grid: &PowerGrid) -> u64 {
    let mut volts = Fnv1a::new();
    volts.write_u64(grid.pads.len() as u64);
    for p in &grid.pads {
        volts.write_f64(p.volts);
    }
    combine_fingerprints(&[
        geometry_fingerprint(grid),
        conductance_fingerprint(grid),
        volts.finish(),
    ])
}

/// Fingerprint of the load (current) vector alone — the only input
/// that changes under a what-if current edit.
#[must_use]
pub fn currents_fingerprint(loads: &[Load]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(loads.len() as u64);
    for l in loads {
        h.write_u64(l.node as u64);
        h.write_f64(l.amps);
    }
    h.finish()
}

/// Fingerprint of the configuration fields that shape the prepared
/// solver (kind, AMG parameters, iteration budget).
#[must_use]
pub fn solver_config_fingerprint(config: &FusionConfig) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(config.solver_iterations as u64);
    // Debug formatting is stable and covers nested enums (solver
    // kind, smoother, cycle) without a bespoke serialization.
    h.write(format!("{:?}", config.solver_kind).as_bytes());
    h.write(format!("{:?}", config.amg).as_bytes());
    h.finish()
}

/// Fingerprint of the feature-extraction configuration (resolution,
/// normalization, enabled families).
#[must_use]
pub fn feature_config_fingerprint(config: &FusionConfig) -> u64 {
    let mut h = Fnv1a::new();
    h.write(format!("{:?}", config.feature).as_bytes());
    h.finish()
}

/// Folds already-computed fingerprints into one composite key.
#[must_use]
pub fn combine_fingerprints(parts: &[u64]) -> u64 {
    let mut h = Fnv1a::new();
    for &p in parts {
        h.write_u64(p);
    }
    h.finish()
}

/// Domain-separation tag mixed into [`Stage::Rough`] and
/// [`Stage::Stack`] keys when a rough solve is warm-started from a
/// prior [`RoughSolution`] (FNV-1a of `"irf-warm-rough"`). Keeping
/// warm-started artifacts under distinct keys preserves the bitwise
/// cold contract for every default-path cache entry.
pub const WARM_ROUGH_TAG: u64 = 0xd895_9991_8696_006a;

/// Key for a stage artifact whose rough solve was warm-started from
/// the seed with fingerprint `seed`: the plain stage key, the
/// [`WARM_ROUGH_TAG`] domain separator and the seed identity folded
/// together so warm and cold artifacts can never collide in the store.
#[must_use]
pub fn warm_stage_fingerprint(key: u64, seed: u64) -> u64 {
    combine_fingerprints(&[key, WARM_ROUGH_TAG, seed])
}

/// Content fingerprint of a design plus the preparation-relevant
/// configuration — the [`Stage::Stack`] key.
///
/// Composed from [`topology_fingerprint`], [`currents_fingerprint`],
/// [`solver_config_fingerprint`] and [`feature_config_fingerprint`],
/// so two (grid, config) pairs with equal fingerprints produce
/// bitwise identical stacks. Model, training and threading settings
/// are deliberately excluded — they do not affect the stack (results
/// are bitwise identical at any thread count).
#[must_use]
pub fn design_fingerprint(grid: &PowerGrid, config: &FusionConfig) -> u64 {
    combine_fingerprints(&[
        topology_fingerprint(grid),
        currents_fingerprint(&grid.loads),
        solver_config_fingerprint(config),
        feature_config_fingerprint(config),
    ])
}

/// The full key plan for one (grid, config) pair: every per-stage
/// fingerprint the stage walk needs, computed once up front.
#[derive(Debug, Clone, Copy)]
pub struct StagePlan {
    /// Topology fingerprint — the [`Stage::Assembled`] key.
    pub assembled: u64,
    /// Topology + solver config — the [`Stage::SolverSetup`] key.
    pub solver_setup: u64,
    /// Topology + solver config + currents — the [`Stage::Rough`] key.
    pub rough: u64,
    /// Geometry + feature config — the [`Stage::Structural`] key.
    /// Survives strap/via resistance edits.
    pub structural: u64,
    /// Geometry + conductances + feature config — the
    /// [`Stage::Resistance`] key.
    pub resistance: u64,
    /// Everything — the [`Stage::Stack`] key, equal to
    /// [`design_fingerprint`].
    pub stack: u64,
}

impl StagePlan {
    /// Computes all stage keys for a design under a configuration.
    #[must_use]
    pub fn for_design(grid: &PowerGrid, config: &FusionConfig) -> Self {
        let geometry = geometry_fingerprint(grid);
        let conductance = conductance_fingerprint(grid);
        let topology = topology_fingerprint(grid);
        let currents = currents_fingerprint(&grid.loads);
        let solver_cfg = solver_config_fingerprint(config);
        let feature_cfg = feature_config_fingerprint(config);
        StagePlan {
            assembled: topology,
            solver_setup: combine_fingerprints(&[topology, solver_cfg]),
            rough: combine_fingerprints(&[topology, solver_cfg, currents]),
            structural: combine_fingerprints(&[geometry, feature_cfg]),
            resistance: combine_fingerprints(&[geometry, conductance, feature_cfg]),
            stack: combine_fingerprints(&[topology, currents, solver_cfg, feature_cfg]),
        }
    }
}

/// One topology edit of a what-if plan: a resistance change that keeps
/// the grid's geometry (and therefore its sparsity pattern and
/// geometry-keyed feature maps) intact.
///
/// Deltas are validated against the base grid before application; see
/// [`apply_topology_deltas`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologyDelta {
    /// Scales the resistance of every *strap* segment on `layer` (both
    /// endpoints on that layer) by `scale` — the "widen/narrow a power
    /// strap" edit (resistance scales inversely with strap width).
    Strap {
        /// Metal layer the strap segments live on.
        layer: u32,
        /// Multiplier applied to each matched segment's ohms (> 0).
        scale: f64,
    },
    /// Scales the resistance of every *via* segment between `lower`
    /// and `upper` (one endpoint on each layer) by `scale` — the
    /// "add/remove via cuts" edit (n parallel cuts divide resistance
    /// by n).
    Via {
        /// One of the two layers the via connects (order-insensitive).
        lower: u32,
        /// The other layer.
        upper: u32,
        /// Multiplier applied to each matched segment's ohms (> 0).
        scale: f64,
    },
    /// Sets one segment's resistance to an absolute value.
    Segment {
        /// Index into the grid's segment list.
        segment: usize,
        /// New resistance in ohms (> 0, finite).
        ohms: f64,
    },
}

/// Why a what-if edit plan was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum EditError {
    /// A strap delta matched no segment with both endpoints on the
    /// named layer.
    NoStrapSegments {
        /// The layer that matched nothing.
        layer: u32,
    },
    /// A via delta matched no segment connecting the two layers.
    NoViaSegments {
        /// One named layer.
        lower: u32,
        /// The other named layer.
        upper: u32,
    },
    /// A via delta named the same layer twice.
    DegenerateVia {
        /// The repeated layer.
        layer: u32,
    },
    /// A segment delta pointed outside the grid's segment list.
    SegmentOutOfRange {
        /// The offending index.
        segment: usize,
        /// Number of segments in the grid.
        segments: usize,
    },
    /// A scale or resistance value was zero, negative, NaN or infinite.
    InvalidValue {
        /// Which field was invalid (`"scale"` or `"ohms"`).
        what: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for EditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EditError::NoStrapSegments { layer } => {
                write!(f, "no strap segments on layer m{layer}")
            }
            EditError::NoViaSegments { lower, upper } => {
                write!(f, "no via segments between layers m{lower} and m{upper}")
            }
            EditError::DegenerateVia { layer } => {
                write!(f, "via delta names layer m{layer} twice")
            }
            EditError::SegmentOutOfRange { segment, segments } => {
                write!(f, "segment {segment} out of range ({segments} segments)")
            }
            EditError::InvalidValue { what, value } => {
                write!(f, "{what} must be positive and finite, got {value}")
            }
        }
    }
}

impl std::error::Error for EditError {}

/// Validates and applies a list of topology deltas to a grid in order.
///
/// Every delta must match at least one segment and carry a positive,
/// finite value; the first violation aborts with an [`EditError`] and
/// the grid is left untouched (application is all-or-nothing).
///
/// # Errors
///
/// See [`EditError`].
pub fn apply_topology_deltas(
    grid: &mut PowerGrid,
    deltas: &[TopologyDelta],
) -> Result<(), EditError> {
    // Validate against the *base* grid first so a trailing bad delta
    // cannot leave a half-edited grid behind.
    for d in deltas {
        match *d {
            TopologyDelta::Strap { layer, scale } => {
                check_positive("scale", scale)?;
                if !grid
                    .segments
                    .iter()
                    .any(|s| grid.nodes[s.a].layer == layer && grid.nodes[s.b].layer == layer)
                {
                    return Err(EditError::NoStrapSegments { layer });
                }
            }
            TopologyDelta::Via {
                lower,
                upper,
                scale,
            } => {
                check_positive("scale", scale)?;
                if lower == upper {
                    return Err(EditError::DegenerateVia { layer: lower });
                }
                if !grid.segments.iter().any(|s| {
                    let (la, lb) = (grid.nodes[s.a].layer, grid.nodes[s.b].layer);
                    (la, lb) == (lower, upper) || (la, lb) == (upper, lower)
                }) {
                    return Err(EditError::NoViaSegments { lower, upper });
                }
            }
            TopologyDelta::Segment { segment, ohms } => {
                check_positive("ohms", ohms)?;
                if segment >= grid.segments.len() {
                    return Err(EditError::SegmentOutOfRange {
                        segment,
                        segments: grid.segments.len(),
                    });
                }
            }
        }
    }
    for d in deltas {
        match *d {
            TopologyDelta::Strap { layer, scale } => {
                for i in 0..grid.segments.len() {
                    let s = &grid.segments[i];
                    if grid.nodes[s.a].layer == layer && grid.nodes[s.b].layer == layer {
                        grid.segments[i].ohms *= scale;
                    }
                }
            }
            TopologyDelta::Via {
                lower,
                upper,
                scale,
            } => {
                for i in 0..grid.segments.len() {
                    let s = &grid.segments[i];
                    let (la, lb) = (grid.nodes[s.a].layer, grid.nodes[s.b].layer);
                    if (la, lb) == (lower, upper) || (la, lb) == (upper, lower) {
                        grid.segments[i].ohms *= scale;
                    }
                }
            }
            TopologyDelta::Segment { segment, ohms } => {
                grid.segments[segment].ohms = ohms;
            }
        }
    }
    Ok(())
}

fn check_positive(what: &'static str, value: f64) -> Result<(), EditError> {
    if value.is_finite() && value > 0.0 {
        Ok(())
    } else {
        Err(EditError::InvalidValue { what, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irf_data::Design;

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let cfg = FusionConfig::tiny();
        let a = Design::fake(1);
        let b = Design::fake(2);
        assert_eq!(
            design_fingerprint(&a.grid, &cfg),
            design_fingerprint(&a.grid, &cfg),
            "same content must fingerprint identically"
        );
        assert_ne!(
            design_fingerprint(&a.grid, &cfg),
            design_fingerprint(&b.grid, &cfg),
            "different designs must fingerprint differently"
        );
        let mut cfg2 = cfg;
        cfg2.solver_iterations += 1;
        assert_ne!(
            design_fingerprint(&a.grid, &cfg),
            design_fingerprint(&a.grid, &cfg2),
            "solver budget is preparation-relevant"
        );
        let mut cfg3 = cfg;
        cfg3.num_threads = 7;
        assert_eq!(
            design_fingerprint(&a.grid, &cfg),
            design_fingerprint(&a.grid, &cfg3),
            "thread count must not affect the fingerprint"
        );
    }

    #[test]
    fn current_edits_keep_topology_and_setup_keys() {
        let cfg = FusionConfig::tiny();
        let base = Design::fake(1);
        let mut edited = base.grid.clone();
        edited.loads[0].amps *= 2.0;
        let a = StagePlan::for_design(&base.grid, &cfg);
        let b = StagePlan::for_design(&edited, &cfg);
        assert_eq!(a.assembled, b.assembled, "topology unchanged");
        assert_eq!(a.solver_setup, b.solver_setup, "solver setup reusable");
        assert_eq!(a.structural, b.structural, "structural maps reusable");
        assert_ne!(a.rough, b.rough, "rough solve must rerun");
        assert_ne!(a.stack, b.stack, "stack must rebuild");
    }

    #[test]
    fn topology_edits_invalidate_every_derived_key() {
        let cfg = FusionConfig::tiny();
        let base = Design::fake(1);
        let mut rewired = base.grid.clone();
        rewired.segments[0].ohms *= 2.0;
        let a = StagePlan::for_design(&base.grid, &cfg);
        let b = StagePlan::for_design(&rewired, &cfg);
        assert_ne!(a.assembled, b.assembled);
        assert_ne!(a.solver_setup, b.solver_setup);
        assert_ne!(a.rough, b.rough);
        assert_ne!(a.resistance, b.resistance, "resistance maps must rerun");
        assert_ne!(a.stack, b.stack);
        // The geometry half is untouched by a resistance edit: the
        // geometry-keyed structural maps stay warm.
        assert_eq!(a.structural, b.structural, "geometry maps reusable");
        assert_eq!(
            geometry_fingerprint(&base.grid),
            geometry_fingerprint(&rewired)
        );
        assert_ne!(
            conductance_fingerprint(&base.grid),
            conductance_fingerprint(&rewired)
        );

        // A *geometric* edit (rewiring a segment endpoint) invalidates
        // the geometry half too.
        let mut respanned = base.grid.clone();
        respanned.segments[0].b = respanned.segments[1].b;
        let c = StagePlan::for_design(&respanned, &cfg);
        assert_ne!(a.structural, c.structural);
        assert_ne!(a.assembled, c.assembled);
    }

    #[test]
    fn strap_and_via_deltas_rescale_matched_segments() {
        let base = Design::fake(1);
        let layer_of = |g: &PowerGrid, i: usize| {
            (
                g.nodes[g.segments[i].a].layer,
                g.nodes[g.segments[i].b].layer,
            )
        };
        let (strap_layer, via_pair) = {
            let mut strap = None;
            let mut via = None;
            for i in 0..base.grid.segments.len() {
                let (la, lb) = layer_of(&base.grid, i);
                if la == lb {
                    strap.get_or_insert(la);
                } else {
                    via.get_or_insert((la.min(lb), la.max(lb)));
                }
            }
            (strap.expect("strap segment"), via.expect("via segment"))
        };

        let mut edited = base.grid.clone();
        apply_topology_deltas(
            &mut edited,
            &[
                TopologyDelta::Strap {
                    layer: strap_layer,
                    scale: 0.5,
                },
                TopologyDelta::Via {
                    lower: via_pair.1, // order-insensitive
                    upper: via_pair.0,
                    scale: 2.0,
                },
            ],
        )
        .expect("valid deltas");
        for i in 0..base.grid.segments.len() {
            let (la, lb) = layer_of(&base.grid, i);
            let (old, new) = (base.grid.segments[i].ohms, edited.segments[i].ohms);
            if la == strap_layer && lb == strap_layer {
                assert_eq!(new, old * 0.5, "strap segment {i}");
            } else if (la.min(lb), la.max(lb)) == via_pair {
                assert_eq!(new, old * 2.0, "via segment {i}");
            } else {
                assert_eq!(new, old, "untouched segment {i}");
            }
        }
        // Geometry is preserved; only conductances changed.
        assert_eq!(
            geometry_fingerprint(&base.grid),
            geometry_fingerprint(&edited)
        );
        assert_ne!(
            conductance_fingerprint(&base.grid),
            conductance_fingerprint(&edited)
        );
    }

    #[test]
    fn bad_deltas_are_rejected_without_touching_the_grid() {
        let base = Design::fake(1);
        let mut g = base.grid.clone();
        let cases: Vec<(TopologyDelta, EditError)> = vec![
            (
                TopologyDelta::Strap {
                    layer: 99,
                    scale: 0.5,
                },
                EditError::NoStrapSegments { layer: 99 },
            ),
            (
                TopologyDelta::Via {
                    lower: 1,
                    upper: 1,
                    scale: 0.5,
                },
                EditError::DegenerateVia { layer: 1 },
            ),
            (
                TopologyDelta::Via {
                    lower: 77,
                    upper: 78,
                    scale: 0.5,
                },
                EditError::NoViaSegments {
                    lower: 77,
                    upper: 78,
                },
            ),
            (
                TopologyDelta::Segment {
                    segment: usize::MAX,
                    ohms: 1.0,
                },
                EditError::SegmentOutOfRange {
                    segment: usize::MAX,
                    segments: base.grid.segments.len(),
                },
            ),
            (
                TopologyDelta::Strap {
                    layer: 1,
                    scale: -2.0,
                },
                EditError::InvalidValue {
                    what: "scale",
                    value: -2.0,
                },
            ),
            (
                TopologyDelta::Segment {
                    segment: 0,
                    ohms: f64::NAN,
                },
                EditError::InvalidValue {
                    what: "ohms",
                    value: f64::NAN,
                },
            ),
        ];
        for (delta, want) in cases {
            // A valid leading delta must not be applied when a later
            // one fails: application is all-or-nothing.
            let got = apply_topology_deltas(
                &mut g,
                &[
                    TopologyDelta::Segment {
                        segment: 0,
                        ohms: 123.0,
                    },
                    delta,
                ],
            )
            .expect_err("delta must be rejected");
            match (&got, &want) {
                // NaN != NaN: compare the variant and field name only.
                (
                    EditError::InvalidValue { what: a, value: v },
                    EditError::InvalidValue { what: b, .. },
                ) if v.is_nan() => assert_eq!(a, b),
                _ => assert_eq!(got, want),
            }
            assert_eq!(g, base.grid, "grid must be untouched after {want:?}");
        }
    }

    #[test]
    fn pad_set_is_part_of_the_topology() {
        let cfg = FusionConfig::tiny();
        let base = Design::fake(1);
        let mut repinned = base.grid.clone();
        repinned.pads[0].volts += 0.1;
        let a = StagePlan::for_design(&base.grid, &cfg);
        let b = StagePlan::for_design(&repinned, &cfg);
        assert_ne!(a.assembled, b.assembled, "pad edits change the system");
    }

    #[test]
    fn config_fingerprints_split_solver_from_features() {
        let cfg = FusionConfig::tiny();
        let mut more_iters = cfg;
        more_iters.solver_iterations += 1;
        assert_ne!(
            solver_config_fingerprint(&cfg),
            solver_config_fingerprint(&more_iters)
        );
        assert_eq!(
            feature_config_fingerprint(&cfg),
            feature_config_fingerprint(&more_iters),
            "solver budget must not touch the feature key"
        );
    }
}
