//! The stage graph: typed pipeline artifacts and the content
//! fingerprints that key them.
//!
//! A full analysis decomposes into a chain of stage artifacts
//!
//! ```text
//! ParsedDesign -> AssembledSystem -> SolverSetup -> RoughSolution
//!                                 \-> StructuralMaps -/
//!                                        -> FeatureStack -> Prediction
//! ```
//!
//! where each artifact is determined by *exactly* the inputs its
//! fingerprint covers:
//!
//! | stage                | fingerprint inputs                               |
//! |----------------------|--------------------------------------------------|
//! | `Parsed`             | raw netlist bytes ([`irf_spice::source_hash`])   |
//! | `Assembled`          | topology (nodes, segments, pads)                 |
//! | `SolverSetup`        | topology + solver configuration                  |
//! | `Rough`              | topology + solver configuration + currents       |
//! | `Structural`         | topology + feature configuration                 |
//! | `Stack`              | all of the above                                 |
//!
//! Editing only the current vector therefore invalidates `Rough` and
//! `Stack` while the assembled MNA matrix, the AMG hierarchy and the
//! current-independent structural feature maps are reused verbatim —
//! the incremental what-if path. Predictions are *not* cached: the
//! model can be hot-swapped at any time, so they are recomputed from
//! the (cached) stack.
//!
//! All fingerprints are 64-bit FNV-1a ([`irf_spice::Fnv1a`]): stable
//! across processes and platforms, so a restarted server reproduces
//! the same keys for the same designs.

use crate::config::FusionConfig;
use irf_pg::{GridMap, Load, PowerGrid};
use irf_sparse::SolveReport;
use irf_spice::Fnv1a;

/// Identifies one stage of the analysis pipeline in the stage store
/// and its metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Parsed design (power grid) keyed by netlist source or design
    /// fingerprint.
    Parsed,
    /// Assembled MNA system (matrix + node index maps).
    Assembled,
    /// Prepared solver handle (AMG hierarchy, factorization, ...).
    SolverSetup,
    /// Truncated rough solve result.
    Rough,
    /// Current-independent structural feature maps.
    Structural,
    /// The fully assembled feature stack.
    Stack,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::Parsed,
        Stage::Assembled,
        Stage::SolverSetup,
        Stage::Rough,
        Stage::Structural,
        Stage::Stack,
    ];

    /// Stable label for metrics and trace attributes.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Stage::Parsed => "parsed",
            Stage::Assembled => "assembled",
            Stage::SolverSetup => "solver_setup",
            Stage::Rough => "rough",
            Stage::Structural => "structural",
            Stage::Stack => "stack",
        }
    }

    /// Dense index for per-stage counter arrays.
    #[must_use]
    pub(crate) fn index(self) -> usize {
        match self {
            Stage::Parsed => 0,
            Stage::Assembled => 1,
            Stage::SolverSetup => 2,
            Stage::Rough => 3,
            Stage::Structural => 4,
            Stage::Stack => 5,
        }
    }
}

/// The truncated rough-solve artifact: per-node drops plus the solve
/// report behind them.
#[derive(Debug, Clone)]
pub struct RoughSolution {
    /// The [`Stage::Rough`] fingerprint this solution was computed
    /// under (topology + solver configuration + currents).
    pub fingerprint: u64,
    /// Per-node voltage drops (full node space, pads at zero).
    pub drops: Vec<f64>,
    /// Report of the truncated solve.
    pub report: SolveReport,
    /// Seconds spent in the solve (excluding reused setup).
    pub solve_seconds: f64,
}

/// A model prediction, tagged with the fingerprint of the stack it
/// was computed from. Not cached — the model can be hot-swapped — but
/// carrying the fingerprint lets callers correlate predictions with
/// the warm artifacts that produced them.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// The [`Stage::Stack`] fingerprint of the input stack.
    pub fingerprint: u64,
    /// The fused bottom-layer drop map (volts).
    pub map: GridMap,
}

/// Fingerprint of the grid *topology*: nodes, segments and pads —
/// everything that shapes the MNA matrix and the structural feature
/// maps, and nothing that doesn't. The load (current) vector is
/// deliberately excluded: it only enters the right-hand side, so a
/// current-only edit keeps this fingerprint (and every artifact keyed
/// by it) valid.
#[must_use]
pub fn topology_fingerprint(grid: &PowerGrid) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(grid.nodes.len() as u64);
    for n in &grid.nodes {
        h.write(n.name.as_bytes());
        h.write(&[0]);
        h.write_u64(u64::from(n.layer));
        h.write(&n.x.to_le_bytes());
        h.write(&n.y.to_le_bytes());
        h.write(&[u8::from(n.is_pad)]);
    }
    h.write_u64(grid.segments.len() as u64);
    for s in &grid.segments {
        h.write_u64(s.a as u64);
        h.write_u64(s.b as u64);
        h.write_f64(s.ohms);
    }
    h.write_u64(grid.pads.len() as u64);
    for p in &grid.pads {
        h.write_u64(p.node as u64);
        h.write_f64(p.volts);
    }
    h.finish()
}

/// Fingerprint of the load (current) vector alone — the only input
/// that changes under a what-if current edit.
#[must_use]
pub fn currents_fingerprint(loads: &[Load]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(loads.len() as u64);
    for l in loads {
        h.write_u64(l.node as u64);
        h.write_f64(l.amps);
    }
    h.finish()
}

/// Fingerprint of the configuration fields that shape the prepared
/// solver (kind, AMG parameters, iteration budget).
#[must_use]
pub fn solver_config_fingerprint(config: &FusionConfig) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(config.solver_iterations as u64);
    // Debug formatting is stable and covers nested enums (solver
    // kind, smoother, cycle) without a bespoke serialization.
    h.write(format!("{:?}", config.solver_kind).as_bytes());
    h.write(format!("{:?}", config.amg).as_bytes());
    h.finish()
}

/// Fingerprint of the feature-extraction configuration (resolution,
/// normalization, enabled families).
#[must_use]
pub fn feature_config_fingerprint(config: &FusionConfig) -> u64 {
    let mut h = Fnv1a::new();
    h.write(format!("{:?}", config.feature).as_bytes());
    h.finish()
}

/// Folds already-computed fingerprints into one composite key.
#[must_use]
pub fn combine_fingerprints(parts: &[u64]) -> u64 {
    let mut h = Fnv1a::new();
    for &p in parts {
        h.write_u64(p);
    }
    h.finish()
}

/// Content fingerprint of a design plus the preparation-relevant
/// configuration — the [`Stage::Stack`] key.
///
/// Composed from [`topology_fingerprint`], [`currents_fingerprint`],
/// [`solver_config_fingerprint`] and [`feature_config_fingerprint`],
/// so two (grid, config) pairs with equal fingerprints produce
/// bitwise identical stacks. Model, training and threading settings
/// are deliberately excluded — they do not affect the stack (results
/// are bitwise identical at any thread count).
#[must_use]
pub fn design_fingerprint(grid: &PowerGrid, config: &FusionConfig) -> u64 {
    combine_fingerprints(&[
        topology_fingerprint(grid),
        currents_fingerprint(&grid.loads),
        solver_config_fingerprint(config),
        feature_config_fingerprint(config),
    ])
}

/// The full key plan for one (grid, config) pair: every per-stage
/// fingerprint the stage walk needs, computed once up front.
#[derive(Debug, Clone, Copy)]
pub struct StagePlan {
    /// Topology fingerprint — the [`Stage::Assembled`] key.
    pub assembled: u64,
    /// Topology + solver config — the [`Stage::SolverSetup`] key.
    pub solver_setup: u64,
    /// Topology + solver config + currents — the [`Stage::Rough`] key.
    pub rough: u64,
    /// Topology + feature config — the [`Stage::Structural`] key.
    pub structural: u64,
    /// Everything — the [`Stage::Stack`] key, equal to
    /// [`design_fingerprint`].
    pub stack: u64,
}

impl StagePlan {
    /// Computes all stage keys for a design under a configuration.
    #[must_use]
    pub fn for_design(grid: &PowerGrid, config: &FusionConfig) -> Self {
        let topology = topology_fingerprint(grid);
        let currents = currents_fingerprint(&grid.loads);
        let solver_cfg = solver_config_fingerprint(config);
        let feature_cfg = feature_config_fingerprint(config);
        StagePlan {
            assembled: topology,
            solver_setup: combine_fingerprints(&[topology, solver_cfg]),
            rough: combine_fingerprints(&[topology, solver_cfg, currents]),
            structural: combine_fingerprints(&[topology, feature_cfg]),
            stack: combine_fingerprints(&[topology, currents, solver_cfg, feature_cfg]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irf_data::Design;

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let cfg = FusionConfig::tiny();
        let a = Design::fake(1);
        let b = Design::fake(2);
        assert_eq!(
            design_fingerprint(&a.grid, &cfg),
            design_fingerprint(&a.grid, &cfg),
            "same content must fingerprint identically"
        );
        assert_ne!(
            design_fingerprint(&a.grid, &cfg),
            design_fingerprint(&b.grid, &cfg),
            "different designs must fingerprint differently"
        );
        let mut cfg2 = cfg;
        cfg2.solver_iterations += 1;
        assert_ne!(
            design_fingerprint(&a.grid, &cfg),
            design_fingerprint(&a.grid, &cfg2),
            "solver budget is preparation-relevant"
        );
        let mut cfg3 = cfg;
        cfg3.num_threads = 7;
        assert_eq!(
            design_fingerprint(&a.grid, &cfg),
            design_fingerprint(&a.grid, &cfg3),
            "thread count must not affect the fingerprint"
        );
    }

    #[test]
    fn current_edits_keep_topology_and_setup_keys() {
        let cfg = FusionConfig::tiny();
        let base = Design::fake(1);
        let mut edited = base.grid.clone();
        edited.loads[0].amps *= 2.0;
        let a = StagePlan::for_design(&base.grid, &cfg);
        let b = StagePlan::for_design(&edited, &cfg);
        assert_eq!(a.assembled, b.assembled, "topology unchanged");
        assert_eq!(a.solver_setup, b.solver_setup, "solver setup reusable");
        assert_eq!(a.structural, b.structural, "structural maps reusable");
        assert_ne!(a.rough, b.rough, "rough solve must rerun");
        assert_ne!(a.stack, b.stack, "stack must rebuild");
    }

    #[test]
    fn topology_edits_invalidate_every_derived_key() {
        let cfg = FusionConfig::tiny();
        let base = Design::fake(1);
        let mut rewired = base.grid.clone();
        rewired.segments[0].ohms *= 2.0;
        let a = StagePlan::for_design(&base.grid, &cfg);
        let b = StagePlan::for_design(&rewired, &cfg);
        assert_ne!(a.assembled, b.assembled);
        assert_ne!(a.solver_setup, b.solver_setup);
        assert_ne!(a.rough, b.rough);
        assert_ne!(a.structural, b.structural);
        assert_ne!(a.stack, b.stack);
    }

    #[test]
    fn pad_set_is_part_of_the_topology() {
        let cfg = FusionConfig::tiny();
        let base = Design::fake(1);
        let mut repinned = base.grid.clone();
        repinned.pads[0].volts += 0.1;
        let a = StagePlan::for_design(&base.grid, &cfg);
        let b = StagePlan::for_design(&repinned, &cfg);
        assert_ne!(a.assembled, b.assembled, "pad edits change the system");
    }

    #[test]
    fn config_fingerprints_split_solver_from_features() {
        let cfg = FusionConfig::tiny();
        let mut more_iters = cfg;
        more_iters.solver_iterations += 1;
        assert_ne!(
            solver_config_fingerprint(&cfg),
            solver_config_fingerprint(&more_iters)
        );
        assert_eq!(
            feature_config_fingerprint(&cfg),
            feature_config_fingerprint(&more_iters),
            "solver budget must not touch the feature key"
        );
    }
}
