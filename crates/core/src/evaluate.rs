//! Evaluation on held-out designs (Table I / Fig. 7 measurements).

use crate::pipeline::IrFusionPipeline;
use crate::train::TrainedModel;
use irf_data::Dataset;
use irf_metrics::MetricReport;

/// Evaluates a trained model on the dataset's test split, returning
/// one report per design. Runtime covers solve + features + inference.
///
/// # Panics
///
/// Panics if the dataset has no test designs.
#[must_use]
pub fn evaluate_model(
    trained: &TrainedModel,
    dataset: &Dataset,
    pipeline: &IrFusionPipeline,
) -> Vec<MetricReport> {
    let mut span = irf_trace::span("evaluate_model");
    let mut reports = Vec::new();
    for design in dataset.test() {
        let analysis = pipeline
            .stack_builder()
            .analyze(&design.grid, Some(trained))
            .expect("test designs have pads");
        let golden = pipeline.golden_map(&design.grid);
        let pred = analysis.fused_map.expect("model supplied");
        reports.push(MetricReport::evaluate(
            pred.data(),
            golden.data(),
            analysis.runtime_seconds,
        ));
    }
    assert!(!reports.is_empty(), "dataset has no test designs");
    span.attr("designs", reports.len() as u64);
    reports
}

/// Evaluates the *raw numerical* solution at the pipeline's iteration
/// budget (PowerRush at `k` iterations — the Fig. 7 baseline).
///
/// # Panics
///
/// Panics if the dataset has no test designs.
#[must_use]
pub fn evaluate_numerical(dataset: &Dataset, pipeline: &IrFusionPipeline) -> Vec<MetricReport> {
    let _span = irf_trace::span("evaluate_numerical");
    let mut reports = Vec::new();
    for design in dataset.test() {
        let analysis = pipeline
            .stack_builder()
            .analyze(&design.grid, None)
            .expect("test designs have pads");
        let golden = pipeline.golden_map(&design.grid);
        reports.push(MetricReport::evaluate(
            analysis.rough_map.data(),
            golden.data(),
            analysis.runtime_seconds,
        ));
    }
    assert!(!reports.is_empty(), "dataset has no test designs");
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FusionConfig;
    use crate::train::train;
    use irf_models::ModelKind;

    #[test]
    fn numerical_evaluation_improves_with_iterations() {
        let ds = Dataset::generate(1, 2, 2, 3);
        let mut cfg = FusionConfig::tiny();
        cfg.solver_iterations = 1;
        let rough = evaluate_numerical(&ds, &IrFusionPipeline::new(cfg));
        cfg.solver_iterations = 10;
        let fine = evaluate_numerical(&ds, &IrFusionPipeline::new(cfg));
        let mean_rough = MetricReport::mean(&rough).mae_volts;
        let mean_fine = MetricReport::mean(&fine).mae_volts;
        assert!(
            mean_fine < mean_rough,
            "k=10 MAE {mean_fine:e} should beat k=1 {mean_rough:e}"
        );
    }

    #[test]
    fn model_evaluation_produces_reports() {
        let ds = Dataset::generate(2, 2, 1, 5);
        let mut cfg = FusionConfig::tiny();
        cfg.train.epochs = 2;
        let trained = train(ModelKind::IrEdge, &ds, &cfg);
        let reports = evaluate_model(&trained, &ds, &IrFusionPipeline::new(cfg));
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert!(r.mae_volts.is_finite() && r.mae_volts >= 0.0);
        assert!((0.0..=1.0).contains(&r.f1));
        assert!(r.runtime_seconds > 0.0);
    }
}
