//! A sharded, content-addressed store of stage artifacts shared by
//! the CLI training path and the inference server.
//!
//! The store replaces the old single feature-stack cache: instead of
//! one opaque `PreparedStack` entry per design, every intermediate
//! stage of the pipeline ([`Stage`]) lands here under its own
//! fingerprint, so an edit invalidates exactly the artifacts whose
//! inputs changed. A current-vector-only what-if reuses the assembled
//! MNA system, the prepared solver (AMG hierarchy) and the structural
//! feature maps verbatim and recomputes only the rough solve and the
//! stack assembly.
//!
//! Concurrency model (inherited from the old cache, now per
//! `(stage, key)` pair): the key space is split across independently
//! locked shards, eviction is LRU per stage per shard, and misses are
//! single-flighted — concurrent requests for the same artifact
//! compute it once and share the result. Hit/miss/coalesced/eviction
//! counters are tracked per stage and feed the server's `/metrics`
//! endpoint; every lookup also emits a `stage_cache` trace span
//! tagged with the stage and outcome, so a warm what-if run is
//! visibly free of `mna_assembly` / `amg_setup` spans and full of
//! `stage_cache` hits.

use crate::pipeline::PreparedStack;
use crate::stages::{RoughSolution, Stage};
use irf_features::{GeometryMaps, ResistanceMaps};
use irf_pg::{PgStructure, PowerGrid};
use irf_sparse::SolverSetup;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// One cached artifact. Every variant is an `Arc`, so hits are
/// refcount bumps, never deep copies.
#[derive(Debug, Clone)]
pub enum StageArtifact {
    /// A parsed design ([`Stage::Parsed`]).
    Parsed(Arc<PowerGrid>),
    /// An assembled MNA system ([`Stage::Assembled`]).
    Assembled(Arc<PgStructure>),
    /// A prepared solver handle ([`Stage::SolverSetup`]).
    Setup(Arc<SolverSetup>),
    /// A truncated rough solve ([`Stage::Rough`]).
    Rough(Arc<RoughSolution>),
    /// Geometry-only structural maps ([`Stage::Structural`]).
    Structural(Arc<GeometryMaps>),
    /// Resistance-dependent structural maps ([`Stage::Resistance`]).
    Resistance(Arc<ResistanceMaps>),
    /// A fully assembled feature stack ([`Stage::Stack`]).
    Stack(Arc<PreparedStack>),
}

impl StageArtifact {
    /// The stage this artifact belongs to.
    #[must_use]
    pub fn stage(&self) -> Stage {
        match self {
            StageArtifact::Parsed(_) => Stage::Parsed,
            StageArtifact::Assembled(_) => Stage::Assembled,
            StageArtifact::Setup(_) => Stage::SolverSetup,
            StageArtifact::Rough(_) => Stage::Rough,
            StageArtifact::Structural(_) => Stage::Structural,
            StageArtifact::Resistance(_) => Stage::Resistance,
            StageArtifact::Stack(_) => Stage::Stack,
        }
    }
}

/// Monotonic per-stage event counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCounters {
    /// Lookups that found the artifact.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Misses served by another caller's in-flight computation.
    pub coalesced: u64,
    /// Artifacts invalidated by LRU pressure (capacity evictions).
    pub evictions: u64,
}

#[derive(Default)]
struct StageStats {
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
}

type Key = (Stage, u64);

struct LruInner {
    /// (stage, fingerprint) -> (last-use tick, artifact).
    map: HashMap<Key, (u64, StageArtifact)>,
    tick: u64,
}

/// One independently locked slice of the store.
struct Shard {
    inner: Mutex<LruInner>,
    /// Per-stage capacity of this shard.
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            inner: Mutex::new(LruInner {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity,
        }
    }

    fn get(&self, key: Key) -> Option<StageArtifact> {
        // A poisoned lock means some leader panicked mid-operation;
        // the map itself is still structurally sound (every mutation
        // is a single HashMap call), so recover the guard rather than
        // cascading the panic into every waiter.
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.get_mut(&key).map(|(last, artifact)| {
            *last = tick;
            artifact.clone()
        })
    }

    /// Inserts an artifact; returns `true` when a same-stage entry
    /// was evicted to make room.
    fn insert(&self, key: Key, artifact: StageArtifact) -> bool {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        let mut evicted = false;
        let stage_len = inner.map.keys().filter(|(s, _)| *s == key.0).count();
        if stage_len >= self.capacity && !inner.map.contains_key(&key) {
            // O(len) scan is fine: shard capacities are small (tens
            // of designs at most), and eviction is off the request
            // fast path. Eviction is per stage, so a burst of stacks
            // never pushes out solver setups.
            if let Some(&victim) = inner
                .map
                .iter()
                .filter(|((s, _), _)| *s == key.0)
                .min_by_key(|(_, (last, _))| *last)
                .map(|(k, _)| k)
            {
                inner.map.remove(&victim);
                evicted = true;
            }
        }
        inner.map.insert(key, (tick, artifact));
        evicted
    }
}

/// Keys currently being computed by [`StageStore::get_or_compute`].
struct InFlight {
    keys: Mutex<HashSet<Key>>,
    done: Condvar,
}

/// Removes `key` from the in-flight set on drop (including panic
/// unwinds of the compute closure) and wakes every waiter.
struct InFlightGuard<'a> {
    inflight: &'a InFlight,
    key: Key,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        let mut keys = self.inflight.keys.lock().unwrap_or_else(|e| e.into_inner());
        keys.remove(&self.key);
        self.inflight.done.notify_all();
    }
}

/// Thread-safe, bounded, content-addressed store of [`StageArtifact`]s
/// keyed by `(stage, fingerprint)`.
///
/// Sharded by fingerprint (`shard = key % n_shards`) so concurrent
/// lookups for different designs do not contend on one mutex;
/// eviction is LRU per stage *per shard*, which approximates global
/// per-stage LRU for the well-mixed FNV fingerprints used as keys.
/// [`StageStore::get_or_compute`] single-flights misses per
/// `(stage, key)` pair: concurrent requests compute the artifact once
/// and share it.
pub struct StageStore {
    shards: Vec<Shard>,
    capacity: usize,
    inflight: InFlight,
    stats: [StageStats; 7],
}

impl fmt::Debug for StageStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StageStore")
            .field("capacity", &self.capacity)
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("coalesced", &self.coalesced())
            .field("evictions", &self.evictions())
            .finish()
    }
}

impl StageStore {
    /// Creates a store holding at most `capacity` artifacts *per
    /// stage* (minimum 1), sharded across up to 8 locks. "Per stage"
    /// keeps the capacity knob meaning "about this many designs",
    /// exactly as it did for the old feature-stack cache.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        StageStore::with_shards(capacity, capacity.clamp(1, 8))
    }

    /// Creates a store with an explicit shard count (minimum 1 each
    /// for capacity and shards). Per-stage capacity is distributed
    /// evenly; a single shard gives exact global LRU order.
    #[must_use]
    pub fn with_shards(capacity: usize, n_shards: usize) -> Self {
        let capacity = capacity.max(1);
        let n_shards = n_shards.clamp(1, capacity);
        let per_shard = capacity.div_ceil(n_shards);
        StageStore {
            shards: (0..n_shards).map(|_| Shard::new(per_shard)).collect(),
            capacity,
            inflight: InFlight {
                keys: Mutex::new(HashSet::new()),
                done: Condvar::new(),
            },
            stats: Default::default(),
        }
    }

    fn shard(&self, key: Key) -> &Shard {
        &self.shards[(key.1 % self.shards.len() as u64) as usize]
    }

    fn stats(&self, stage: Stage) -> &StageStats {
        &self.stats[stage.index()]
    }

    /// Looks up an artifact, refreshing its recency on a hit.
    #[must_use]
    pub fn get(&self, stage: Stage, key: u64) -> Option<StageArtifact> {
        let mut span = irf_trace::span("stage_cache");
        span.attr("stage", stage.label());
        match self.shard((stage, key)).get((stage, key)) {
            Some(artifact) => {
                self.stats(stage).hits.fetch_add(1, Ordering::Relaxed);
                irf_trace::request::note_cache(true);
                span.attr("outcome", "hit");
                Some(artifact)
            }
            None => {
                self.stats(stage).misses.fetch_add(1, Ordering::Relaxed);
                irf_trace::request::note_cache(false);
                span.attr("outcome", "miss");
                None
            }
        }
    }

    /// Inserts an artifact, evicting the least recently used
    /// same-stage entry of its shard when that shard is full.
    /// Re-inserting an existing key refreshes its value and recency.
    pub fn insert(&self, stage: Stage, key: u64, artifact: StageArtifact) {
        debug_assert_eq!(artifact.stage(), stage, "artifact filed under wrong stage");
        if self.shard((stage, key)).insert((stage, key), artifact) {
            self.stats(stage).evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Returns the cached artifact for `(stage, key)`, computing and
    /// inserting it via `compute` on a miss. Concurrent misses on the
    /// *same* pair are single-flighted: one caller runs `compute`,
    /// the rest block until the result lands and share it (counted as
    /// coalesced). Misses on different pairs compute concurrently.
    ///
    /// If `compute` panics, the panic propagates to its caller and
    /// waiting threads fall back to computing for themselves.
    pub fn get_or_compute(
        &self,
        stage: Stage,
        key: u64,
        compute: impl FnOnce() -> StageArtifact,
    ) -> StageArtifact {
        if let Some(artifact) = self.get(stage, key) {
            return artifact;
        }
        let pair = (stage, key);
        // Claim the pair, or wait for whoever holds it.
        loop {
            let mut keys = self.inflight.keys.lock().unwrap_or_else(|e| e.into_inner());
            if keys.insert(pair) {
                break;
            }
            let mut waited = keys;
            loop {
                waited = self
                    .inflight
                    .done
                    .wait(waited)
                    .unwrap_or_else(|e| e.into_inner());
                if !waited.contains(&pair) {
                    break;
                }
            }
            drop(waited);
            // The leader finished (or unwound). On success the
            // artifact is in the store; otherwise loop back and claim
            // the pair ourselves.
            if let Some(artifact) = self.shard(pair).get(pair) {
                self.stats(stage).coalesced.fetch_add(1, Ordering::Relaxed);
                // The request got the artifact without computing it —
                // a hit from its point of view.
                irf_trace::request::note_cache(true);
                return artifact;
            }
        }
        let _guard = InFlightGuard {
            inflight: &self.inflight,
            key: pair,
        };
        let artifact = compute();
        self.insert(stage, key, artifact.clone());
        artifact
    }

    /// Typed [`Stage::Parsed`] lookup without compute (the parse path
    /// is fallible, so callers parse on miss and
    /// [`StageStore::insert_parsed`] on success).
    #[must_use]
    pub fn get_parsed(&self, key: u64) -> Option<Arc<PowerGrid>> {
        match self.get(Stage::Parsed, key) {
            Some(StageArtifact::Parsed(grid)) => Some(grid),
            _ => None,
        }
    }

    /// Typed [`Stage::Parsed`] insert.
    pub fn insert_parsed(&self, key: u64, grid: Arc<PowerGrid>) {
        self.insert(Stage::Parsed, key, StageArtifact::Parsed(grid));
    }

    /// Typed [`Stage::Assembled`] get-or-compute.
    pub fn assembled(
        &self,
        key: u64,
        compute: impl FnOnce() -> Arc<PgStructure>,
    ) -> Arc<PgStructure> {
        match self.get_or_compute(
            Stage::Assembled,
            key,
            || StageArtifact::Assembled(compute()),
        ) {
            StageArtifact::Assembled(v) => v,
            other => unreachable!("stage key tagged Assembled held {:?}", other.stage()),
        }
    }

    /// Typed [`Stage::SolverSetup`] get-or-compute.
    pub fn solver_setup(
        &self,
        key: u64,
        compute: impl FnOnce() -> Arc<SolverSetup>,
    ) -> Arc<SolverSetup> {
        match self.get_or_compute(Stage::SolverSetup, key, || StageArtifact::Setup(compute())) {
            StageArtifact::Setup(v) => v,
            other => unreachable!("stage key tagged SolverSetup held {:?}", other.stage()),
        }
    }

    /// Typed [`Stage::Rough`] get-or-compute.
    pub fn rough(
        &self,
        key: u64,
        compute: impl FnOnce() -> Arc<RoughSolution>,
    ) -> Arc<RoughSolution> {
        match self.get_or_compute(Stage::Rough, key, || StageArtifact::Rough(compute())) {
            StageArtifact::Rough(v) => v,
            other => unreachable!("stage key tagged Rough held {:?}", other.stage()),
        }
    }

    /// Typed [`Stage::Structural`] get-or-compute (geometry maps).
    pub fn structural(
        &self,
        key: u64,
        compute: impl FnOnce() -> Arc<GeometryMaps>,
    ) -> Arc<GeometryMaps> {
        match self.get_or_compute(Stage::Structural, key, || {
            StageArtifact::Structural(compute())
        }) {
            StageArtifact::Structural(v) => v,
            other => unreachable!("stage key tagged Structural held {:?}", other.stage()),
        }
    }

    /// Typed [`Stage::Resistance`] get-or-compute.
    pub fn resistance(
        &self,
        key: u64,
        compute: impl FnOnce() -> Arc<ResistanceMaps>,
    ) -> Arc<ResistanceMaps> {
        match self.get_or_compute(Stage::Resistance, key, || {
            StageArtifact::Resistance(compute())
        }) {
            StageArtifact::Resistance(v) => v,
            other => unreachable!("stage key tagged Resistance held {:?}", other.stage()),
        }
    }

    /// Non-counting probe for a warm [`Stage::Assembled`] artifact —
    /// used by the topology-delta fast path to locate its *base*
    /// system. Refreshes recency on success but records neither a hit
    /// nor a miss: base-artifact probes are opportunistic and must not
    /// distort the per-stage counters the incremental contract is
    /// asserted against.
    #[must_use]
    pub fn peek_assembled(&self, key: u64) -> Option<Arc<PgStructure>> {
        match self
            .shard((Stage::Assembled, key))
            .get((Stage::Assembled, key))
        {
            Some(StageArtifact::Assembled(v)) => Some(v),
            _ => None,
        }
    }

    /// Non-counting probe for a warm [`Stage::SolverSetup`] artifact;
    /// see [`StageStore::peek_assembled`].
    #[must_use]
    pub fn peek_solver_setup(&self, key: u64) -> Option<Arc<SolverSetup>> {
        match self
            .shard((Stage::SolverSetup, key))
            .get((Stage::SolverSetup, key))
        {
            Some(StageArtifact::Setup(v)) => Some(v),
            _ => None,
        }
    }

    /// Typed [`Stage::Stack`] get-or-compute.
    pub fn stack(
        &self,
        key: u64,
        compute: impl FnOnce() -> Arc<PreparedStack>,
    ) -> Arc<PreparedStack> {
        match self.get_or_compute(Stage::Stack, key, || StageArtifact::Stack(compute())) {
            StageArtifact::Stack(v) => v,
            other => unreachable!("stage key tagged Stack held {:?}", other.stage()),
        }
    }

    /// Number of cached artifacts across all stages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.inner.lock().unwrap_or_else(|e| e.into_inner()).map.len())
            .sum()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of cached artifacts of one stage.
    #[must_use]
    pub fn stage_len(&self, stage: Stage) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.inner
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .map
                    .keys()
                    .filter(|(st, _)| *st == stage)
                    .count()
            })
            .sum()
    }

    /// Maximum number of cached artifacts per stage.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Event counts for one stage.
    #[must_use]
    pub fn stage_counters(&self, stage: Stage) -> StageCounters {
        let s = self.stats(stage);
        StageCounters {
            hits: s.hits.load(Ordering::Relaxed),
            misses: s.misses.load(Ordering::Relaxed),
            coalesced: s.coalesced.load(Ordering::Relaxed),
            evictions: s.evictions.load(Ordering::Relaxed),
        }
    }

    /// Total lookups that found an artifact, across all stages.
    #[must_use]
    pub fn hits(&self) -> u64 {
        Stage::ALL
            .iter()
            .map(|s| self.stage_counters(*s).hits)
            .sum()
    }

    /// Total lookups that missed, across all stages.
    #[must_use]
    pub fn misses(&self) -> u64 {
        Stage::ALL
            .iter()
            .map(|s| self.stage_counters(*s).misses)
            .sum()
    }

    /// Total computations saved by single-flighting, across stages.
    #[must_use]
    pub fn coalesced(&self) -> u64 {
        Stage::ALL
            .iter()
            .map(|s| self.stage_counters(*s).coalesced)
            .sum()
    }

    /// Total artifacts invalidated by LRU pressure, across stages.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        Stage::ALL
            .iter()
            .map(|s| self.stage_counters(*s).evictions)
            .sum()
    }

    /// Hit fraction in `[0, 1]` (`0.0` before any lookup).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let total = h + self.misses() as f64;
        if total > 0.0 {
            h / total
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack() -> StageArtifact {
        StageArtifact::Stack(Arc::new(PreparedStack {
            fingerprint: 0,
            features: irf_features::FeatureStack::default(),
            rough: irf_pg::GridMap::new(1, 1),
            solve_report: irf_sparse::SolveReport {
                x: Vec::new(),
                converged: false,
                iterations: 0,
                residual: 0.0,
                setup_seconds: 0.0,
                solve_seconds: 0.0,
                trace: irf_sparse::cg::ConvergenceTrace::default(),
            },
            solve_seconds: 0.0,
            feature_seconds: 0.0,
        }))
    }

    fn rough(fp: u64) -> StageArtifact {
        StageArtifact::Rough(Arc::new(RoughSolution {
            fingerprint: fp,
            drops: Vec::new(),
            report: irf_sparse::SolveReport {
                x: Vec::new(),
                converged: false,
                iterations: 0,
                residual: 0.0,
                setup_seconds: 0.0,
                solve_seconds: 0.0,
                trace: irf_sparse::cg::ConvergenceTrace::default(),
            },
            solve_seconds: 0.0,
        }))
    }

    #[test]
    fn lru_evicts_least_recently_used_within_a_stage() {
        // One shard pins exact global LRU order.
        let store = StageStore::with_shards(2, 1);
        store.insert(Stage::Stack, 1, stack());
        store.insert(Stage::Stack, 2, stack());
        assert!(store.get(Stage::Stack, 1).is_some()); // refresh 1; 2 is now LRU
        store.insert(Stage::Stack, 3, stack()); // evicts 2
        assert!(store.get(Stage::Stack, 1).is_some());
        assert!(store.get(Stage::Stack, 2).is_none());
        assert!(store.get(Stage::Stack, 3).is_some());
        assert_eq!(store.stage_len(Stage::Stack), 2);
        assert_eq!(store.stage_counters(Stage::Stack).evictions, 1);
    }

    #[test]
    fn stages_do_not_evict_each_other() {
        let store = StageStore::with_shards(1, 1);
        store.insert(Stage::Stack, 1, stack());
        store.insert(Stage::Rough, 1, rough(1));
        // Both live: capacity is per stage, and identical fingerprints
        // in different stages are distinct keys.
        assert!(store.get(Stage::Stack, 1).is_some());
        assert!(store.get(Stage::Rough, 1).is_some());
        assert_eq!(store.len(), 2);
        assert_eq!(store.evictions(), 0);
    }

    #[test]
    fn sharded_store_retrieves_across_shards() {
        let store = StageStore::with_shards(16, 4);
        for key in 0..12u64 {
            store.insert(Stage::Stack, key, stack());
        }
        assert_eq!(store.len(), 12);
        for key in 0..12u64 {
            assert!(store.get(Stage::Stack, key).is_some(), "key {key}");
        }
    }

    #[test]
    fn get_or_compute_single_flights_concurrent_misses() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Barrier;

        let store = Arc::new(StageStore::new(4));
        let computes = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let store = Arc::clone(&store);
                let computes = Arc::clone(&computes);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    store.get_or_compute(Stage::Stack, 42, || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open long enough that the
                        // other threads pile up behind it.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        stack()
                    })
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(
            computes.load(Ordering::SeqCst),
            1,
            "exactly one thread computes"
        );
        // Every other thread is served by the leader's work: normally
        // all 7 coalesce onto the in-flight computation; a thread
        // scheduled late enough can land an ordinary hit instead.
        assert_eq!(
            store.coalesced() + store.hits(),
            7,
            "everyone else shares the leader's result"
        );
        let first = match &results[0] {
            StageArtifact::Stack(s) => Arc::clone(s),
            _ => unreachable!(),
        };
        for r in &results[1..] {
            match r {
                StageArtifact::Stack(s) => {
                    assert!(Arc::ptr_eq(&first, s), "all callers share one artifact");
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn get_or_compute_recovers_from_a_panicking_leader() {
        let store = Arc::new(StageStore::new(4));
        let c2 = Arc::clone(&store);
        let leader = std::thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                c2.get_or_compute(Stage::Stack, 7, || panic!("compute failed"))
            }));
            assert!(result.is_err());
        });
        leader.join().unwrap();
        // The key must not be stuck in-flight: a later caller computes.
        let got = store.get_or_compute(Stage::Stack, 7, stack);
        assert!(store.get(Stage::Stack, 7).is_some());
        drop(got);
    }

    #[test]
    fn peeks_find_artifacts_without_touching_the_counters() {
        let store = StageStore::new(4);
        assert!(store.peek_assembled(5).is_none());
        assert!(store.peek_solver_setup(5).is_none());
        let structure = Arc::new(irf_pg::PgStructure {
            matrix: irf_sparse::CsrMatrix::from_triplets(1, 1, &[(0, 0, 1.0)]),
            index_of: vec![Some(0)],
            node_of: vec![0],
        });
        store.insert(Stage::Assembled, 5, StageArtifact::Assembled(structure));
        assert!(store.peek_assembled(5).is_some());
        // Wrong-stage key: a peek never cross-reads another stage.
        assert!(store.peek_solver_setup(5).is_none());
        assert_eq!(store.hits(), 0, "peeks must not count as hits");
        assert_eq!(store.misses(), 0, "peeks must not count as misses");
    }

    #[test]
    fn counters_track_hits_and_misses_per_stage() {
        let store = StageStore::new(4);
        assert!(store.get(Stage::Stack, 9).is_none());
        store.insert(Stage::Stack, 9, stack());
        assert!(store.get(Stage::Stack, 9).is_some());
        assert!(store.get(Stage::Stack, 9).is_some());
        let c = store.stage_counters(Stage::Stack);
        assert_eq!((c.hits, c.misses), (2, 1));
        assert_eq!(store.stage_counters(Stage::Rough), StageCounters::default());
        assert!((store.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
