//! Training with augmented curriculum learning (paper Section III-E).

use crate::config::FusionConfig;
use crate::pipeline::{IrFusionPipeline, PreparedSample};
use irf_data::augment::{augmentation_plan, no_rotation_plan, AugmentedSample};
use irf_data::{Dataset, DesignClass};
use irf_models::{build_model, Model, ModelKind};
use irf_nn::optim::Adam;
use irf_nn::{loss, ParamStore, PrecisionMode, Tape};

/// A trained model bundle: the network, its parameters, and the label
/// scale used during training (labels are volts scaled into a range
/// the f32 losses handle well; predictions divide it back out).
pub struct TrainedModel {
    /// The network.
    pub model: Box<dyn Model>,
    /// Trained parameters.
    pub store: ParamStore,
    /// Label scale factor.
    pub label_scale: f32,
    /// `true` when the model was trained to predict the signed
    /// *residual* on top of the rough numerical map (the fusion
    /// default); `false` for absolute drop prediction (baselines and
    /// the "w/o Num. Solu." ablation).
    pub residual: bool,
    /// Mean training loss per epoch.
    pub loss_history: Vec<f32>,
    /// Inference precision. Training always produces `F32`; use
    /// [`TrainedModel::with_precision`] to derive a quantized variant.
    pub precision: PrecisionMode,
}

impl TrainedModel {
    /// Derives a variant of this bundle that runs its forward pass at
    /// `mode`: builds (or clears, for `F32`) the parameter store's
    /// quantization sidecars and records the mode so the pipeline's
    /// inference tape picks it up.
    #[must_use]
    pub fn with_precision(mut self, mode: PrecisionMode) -> Self {
        self.store.quantize(mode);
        self.precision = mode;
        self
    }

    /// Clones this bundle at `mode`: the architecture handles and f32
    /// weights are copied, then the copy's quantization sidecars are
    /// (re)built for `mode`. The original is untouched, so one trained
    /// model can serve several precision variants side by side.
    #[must_use]
    pub fn precision_variant(&self, mode: PrecisionMode) -> TrainedModel {
        let mut store = self.store.clone();
        store.quantize(mode);
        TrainedModel {
            model: self.model.boxed_clone(),
            store,
            label_scale: self.label_scale,
            residual: self.residual,
            loss_history: self.loss_history.clone(),
            precision: mode,
        }
    }
}

impl std::fmt::Debug for TrainedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TrainedModel({}, {} params, scale {}, {})",
            self.model.name(),
            self.store.num_scalars(),
            self.label_scale,
            self.precision
        )
    }
}

/// Trains `kind` on the dataset's training split with the configured
/// augmentation + curriculum, returning the trained bundle.
///
/// # Panics
///
/// Panics if the dataset has no training designs.
#[must_use]
pub fn train(kind: ModelKind, dataset: &Dataset, config: &FusionConfig) -> TrainedModel {
    let pipeline = IrFusionPipeline::new(*config);
    let train_indices = dataset.train_indices();
    assert!(!train_indices.is_empty(), "dataset has no training designs");

    // Prepare every training design once (features + label), one
    // parallel task per design; order follows `train_indices`.
    let samples: Vec<(PreparedSample, DesignClass)> = irf_runtime::par_map(
        train_indices
            .iter()
            .map(|&i| {
                let d = &dataset.designs[i];
                let pipeline = &pipeline;
                move || (pipeline.prepare(d), d.class)
            })
            .collect(),
    );

    // Labels use the same fixed volt scale as the numerical-solution
    // feature channels, so the model's task is a near-identity
    // correction of the rough solve (the fusion premise).
    let label_scale = irf_features::stack::VOLT_SCALE;

    // Channel count must match the first sample.
    let n_channels = samples
        .first()
        .map(|(s, _)| s.features.maps().len())
        .expect("non-empty training set");
    // Residual fusion: when the numerical solution is part of the
    // inputs, the model predicts a signed correction on top of the
    // rough map (linear head); otherwise it predicts the absolute
    // drop map (ReLU head) like the original baselines.
    let residual = config.feature.numerical;
    let mut model_config = config.model;
    model_config.in_channels = n_channels;
    model_config.linear_head = residual;
    let (model, mut store) = build_model(kind, model_config);

    // Augmentation plan over local sample indices.
    let local: Vec<(usize, DesignClass)> = samples
        .iter()
        .enumerate()
        .map(|(i, (_, c))| (i, *c))
        .collect();
    let plan: Vec<AugmentedSample> = if config.train.rotations {
        augmentation_plan(&local, config.train.oversample)
    } else {
        no_rotation_plan(&local, config.train.oversample)
    };
    let plan_classes: Vec<DesignClass> = plan.iter().map(|s| samples[s.design].1).collect();

    let mut optimizer = Adam::new(config.train.learning_rate);
    let mut loss_history = Vec::with_capacity(config.train.epochs);
    // Index of the total current map inside the stack (channel 0 by
    // construction) for the Kirchhoff loss.
    let use_kirchhoff = model.wants_kirchhoff_loss() && config.train.kirchhoff_alpha > 0.0;

    for epoch in 0..config.train.epochs {
        if let Some(schedule) = &config.train.lr_schedule {
            optimizer.lr = schedule.at(epoch);
        }
        let subset: Vec<AugmentedSample> = match &config.train.curriculum {
            Some(sched) => sched.subset(&plan, &plan_classes, epoch),
            None => plan.clone(),
        };
        let mut epoch_loss = 0.0f32;
        let mut count = 0usize;
        for item in &subset {
            let (base, _) = &samples[item.design];
            let sample = if item.quarters == 0 {
                base.clone()
            } else {
                base.rotated(item.quarters)
            };
            let x_t = sample.feature_tensor();
            let y_t = if residual {
                sample.residual_tensor(label_scale)
            } else {
                sample.label_tensor(label_scale)
            };
            let mut tape = Tape::new();
            let x = tape.input(x_t.clone());
            let y = model.forward(&mut tape, &store, x);
            let data_term = loss::mae(tape.value(y), &y_t);
            let (loss_value, grad) = if use_kirchhoff {
                // Channel 0 of the stack is the total current map.
                let [_, _, h, w] = x_t.shape();
                let current = irf_nn::Tensor::from_vec([1, 1, h, w], x_t.data()[..h * w].to_vec());
                let k = loss::kirchhoff(tape.value(y), &current, 1.0, config.train.kirchhoff_alpha);
                loss::combine(data_term, k)
            } else {
                data_term
            };
            tape.backward(y, grad, &mut store);
            store.clip_grad_norm(config.train.grad_clip);
            optimizer.step(&mut store);
            epoch_loss += loss_value;
            count += 1;
        }
        loss_history.push(if count > 0 {
            epoch_loss / count as f32
        } else {
            0.0
        });
    }

    TrainedModel {
        model,
        store,
        label_scale,
        residual,
        loss_history,
        precision: PrecisionMode::F32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> Dataset {
        Dataset::generate(2, 2, 1, 7)
    }

    #[test]
    fn training_runs_and_tracks_loss() {
        let ds = tiny_dataset();
        let mut cfg = FusionConfig::tiny();
        cfg.train.epochs = 2;
        let trained = train(ModelKind::IrEdge, &ds, &cfg);
        assert_eq!(trained.loss_history.len(), 2);
        assert!(trained.label_scale > 0.0);
        assert!(trained.loss_history.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let ds = tiny_dataset();
        let mut cfg = FusionConfig::tiny();
        cfg.train.epochs = 6;
        cfg.train.curriculum = None; // fixed set so the loss is comparable
        let trained = train(ModelKind::IrEdge, &ds, &cfg);
        let first = trained.loss_history[0];
        let last = *trained.loss_history.last().unwrap();
        assert!(
            last < first,
            "loss should decrease: {first} -> {last} ({:?})",
            trained.loss_history
        );
    }

    #[test]
    fn irpnet_trains_with_kirchhoff_term() {
        let ds = tiny_dataset();
        let mut cfg = FusionConfig::tiny();
        cfg.train.epochs = 1;
        let trained = train(ModelKind::IrpNet, &ds, &cfg);
        assert!(trained.loss_history[0].is_finite());
    }

    #[test]
    fn lr_schedule_is_honoured() {
        let ds = tiny_dataset();
        let mut cfg = FusionConfig::tiny();
        cfg.train.epochs = 2;
        cfg.train.lr_schedule = Some(irf_nn::optim::LrSchedule {
            base: 1e-3,
            warmup: 0,
            decay: 0.1,
            step: 1,
        });
        // Training just has to complete with finite losses.
        let trained = train(ModelKind::IrEdge, &ds, &cfg);
        assert!(trained.loss_history.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn residual_mode_follows_numerical_toggle() {
        let ds = tiny_dataset();
        let mut cfg = FusionConfig::tiny();
        cfg.train.epochs = 0;
        let fused = train(ModelKind::IrFusion, &ds, &cfg);
        assert!(fused.residual, "numerical features imply residual fusion");
        cfg.feature.numerical = false;
        let ablated = train(ModelKind::IrFusion, &ds, &cfg);
        assert!(!ablated.residual, "w/o Num. Solu. predicts absolute drops");
    }

    #[test]
    fn residual_predictions_are_clamped_nonnegative() {
        let ds = tiny_dataset();
        let mut cfg = FusionConfig::tiny();
        cfg.train.epochs = 1;
        let trained = train(ModelKind::IrFusion, &ds, &cfg);
        let pipeline = IrFusionPipeline::new(cfg);
        let design = &ds.designs[0];
        let analysis = pipeline
            .stack_builder()
            .analyze(&design.grid, Some(&trained))
            .expect("grid has pads");
        let fused = analysis.fused_map.expect("model supplied");
        assert!(fused.min() >= 0.0, "clamp must hold");
        // The correction actually changes the rough map somewhere.
        assert_ne!(fused, analysis.rough_map);
    }

    #[test]
    fn curriculum_starts_with_fewer_samples() {
        // With the default scheduler, epoch 0 excludes hard samples;
        // this is observable through the plan subset logic already
        // unit-tested in irf-data, so here we just confirm training
        // with a curriculum completes.
        let ds = tiny_dataset();
        let mut cfg = FusionConfig::tiny();
        cfg.train.epochs = 2;
        let trained = train(ModelKind::IrEdge, &ds, &cfg);
        assert_eq!(trained.loss_history.len(), 2);
    }
}
