//! `irf-trace`: the observability substrate of the IR-Fusion stack —
//! structured tracing, solver telemetry, and a unified metrics
//! registry, all on `std` alone.
//!
//! Three pieces live here:
//!
//! * [`span`] — scoped spans recorded into a per-thread buffer. Spans
//!   compile to a single relaxed atomic load when no [`Collector`] is
//!   installed, so leaving the instrumentation in hot paths is free.
//!   Buffers flush into a process-wide sink whenever a thread's span
//!   stack unwinds to depth zero; pool worker threads (which never
//!   exit) therefore deliver their events without any registration
//!   protocol. A finished [`Trace`] exports Chrome trace-event JSON
//!   (loadable in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev))
//!   and a human-readable self-profile tree ([`profile`]).
//! * [`registry`] — a [`MetricsRegistry`] of counters, gauges, and
//!   histograms with Prometheus text rendering. One process-global
//!   instance ([`registry()`]) is shared by the solver, the pipeline,
//!   the inference server, and the bench binaries, so `GET /metrics`
//!   sees pipeline internals (`irf_pcg_iterations`,
//!   `irf_stage_seconds_total{stage=...}`) next to server counters.
//! * [`request`] — thread-local request attribution: a scope guard
//!   installs a request id that every span opened under it carries
//!   ([`Event::request`]), and the stage store / PCG solver fold
//!   per-request cache and convergence counts into it. `irf-obs`
//!   builds the server-side observability layer (request ids, access
//!   logs, flight recorder) on top of this.
//! * [`timer`] — the accumulating [`Timer`] behind the paper's
//!   Table I / Fig. 7 runtime columns, re-exported by `irf-metrics`
//!   for compatibility and backed by the same clock as the spans.
//!
//! # Tracing a region
//!
//! ```
//! use irf_trace::{span, Collector};
//!
//! let collector = Collector::install().expect("no collector active");
//! {
//!     let mut s = span("solve");
//!     s.attr("iterations", 2u64);
//!     // ... work ...
//! }
//! let trace = collector.finish();
//! assert_eq!(trace.events.len(), 1);
//! assert!(trace.to_chrome_json().contains("\"name\":\"solve\""));
//! ```
//!
//! # Determinism contract
//!
//! Tracing only *observes*: installing a collector never changes what
//! the instrumented code computes. Pipeline outputs are bitwise
//! identical with tracing enabled or disabled, at any thread count
//! (asserted by `tests/integration_trace.rs` in the `ir-fusion`
//! crate).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod profile;
pub mod registry;
pub mod request;
pub mod span;
pub mod timer;

pub use registry::{registry, MetricKind, MetricsRegistry};
pub use request::{RequestScope, RequestStats};
pub use span::{set_thread_label, span, AttrValue, Collector, Event, Span, Trace};
pub use timer::Timer;
