//! Chrome trace-event JSON export.
//!
//! The emitted file is the "JSON array format" understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): one
//! complete (`"ph":"X"`) event per span with microsecond timestamps,
//! plus metadata events naming the process and any labelled threads.
//! Span attributes land in the event's `args` object, so e.g. the PCG
//! residual history is inspectable by clicking the solve slice.

use crate::span::{AttrValue, Trace};
use std::fmt::Write as _;

/// Escapes a string for inclusion in a JSON string literal.
fn escape_json(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders a finite `f64` as JSON (NaN/inf become `null`, which JSON
/// has no literal for).
fn json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn render_attr(out: &mut String, value: &AttrValue) {
    match value {
        AttrValue::U64(v) => {
            let _ = write!(out, "{v}");
        }
        AttrValue::F64(v) => json_f64(out, *v),
        AttrValue::Bool(v) => {
            let _ = write!(out, "{v}");
        }
        AttrValue::Str(s) => {
            out.push('"');
            escape_json(out, s);
            out.push('"');
        }
        AttrValue::F64List(values) => {
            out.push('[');
            for (i, v) in values.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json_f64(out, *v);
            }
            out.push(']');
        }
    }
}

/// Serializes `trace` into Chrome trace-event JSON.
#[must_use]
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(128 + trace.events.len() * 96);
    out.push_str("[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"ir-fusion\"}}",
    );
    for (tid, label) in &trace.thread_labels {
        out.push_str(",\n");
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\""
        );
        escape_json(&mut out, label);
        out.push_str("\"}}");
    }
    for event in &trace.events {
        out.push_str(",\n");
        let ts_us = event.start_ns as f64 / 1e3;
        let dur_us = event.dur_ns as f64 / 1e3;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"irf\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{ts_us:.3},\"dur\":{dur_us:.3}",
            event.name, event.tid
        );
        if !event.args.is_empty() || event.request != 0 {
            out.push_str(",\"args\":{");
            let mut first = true;
            if event.request != 0 {
                let _ = write!(out, "\"request\":\"{:016x}\"", event.request);
                first = false;
            }
            for (key, value) in &event.args {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push('"');
                escape_json(&mut out, key);
                out.push_str("\":");
                render_attr(&mut out, value);
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Event;

    fn sample_trace() -> Trace {
        Trace {
            events: vec![
                Event {
                    name: "pcg_solve",
                    tid: 0,
                    depth: 0,
                    start_ns: 1_500,
                    dur_ns: 2_000_000,
                    request: 0xabcd,
                    args: vec![
                        ("iterations", AttrValue::U64(2)),
                        ("converged", AttrValue::Bool(false)),
                        ("history", AttrValue::F64List(vec![1.0, 0.25])),
                        ("kind", AttrValue::Str("AMG-PCG \"K\"".to_string())),
                    ],
                },
                Event {
                    name: "spmv",
                    tid: 3,
                    depth: 1,
                    start_ns: 2_000,
                    dur_ns: 500,
                    request: 0,
                    args: Vec::new(),
                },
            ],
            thread_labels: vec![(3, "irf-runtime-2".to_string())],
        }
    }

    #[test]
    fn export_contains_events_and_metadata() {
        let json = to_chrome_json(&sample_trace());
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("\n]\n"));
        assert!(json.contains("\"name\":\"process_name\""));
        assert!(json.contains("\"name\":\"irf-runtime-2\""));
        assert!(json.contains("\"name\":\"pcg_solve\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2000.000"));
        assert!(json.contains("\"iterations\":2"));
        assert!(json.contains("\"converged\":false"));
        assert!(json.contains("\"history\":[1,0.25]"));
        assert!(json.contains("\"request\":\"000000000000abcd\""));
        assert!(json.contains("AMG-PCG \\\"K\\\""), "{json}");
    }

    #[test]
    fn export_brackets_and_braces_balance() {
        let json = to_chrome_json(&sample_trace());
        // Crude structural check: every brace/bracket outside string
        // literals balances. Our names/keys contain none, and escaped
        // quotes inside strings are handled below.
        let mut depth = 0i64;
        let mut in_str = false;
        let mut escaped = false;
        for c in json.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn empty_trace_is_valid_json() {
        let json = to_chrome_json(&Trace::default());
        assert!(json.contains("process_name"));
        assert!(json.trim_end().ends_with(']'));
    }
}
