//! The unified metrics registry: counters, gauges, and histograms with
//! Prometheus text rendering.
//!
//! One process-global instance ([`registry()`]) is shared by every
//! layer of the stack — the sparse solver publishes
//! `irf_pcg_iterations` and `irf_amg_levels`, the pipeline publishes
//! `irf_stage_seconds_total{stage=...}`, and the inference server adds
//! its request/batch/cache series — so a single `GET /metrics` (or a
//! bench binary's `--metrics` dump) shows the whole pipeline.
//!
//! Metrics are identified by name plus an ordered label list. All
//! methods are thread-safe behind one mutex; observation rates in this
//! stack (per solve / per request, never per iteration of an inner
//! loop) are far below the contention regime where that would matter.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};

/// What a metric family is, for the `# TYPE` exposition line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing value.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Cumulative bucket histogram.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
struct Family {
    kind: MetricKind,
    help: String,
    /// Upper bucket bounds for histograms (exclusive of `+Inf`).
    buckets: Vec<f64>,
}

#[derive(Debug, Clone)]
enum Value {
    Scalar(f64),
    Histogram {
        /// One count per configured bucket bound.
        counts: Vec<u64>,
        sum: f64,
        count: u64,
    },
}

type LabelSet = Vec<(String, String)>;

#[derive(Debug, Default)]
struct Inner {
    families: BTreeMap<String, Family>,
    values: BTreeMap<(String, LabelSet), Value>,
}

/// A registry of named metrics. Most code uses the process-global
/// [`registry()`]; tests that need isolation can construct their own.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

fn own_labels(labels: &[(&str, &str)]) -> LabelSet {
    labels
        .iter()
        .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
        .collect()
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers help text and a type for a family. Optional — unseen
    /// families default to an empty help string and the kind implied
    /// by the first mutation — but described families render stable
    /// `# HELP` / `# TYPE` headers.
    pub fn describe(&self, name: &str, kind: MetricKind, help: &str) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.families.insert(
            name.to_string(),
            Family {
                kind,
                help: help.to_string(),
                buckets: Vec::new(),
            },
        );
    }

    /// Registers a histogram family with its upper bucket bounds
    /// (ascending; `+Inf` is implicit).
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is empty or not strictly ascending.
    pub fn describe_histogram(&self, name: &str, help: &str, buckets: &[f64]) {
        assert!(!buckets.is_empty(), "histogram needs at least one bucket");
        assert!(
            buckets.windows(2).all(|w| w[0] < w[1]),
            "histogram buckets must be strictly ascending"
        );
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.families.insert(
            name.to_string(),
            Family {
                kind: MetricKind::Histogram,
                help: help.to_string(),
                buckets: buckets.to_vec(),
            },
        );
    }

    fn scalar_op(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        default_kind: MetricKind,
        f: impl FnOnce(&mut f64),
    ) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if !inner.families.contains_key(name) {
            inner.families.insert(
                name.to_string(),
                Family {
                    kind: default_kind,
                    help: String::new(),
                    buckets: Vec::new(),
                },
            );
        }
        let key = (name.to_string(), own_labels(labels));
        let value = inner.values.entry(key).or_insert(Value::Scalar(0.0));
        if let Value::Scalar(v) = value {
            f(v);
        }
    }

    /// Adds `delta` to a counter (created at zero on first use).
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], delta: f64) {
        self.scalar_op(name, labels, MetricKind::Counter, |v| *v += delta);
    }

    /// Increments a counter by one — sugar for the common
    /// event-counting case (`irf_model_reloads_total`, ...).
    pub fn counter_inc(&self, name: &str, labels: &[(&str, &str)]) {
        self.counter_add(name, labels, 1.0);
    }

    /// Sets a counter to an externally accumulated monotonic value
    /// (e.g. re-exporting an `AtomicU64` another subsystem owns).
    pub fn counter_set(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.scalar_op(name, labels, MetricKind::Counter, |v| *v = value);
    }

    /// Sets a gauge.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.scalar_op(name, labels, MetricKind::Gauge, |v| *v = value);
    }

    /// Records one observation into a histogram. The family should be
    /// registered with [`MetricsRegistry::describe_histogram`] first;
    /// otherwise a single-bucket histogram with bound `1.0` is
    /// created.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if !inner.families.contains_key(name) {
            inner.families.insert(
                name.to_string(),
                Family {
                    kind: MetricKind::Histogram,
                    help: String::new(),
                    buckets: vec![1.0],
                },
            );
        }
        let n_buckets = inner.families[name].buckets.len();
        let bucket = inner.families[name]
            .buckets
            .iter()
            .position(|&bound| value <= bound);
        let key = (name.to_string(), own_labels(labels));
        let entry = inner.values.entry(key).or_insert(Value::Histogram {
            counts: vec![0; n_buckets],
            sum: 0.0,
            count: 0,
        });
        if let Value::Histogram { counts, sum, count } = entry {
            if let Some(i) = bucket {
                counts[i] += 1;
            }
            *sum += value;
            *count += 1;
        }
    }

    /// Creates an empty series for a described histogram family so the
    /// exposition shows its zeroed buckets before the first
    /// observation (the histogram counterpart of
    /// `counter_add(..., 0.0)` zero-initialization). No-op if the
    /// series already exists or the family was never described.
    pub fn touch_histogram(&self, name: &str, labels: &[(&str, &str)]) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        let Some(family) = inner.families.get(name) else {
            return;
        };
        if family.kind != MetricKind::Histogram {
            return;
        }
        let n_buckets = family.buckets.len();
        let key = (name.to_string(), own_labels(labels));
        inner.values.entry(key).or_insert(Value::Histogram {
            counts: vec![0; n_buckets],
            sum: 0.0,
            count: 0,
        });
    }

    /// Reads back a scalar (counter or gauge) value, or a histogram's
    /// total count. `None` when the series does not exist.
    #[must_use]
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let key = (name.to_string(), own_labels(labels));
        inner.values.get(&key).map(|v| match v {
            Value::Scalar(v) => *v,
            Value::Histogram { count, .. } => *count as f64,
        })
    }

    /// Drops every value and family. Intended for tests.
    pub fn reset(&self) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.families.clear();
        inner.values.clear();
    }

    /// Renders the Prometheus text exposition format (version 0.0.4).
    /// Families and series render in lexicographic order, so output is
    /// deterministic for a given state.
    #[must_use]
    pub fn render(&self) -> String {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        let mut last_family = "";
        for ((name, labels), value) in &inner.values {
            let family = inner.families.get(name);
            if name != last_family {
                if let Some(f) = family {
                    if !f.help.is_empty() {
                        let _ = writeln!(out, "# HELP {name} {}", f.help);
                    }
                    let _ = writeln!(out, "# TYPE {name} {}", f.kind.as_str());
                }
                last_family = name;
            }
            match value {
                Value::Scalar(v) => {
                    let _ = writeln!(out, "{name}{} {v}", render_labels(labels, None));
                }
                Value::Histogram { counts, sum, count } => {
                    let bounds = family.map(|f| f.buckets.as_slice()).unwrap_or_default();
                    let mut cumulative = 0u64;
                    for (bound, n) in bounds.iter().zip(counts) {
                        cumulative += n;
                        let le = format!("{bound}");
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cumulative}",
                            render_labels(labels, Some(&le))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{name}_bucket{} {count}",
                        render_labels(labels, Some("+Inf"))
                    );
                    let _ = writeln!(out, "{name}_sum{} {sum}", render_labels(labels, None));
                    let _ = writeln!(out, "{name}_count{} {count}", render_labels(labels, None));
                }
            }
        }
        out
    }
}

fn render_labels(labels: &LabelSet, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{k}=\"{}\"",
            v.replace('\\', "\\\\").replace('"', "\\\"")
        );
    }
    if let Some(le) = le {
        if !labels.is_empty() {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// The process-global registry every subsystem publishes into.
#[must_use]
pub fn registry() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render() {
        let r = MetricsRegistry::new();
        r.describe(
            "irf_pcg_iterations_total",
            MetricKind::Counter,
            "Total PCG iterations.",
        );
        r.counter_add("irf_pcg_iterations_total", &[], 2.0);
        r.counter_add("irf_pcg_iterations_total", &[], 3.0);
        assert_eq!(r.get("irf_pcg_iterations_total", &[]), Some(5.0));
        let text = r.render();
        assert!(text.contains("# HELP irf_pcg_iterations_total Total PCG iterations."));
        assert!(text.contains("# TYPE irf_pcg_iterations_total counter"));
        assert!(text.contains("irf_pcg_iterations_total 5"));
    }

    #[test]
    fn labelled_series_are_independent_and_sorted() {
        let r = MetricsRegistry::new();
        r.counter_add("irf_stage_seconds_total", &[("stage", "solve")], 0.5);
        r.counter_add("irf_stage_seconds_total", &[("stage", "features")], 0.25);
        r.counter_add("irf_stage_seconds_total", &[("stage", "solve")], 0.25);
        let text = r.render();
        let features_at = text
            .find("irf_stage_seconds_total{stage=\"features\"} 0.25")
            .expect("features series");
        let solve_at = text
            .find("irf_stage_seconds_total{stage=\"solve\"} 0.75")
            .expect("solve series");
        assert!(features_at < solve_at, "series must render sorted");
    }

    #[test]
    fn gauges_overwrite() {
        let r = MetricsRegistry::new();
        r.gauge_set("irf_amg_levels", &[], 4.0);
        r.gauge_set("irf_amg_levels", &[], 3.0);
        assert_eq!(r.get("irf_amg_levels", &[]), Some(3.0));
        assert!(r.render().contains("irf_amg_levels 3"));
    }

    #[test]
    fn histograms_render_cumulative_buckets() {
        let r = MetricsRegistry::new();
        r.describe_histogram("irf_batch_size", "Batch sizes.", &[1.0, 2.0, 4.0]);
        r.observe("irf_batch_size", &[], 1.0);
        r.observe("irf_batch_size", &[], 2.0);
        r.observe("irf_batch_size", &[], 9.0); // beyond last bound -> +Inf only
        let text = r.render();
        assert!(text.contains("irf_batch_size_bucket{le=\"1\"} 1"));
        assert!(text.contains("irf_batch_size_bucket{le=\"2\"} 2"));
        assert!(text.contains("irf_batch_size_bucket{le=\"4\"} 2"));
        assert!(text.contains("irf_batch_size_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("irf_batch_size_sum 12"));
        assert!(text.contains("irf_batch_size_count 3"));
        assert_eq!(r.get("irf_batch_size", &[]), Some(3.0));
    }

    #[test]
    fn touch_histogram_exposes_zeroed_series() {
        let r = MetricsRegistry::new();
        r.describe_histogram("irf_http_request_seconds", "Latency.", &[0.1, 1.0]);
        r.touch_histogram("irf_http_request_seconds", &[("endpoint", "predict")]);
        // Undeclared family: silently ignored rather than inventing
        // bucketless garbage.
        r.touch_histogram("irf_undeclared_seconds", &[]);
        let text = r.render();
        assert!(text.contains("irf_http_request_seconds_bucket{endpoint=\"predict\",le=\"0.1\"} 0"));
        assert!(
            text.contains("irf_http_request_seconds_bucket{endpoint=\"predict\",le=\"+Inf\"} 0")
        );
        assert!(text.contains("irf_http_request_seconds_count{endpoint=\"predict\"} 0"));
        assert!(!text.contains("irf_undeclared_seconds"));
        // Observations after the touch land in the same series.
        r.observe("irf_http_request_seconds", &[("endpoint", "predict")], 0.05);
        assert!(r
            .render()
            .contains("irf_http_request_seconds_count{endpoint=\"predict\"} 1"));
    }

    #[test]
    fn counter_set_reexports_external_values() {
        let r = MetricsRegistry::new();
        r.counter_set("irf_cache_hits_total", &[], 7.0);
        r.counter_set("irf_cache_hits_total", &[], 9.0);
        assert_eq!(r.get("irf_cache_hits_total", &[]), Some(9.0));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = MetricsRegistry::new();
        r.counter_add("irf_requests_total", &[("route", "a\"b\\c")], 1.0);
        assert!(r.render().contains("route=\"a\\\"b\\\\c\""));
    }

    #[test]
    fn reset_clears_everything() {
        let r = MetricsRegistry::new();
        r.counter_add("x", &[], 1.0);
        r.reset();
        assert_eq!(r.get("x", &[]), None);
        assert!(r.render().is_empty());
    }

    #[test]
    fn global_registry_is_shared() {
        registry().counter_add("irf_registry_smoke_total", &[], 1.0);
        assert!(registry().get("irf_registry_smoke_total", &[]).is_some());
    }
}
