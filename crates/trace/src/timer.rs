//! Wall-clock timing for the runtime columns of Table I / Fig. 7.
//!
//! Lives in `irf-trace` (re-exported by `irf-metrics` for
//! compatibility) so timed segments share the spans' clock: a named
//! timer also records each stopped segment as a trace event.

use crate::span::{now_ns, record_interval};
use std::time::Duration;

/// A simple accumulating stopwatch.
///
/// # Example
///
/// ```
/// use irf_trace::Timer;
///
/// let mut t = Timer::new();
/// t.start();
/// let _work: u64 = (0..1000).sum();
/// t.stop();
/// assert!(t.elapsed().as_nanos() > 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Timer {
    accumulated: Duration,
    /// Nanosecond offset (from the process trace anchor) at which the
    /// running segment started.
    running_since_ns: Option<u64>,
    /// When set, stopped segments are also recorded as trace events.
    name: Option<&'static str>,
}

impl Timer {
    /// Creates a stopped timer at zero.
    #[must_use]
    pub fn new() -> Self {
        Timer::default()
    }

    /// Creates a stopped timer whose segments are additionally
    /// recorded as trace events named `name` while a
    /// [`crate::Collector`] is installed.
    #[must_use]
    pub fn named(name: &'static str) -> Self {
        Timer {
            name: Some(name),
            ..Timer::default()
        }
    }

    /// Starts a new running segment. Calling `start` on a timer that
    /// is already running first folds the in-flight segment into the
    /// accumulated total — time measured so far is never discarded.
    pub fn start(&mut self) {
        self.stop();
        self.running_since_ns = Some(now_ns());
    }

    /// Stops the running segment, folding it into the accumulated
    /// total. Stopping a stopped timer is a no-op.
    pub fn stop(&mut self) {
        if let Some(since_ns) = self.running_since_ns.take() {
            let end_ns = now_ns();
            self.accumulated += Duration::from_nanos(end_ns.saturating_sub(since_ns));
            if let Some(name) = self.name {
                record_interval(name, since_ns, end_ns);
            }
        }
    }

    /// Total accumulated time (including a still-running segment).
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        match self.running_since_ns {
            Some(since_ns) => {
                self.accumulated + Duration::from_nanos(now_ns().saturating_sub(since_ns))
            }
            None => self.accumulated,
        }
    }

    /// Accumulated seconds as `f64`.
    #[must_use]
    pub fn seconds(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Times a closure and returns `(result, seconds)`.
    pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
        let start_ns = now_ns();
        let out = f();
        let dur = Duration::from_nanos(now_ns().saturating_sub(start_ns));
        (out, dur.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_across_segments() {
        let mut t = Timer::new();
        t.start();
        std::thread::sleep(Duration::from_millis(2));
        t.stop();
        let first = t.elapsed();
        t.start();
        std::thread::sleep(Duration::from_millis(2));
        t.stop();
        assert!(t.elapsed() > first);
    }

    #[test]
    fn stop_without_start_is_noop() {
        let mut t = Timer::new();
        t.stop();
        assert_eq!(t.elapsed(), Duration::ZERO);
    }

    #[test]
    fn restart_folds_the_inflight_segment() {
        // Regression test: `start()` on a running timer used to throw
        // away the in-flight segment. Sleeps only ever over-run, so
        // the bound below is deterministic.
        let mut t = Timer::new();
        t.start();
        std::thread::sleep(Duration::from_millis(3));
        t.start(); // must fold the >= 3 ms segment, not drop it
        std::thread::sleep(Duration::from_millis(3));
        t.stop();
        assert!(
            t.elapsed() >= Duration::from_millis(6),
            "restart dropped an in-flight segment: {:?}",
            t.elapsed()
        );
    }

    #[test]
    fn time_closure_returns_result() {
        let (v, secs) = Timer::time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn named_timer_records_trace_events() {
        let _guard = crate::span::COLLECTOR_GUARD
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let collector = crate::Collector::install().expect("no collector active");
        let mut t = Timer::named("timed_segment");
        t.start();
        t.stop();
        t.start();
        t.stop();
        let trace = collector.finish();
        let n = trace
            .events
            .iter()
            .filter(|e| e.name == "timed_segment")
            .count();
        assert_eq!(n, 2);
    }
}
