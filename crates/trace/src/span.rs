//! Scoped spans, the per-thread event buffers behind them, and the
//! process-wide [`Collector`].
//!
//! # Cost model
//!
//! With no collector installed, [`span`] performs one relaxed atomic
//! load and returns an inert guard whose `Drop` is a branch — the
//! instrumentation stays in release hot paths. With a collector
//! active, events are pushed onto a plain thread-local `Vec` (no lock,
//! no allocation after warm-up) and handed to the shared sink only
//! when the thread's span stack unwinds to depth zero, so worker
//! threads that never exit still deliver everything they recorded.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// A value attached to a span with [`Span::attr`].
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer.
    U64(u64),
    /// Double-precision float.
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Free-form text.
    Str(String),
    /// A list of floats — e.g. a PCG residual history or per-level
    /// nnz counts.
    F64List(Vec<f64>),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

impl From<Vec<f64>> for AttrValue {
    fn from(v: Vec<f64>) -> Self {
        AttrValue::F64List(v)
    }
}

impl From<&[f64]> for AttrValue {
    fn from(v: &[f64]) -> Self {
        AttrValue::F64List(v.to_vec())
    }
}

/// One completed span, as delivered to a [`Trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Span name (a static string by design, so recording never
    /// allocates for the name).
    pub name: &'static str,
    /// Small sequential id of the recording thread (0 = first thread
    /// that ever recorded).
    pub tid: u64,
    /// Nesting depth of the span on its thread (0 = top level).
    pub depth: u32,
    /// Nanoseconds from collector installation to span start.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Id of the request active on the recording thread when the span
    /// opened (see [`crate::request`]); `0` when none.
    pub request: u64,
    /// Attributes attached with [`Span::attr`].
    pub args: Vec<(&'static str, AttrValue)>,
}

/// `true` while a collector is installed; the only state the disabled
/// fast path touches.
static ACTIVE: AtomicBool = AtomicBool::new(false);
/// Collector generation; buffered events from an older epoch are
/// discarded rather than leaking into the next trace.
static EPOCH: AtomicU64 = AtomicU64::new(0);
/// Source of the small sequential thread ids.
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

/// Process-wide monotonic time base shared by spans and timers. Set
/// once, on first use, so offsets from it are comparable across
/// threads and collectors.
fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// Nanoseconds since the process anchor (saturating at `u64::MAX`).
pub(crate) fn now_ns() -> u64 {
    u64::try_from(anchor().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

struct Sink {
    events: Vec<Event>,
    /// `(tid, label)` pairs reported by threads that flushed.
    thread_labels: Vec<(u64, String)>,
}

fn sink() -> &'static Mutex<Sink> {
    static SINK: OnceLock<Mutex<Sink>> = OnceLock::new();
    SINK.get_or_init(|| {
        Mutex::new(Sink {
            events: Vec::new(),
            thread_labels: Vec::new(),
        })
    })
}

struct ThreadState {
    tid: u64,
    label: Option<String>,
    /// Epoch the buffered events belong to.
    epoch: u64,
    /// Whether `label` was already delivered for `epoch`.
    label_reported: bool,
    depth: u32,
    buf: Vec<Event>,
}

impl ThreadState {
    fn new() -> Self {
        ThreadState {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            label: None,
            epoch: 0,
            label_reported: false,
            depth: 0,
            buf: Vec::new(),
        }
    }

    /// Drops state belonging to a previous collector generation.
    fn sync_epoch(&mut self) {
        let current = EPOCH.load(Ordering::Relaxed);
        if self.epoch != current {
            self.buf.clear();
            self.depth = 0;
            self.epoch = current;
            self.label_reported = false;
        }
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let mut sink = sink().lock().expect("trace sink poisoned");
        sink.events.append(&mut self.buf);
        if !self.label_reported {
            if let Some(label) = &self.label {
                sink.thread_labels.push((self.tid, label.clone()));
            }
            self.label_reported = true;
        }
    }
}

thread_local! {
    static TLS: RefCell<ThreadState> = RefCell::new(ThreadState::new());
}

/// Names the calling thread in exported traces (e.g. the runtime pool
/// labels its workers `irf-runtime-N`). Idempotent; the latest label
/// wins.
pub fn set_thread_label(label: &str) {
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        t.label = Some(label.to_string());
        t.label_reported = false;
    });
}

/// A scoped span: records one [`Event`] covering its lifetime when a
/// [`Collector`] is installed, and costs one atomic load otherwise.
///
/// Bind it to a variable (`let _span = span("x");`) — an unnamed `_`
/// binding drops immediately and records an empty interval.
#[must_use = "a span measures its guard's lifetime; bind it to a variable"]
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    /// `u64::MAX` marks an inert span (no collector at creation).
    start_ns: u64,
    depth: u32,
    request: u64,
    args: Vec<(&'static str, AttrValue)>,
}

/// Opens a span named `name`. The span closes (and records its event)
/// when the returned guard drops.
pub fn span(name: &'static str) -> Span {
    if !ACTIVE.load(Ordering::Relaxed) {
        return Span {
            name,
            start_ns: u64::MAX,
            depth: 0,
            request: 0,
            args: Vec::new(),
        };
    }
    let depth = TLS.with(|t| {
        let mut t = t.borrow_mut();
        t.sync_epoch();
        let depth = t.depth;
        t.depth += 1;
        depth
    });
    Span {
        name,
        start_ns: now_ns(),
        depth,
        request: crate::request::current(),
        args: Vec::new(),
    }
}

impl Span {
    /// Attaches an attribute (a no-op on inert spans, so attribute
    /// construction cost is only paid while tracing).
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if self.start_ns != u64::MAX {
            self.args.push((key, value.into()));
        }
    }

    /// `true` when a collector was active at span creation — use to
    /// skip building expensive attribute values while not tracing.
    #[must_use]
    pub fn is_recording(&self) -> bool {
        self.start_ns != u64::MAX
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.start_ns == u64::MAX {
            return;
        }
        let end_ns = now_ns();
        TLS.with(|t| {
            let mut t = t.borrow_mut();
            let current = EPOCH.load(Ordering::Relaxed);
            if t.epoch != current {
                // The collector changed under this span; its event
                // belongs to a dead trace.
                t.sync_epoch();
                return;
            }
            t.depth = t.depth.saturating_sub(1);
            let event = Event {
                name: self.name,
                tid: t.tid,
                depth: self.depth,
                start_ns: self.start_ns,
                dur_ns: end_ns.saturating_sub(self.start_ns),
                request: self.request,
                args: std::mem::take(&mut self.args),
            };
            t.buf.push(event);
            if t.depth == 0 {
                t.flush();
            }
        });
    }
}

/// Record a pre-measured interval (used by the [`crate::Timer`] shim,
/// whose segments are not lexical scopes). Inert without a collector.
pub(crate) fn record_interval(name: &'static str, start_ns: u64, end_ns: u64) {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        t.sync_epoch();
        let event = Event {
            name,
            tid: t.tid,
            depth: t.depth,
            start_ns,
            dur_ns: end_ns.saturating_sub(start_ns),
            request: crate::request::current(),
            args: Vec::new(),
        };
        t.buf.push(event);
        if t.depth == 0 {
            t.flush();
        }
    });
}

/// The process-wide trace collector. At most one is active at a time:
/// [`Collector::install`] returns `None` while another is running, so
/// concurrent would-be tracers degrade to not tracing instead of
/// corrupting each other's streams.
#[derive(Debug)]
pub struct Collector {
    epoch: u64,
    start_ns: u64,
}

impl Collector {
    /// Starts collecting; `None` if a collector is already installed.
    pub fn install() -> Option<Collector> {
        if ACTIVE.swap(true, Ordering::SeqCst) {
            return None;
        }
        let epoch = EPOCH.fetch_add(1, Ordering::SeqCst) + 1;
        {
            let mut sink = sink().lock().expect("trace sink poisoned");
            sink.events.clear();
            sink.thread_labels.clear();
        }
        Some(Collector {
            epoch,
            start_ns: now_ns(),
        })
    }

    /// Stops collecting and returns everything recorded. Spans still
    /// open on other threads when this is called are dropped from the
    /// trace (they have not completed, so they have no duration yet).
    #[must_use]
    pub fn finish(self) -> Trace {
        ACTIVE.store(false, Ordering::SeqCst);
        // The calling thread may hold buffered events below an open
        // outer scope; deliver them.
        TLS.with(|t| {
            let mut t = t.borrow_mut();
            if t.epoch == self.epoch {
                t.flush();
            }
        });
        let (mut events, thread_labels) = {
            let mut sink = sink().lock().expect("trace sink poisoned");
            (
                std::mem::take(&mut sink.events),
                std::mem::take(&mut sink.thread_labels),
            )
        };
        // Rebase onto the collector's installation instant and order
        // deterministically: by start time, then thread, then depth
        // (parents before children at equal starts).
        events.retain(|e| e.start_ns >= self.start_ns);
        for e in &mut events {
            e.start_ns -= self.start_ns;
        }
        events.sort_by(|a, b| {
            (a.start_ns, a.tid, a.depth, a.name).cmp(&(b.start_ns, b.tid, b.depth, b.name))
        });
        Trace {
            events,
            thread_labels,
        }
    }
}

/// A finished recording: every completed span between
/// [`Collector::install`] and [`Collector::finish`], ordered by start
/// time.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Completed spans, ordered by `(start_ns, tid, depth)`.
    pub events: Vec<Event>,
    /// `(tid, label)` pairs for threads named via
    /// [`set_thread_label`].
    pub thread_labels: Vec<(u64, String)>,
}

impl Trace {
    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Chrome trace-event JSON (see [`crate::chrome`]).
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        crate::chrome::to_chrome_json(self)
    }

    /// Human-readable self-profile tree (see [`crate::profile`]).
    #[must_use]
    pub fn profile_tree(&self) -> String {
        crate::profile::profile_tree(self)
    }
}

/// Serializes tests that install the global collector.
#[cfg(test)]
pub(crate) static COLLECTOR_GUARD: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_are_inert_without_a_collector() {
        let _guard = COLLECTOR_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        {
            let mut s = span("ignored");
            s.attr("k", 1u64);
            assert!(!s.is_recording());
        }
        let collector = Collector::install().expect("no collector active");
        let trace = collector.finish();
        assert!(trace.is_empty(), "inert spans must not record");
    }

    #[test]
    fn nested_spans_record_depth_and_order() {
        let _guard = COLLECTOR_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        let collector = Collector::install().expect("no collector active");
        {
            let _outer = span("outer");
            {
                let mut inner = span("inner");
                inner.attr("answer", 42u64);
            }
        }
        let trace = collector.finish();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.events[0].name, "outer");
        assert_eq!(trace.events[0].depth, 0);
        assert_eq!(trace.events[1].name, "inner");
        assert_eq!(trace.events[1].depth, 1);
        assert!(trace.events[0].dur_ns >= trace.events[1].dur_ns);
        assert_eq!(trace.events[1].args, vec![("answer", AttrValue::U64(42))]);
    }

    #[test]
    fn second_collector_install_is_refused() {
        let _guard = COLLECTOR_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        let first = Collector::install().expect("no collector active");
        assert!(Collector::install().is_none());
        let _ = first.finish();
        let again = Collector::install().expect("freed");
        let _ = again.finish();
    }

    #[test]
    fn other_threads_flush_into_the_same_trace() {
        let _guard = COLLECTOR_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        let collector = Collector::install().expect("no collector active");
        std::thread::spawn(|| {
            set_thread_label("helper");
            let _s = span("on_helper");
        })
        .join()
        .expect("helper thread");
        {
            let _s = span("on_main");
        }
        let trace = collector.finish();
        let names: Vec<_> = trace.events.iter().map(|e| e.name).collect();
        assert!(names.contains(&"on_helper"), "{names:?}");
        assert!(names.contains(&"on_main"), "{names:?}");
        assert!(trace
            .thread_labels
            .iter()
            .any(|(_, label)| label == "helper"));
        let helper = trace.events.iter().find(|e| e.name == "on_helper");
        let main = trace.events.iter().find(|e| e.name == "on_main");
        assert_ne!(helper.map(|e| e.tid), main.map(|e| e.tid));
    }

    #[test]
    fn stale_events_do_not_leak_across_collectors() {
        let _guard = COLLECTOR_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        let first = Collector::install().expect("no collector active");
        let open = span("spans_across_finish");
        let trace1 = first.finish();
        assert!(trace1.is_empty());
        drop(open); // completes after finish: discarded
        let second = Collector::install().expect("freed");
        {
            let _s = span("fresh");
        }
        let trace2 = second.finish();
        let names: Vec<_> = trace2.events.iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["fresh"]);
    }
}
