//! The self-profile tree: spans aggregated by call path, with
//! inclusive/exclusive time and call counts — the quick textual answer
//! to "where did the pipeline spend its time" that the paper's Table I
//! runtime split needs.

use crate::span::Trace;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One aggregated node of the profile tree.
#[derive(Debug, Default)]
struct Node {
    calls: u64,
    inclusive_ns: u64,
    children: BTreeMap<&'static str, Node>,
}

impl Node {
    fn child_inclusive(&self) -> u64 {
        self.children.values().map(|c| c.inclusive_ns).sum()
    }
}

/// Builds the aggregated call tree from a trace.
///
/// Parenthood is reconstructed from each thread's event stream using
/// the recorded nesting depth, then identical call paths are merged
/// across threads — a span running on four pool workers shows up as
/// one node with four calls.
fn build(trace: &Trace) -> Node {
    let mut root = Node::default();
    let mut by_tid: BTreeMap<u64, Vec<&crate::span::Event>> = BTreeMap::new();
    for event in &trace.events {
        by_tid.entry(event.tid).or_default().push(event);
    }
    for events in by_tid.values_mut() {
        events.sort_by_key(|e| (e.start_ns, e.depth));
        let mut path: Vec<&'static str> = Vec::new();
        for event in events.iter() {
            path.truncate(event.depth as usize);
            path.push(event.name);
            let mut node = &mut root;
            for name in &path {
                node = node.children.entry(name).or_default();
            }
            node.calls += 1;
            node.inclusive_ns += event.dur_ns;
        }
    }
    root.inclusive_ns = root.child_inclusive();
    root
}

fn render_node(out: &mut String, name: &str, node: &Node, depth: usize, total_ns: u64) {
    let incl_ms = node.inclusive_ns as f64 / 1e6;
    let excl_ms = node.inclusive_ns.saturating_sub(node.child_inclusive()) as f64 / 1e6;
    let share = if total_ns > 0 {
        node.inclusive_ns as f64 * 100.0 / total_ns as f64
    } else {
        0.0
    };
    let label = format!("{:indent$}{name}", "", indent = depth * 2);
    let _ = writeln!(
        out,
        "{label:<40} {:>7} {:>12.3} {:>12.3} {share:>6.1}%",
        node.calls, incl_ms, excl_ms
    );
    // Largest subtrees first; ties resolve alphabetically for a stable
    // rendering.
    let mut children: Vec<_> = node.children.iter().collect();
    children.sort_by(|a, b| b.1.inclusive_ns.cmp(&a.1.inclusive_ns).then(a.0.cmp(b.0)));
    for (child_name, child) in children {
        render_node(out, child_name, child, depth + 1, total_ns);
    }
}

/// Renders the profile tree as aligned text.
#[must_use]
pub fn profile_tree(trace: &Trace) -> String {
    let root = build(trace);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<40} {:>7} {:>12} {:>12} {:>7}",
        "span", "calls", "incl(ms)", "excl(ms)", "share"
    );
    let total_ns = root.inclusive_ns;
    let mut roots: Vec<_> = root.children.iter().collect();
    roots.sort_by(|a, b| b.1.inclusive_ns.cmp(&a.1.inclusive_ns).then(a.0.cmp(b.0)));
    for (name, node) in roots {
        render_node(&mut out, name, node, 0, total_ns);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Event;

    fn event(name: &'static str, tid: u64, depth: u32, start_ns: u64, dur_ns: u64) -> Event {
        Event {
            name,
            tid,
            depth,
            start_ns,
            dur_ns,
            request: 0,
            args: Vec::new(),
        }
    }

    #[test]
    fn tree_aggregates_by_path_across_threads() {
        let trace = Trace {
            events: vec![
                event("analyze", 0, 0, 0, 10_000_000),
                event("solve", 0, 1, 100, 6_000_000),
                event("features", 0, 1, 6_000_200, 3_000_000),
                // A second thread runs the same path once more.
                event("analyze", 1, 0, 50, 8_000_000),
                event("solve", 1, 1, 150, 7_000_000),
            ],
            thread_labels: Vec::new(),
        };
        let text = profile_tree(&trace);
        let analyze_line = text
            .lines()
            .find(|l| l.trim_start().starts_with("analyze"))
            .expect("analyze row");
        assert!(analyze_line.contains(" 2 "), "{analyze_line}");
        let solve_line = text
            .lines()
            .find(|l| l.trim_start().starts_with("solve"))
            .expect("solve row");
        assert!(solve_line.contains(" 2 "), "{solve_line}");
        // solve (13 ms inclusive) sorts above features (3 ms).
        let solve_at = text.find("solve").expect("solve");
        let features_at = text.find("features").expect("features");
        assert!(solve_at < features_at);
        // Exclusive time of analyze = 18 ms - 16 ms = 2 ms.
        assert!(analyze_line.contains("2.000"), "{analyze_line}");
    }

    #[test]
    fn empty_trace_renders_header_only() {
        let text = profile_tree(&Trace::default());
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("span"));
    }
}
