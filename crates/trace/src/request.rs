//! Request-scoped attribution: a thread-local "current request id"
//! that spans stamp themselves with, plus an always-on per-request
//! statistics accumulator.
//!
//! The span collector ([`crate::Collector`]) is a process singleton,
//! so span *recording* is best-effort under concurrency — but request
//! attribution must not be. This module keeps the two concerns apart:
//!
//! * [`scope`] installs a request id on the calling thread. Every
//!   span opened on that thread while the scope is active carries the
//!   id in [`crate::Event::request`], and instrumented subsystems
//!   (the stage store, the PCG solver) fold their events into the
//!   scope's [`RequestStats`] via [`note_cache`] / [`note_pcg`].
//! * The stats path is always on and allocation-free: with no scope
//!   installed, every `note_*` call is one thread-local `Cell` read
//!   and a branch, so pipeline code can stay instrumented in CLI and
//!   bench builds that never mint request ids.
//!
//! Work handed to other threads (e.g. a micro-batcher) does NOT
//! inherit the scope — cross-thread attribution is the handoff's job
//! (carry the id in the job and report results back explicitly).

use std::cell::Cell;

/// Per-request event counts accumulated while a [`scope`] is active.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestStats {
    /// Stage-store lookups that found their artifact (including
    /// misses coalesced onto another caller's in-flight computation).
    pub cache_hits: u64,
    /// Stage-store lookups that had to compute.
    pub cache_misses: u64,
    /// PCG iterations across every solve the request triggered.
    pub pcg_iterations: u64,
    /// Number of PCG solves the request triggered.
    pub pcg_solves: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Ctx {
    id: u64,
    stats: RequestStats,
}

thread_local! {
    static CURRENT: Cell<Ctx> = const { Cell::new(Ctx { id: 0, stats: RequestStats { cache_hits: 0, cache_misses: 0, pcg_iterations: 0, pcg_solves: 0 } }) };
}

/// The request id active on this thread (`0` when none).
#[must_use]
pub fn current() -> u64 {
    CURRENT.with(|c| c.get().id)
}

/// Installs `id` as the calling thread's current request until the
/// returned guard drops (restoring whatever was active before, so
/// scopes nest). Ids are caller-minted; `0` means "no request" and
/// installs an inert scope.
#[must_use = "the request scope ends when the guard drops; bind it"]
pub fn scope(id: u64) -> RequestScope {
    let previous = CURRENT.with(|c| {
        c.replace(Ctx {
            id,
            stats: RequestStats::default(),
        })
    });
    RequestScope {
        previous: Some(previous),
    }
}

/// Guard for an active request scope; see [`scope`].
#[derive(Debug)]
pub struct RequestScope {
    previous: Option<Ctx>,
}

impl RequestScope {
    /// Ends the scope and returns the statistics accumulated on this
    /// thread while it was active.
    #[must_use]
    pub fn finish(mut self) -> RequestStats {
        self.restore().stats
    }

    /// The statistics accumulated so far (the scope stays active).
    #[must_use]
    pub fn stats(&self) -> RequestStats {
        CURRENT.with(|c| c.get().stats)
    }

    fn restore(&mut self) -> Ctx {
        match self.previous.take() {
            Some(previous) => CURRENT.with(|c| c.replace(previous)),
            None => Ctx::default(),
        }
    }
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        if self.previous.is_some() {
            let _ = self.restore();
        }
    }
}

fn note(f: impl FnOnce(&mut RequestStats)) {
    CURRENT.with(|c| {
        let mut ctx = c.get();
        if ctx.id == 0 {
            return;
        }
        f(&mut ctx.stats);
        c.set(ctx);
    });
}

/// Folds one stage-store lookup into the active request's stats
/// (no-op without a scope).
pub fn note_cache(hit: bool) {
    note(|s| {
        if hit {
            s.cache_hits += 1;
        } else {
            s.cache_misses += 1;
        }
    });
}

/// Folds one finished PCG solve into the active request's stats
/// (no-op without a scope).
pub fn note_pcg(iterations: u64) {
    note(|s| {
        s.pcg_iterations += iterations;
        s.pcg_solves += 1;
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notes_are_inert_without_a_scope() {
        note_cache(true);
        note_pcg(7);
        assert_eq!(current(), 0);
    }

    #[test]
    fn scope_accumulates_and_restores() {
        assert_eq!(current(), 0);
        let outer = scope(11);
        note_cache(true);
        {
            let inner = scope(22);
            assert_eq!(current(), 22);
            note_cache(false);
            note_cache(false);
            note_pcg(3);
            let stats = inner.finish();
            assert_eq!(stats.cache_misses, 2);
            assert_eq!(stats.cache_hits, 0);
            assert_eq!(stats.pcg_iterations, 3);
            assert_eq!(stats.pcg_solves, 1);
        }
        // The outer scope is live again and kept its own counts.
        assert_eq!(current(), 11);
        note_cache(true);
        let stats = outer.finish();
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.cache_misses, 0);
        assert_eq!(current(), 0);
    }

    #[test]
    fn dropping_the_guard_restores_without_finish() {
        {
            let _scope = scope(5);
            assert_eq!(current(), 5);
        }
        assert_eq!(current(), 0);
    }

    #[test]
    fn spans_carry_the_active_request_id() {
        let _guard = crate::span::COLLECTOR_GUARD
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let collector = crate::Collector::install().expect("no collector active");
        {
            let _outside = crate::span("outside");
        }
        let request = scope(0xdead_beef);
        {
            let _inside = crate::span("inside");
        }
        let _ = request.finish();
        let trace = collector.finish();
        let find = |name: &str| {
            trace
                .events
                .iter()
                .find(|e| e.name == name)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        assert_eq!(find("outside").request, 0);
        assert_eq!(find("inside").request, 0xdead_beef);
    }
}
