//! Feature normalization policies.

use irf_pg::GridMap;

/// How a feature map is scaled before entering the model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Normalization {
    /// Divide by the maximum absolute value (maps land in `[-1, 1]`).
    #[default]
    MaxAbs,
    /// Subtract the mean and divide by the standard deviation.
    ZScore,
    /// Multiply by a fixed constant. Unlike per-map normalization this
    /// preserves amplitude information *across* designs — essential
    /// for the numerical-solution channels, whose absolute values are
    /// the fusion's head start.
    Fixed(f32),
    /// Leave the map untouched.
    None,
}

/// Applies the chosen normalization, returning a new map. Degenerate
/// maps (all-zero, zero variance) are returned unchanged rather than
/// producing NaNs.
#[must_use]
pub fn normalize(map: &GridMap, policy: Normalization) -> GridMap {
    match policy {
        Normalization::MaxAbs => map.normalized(),
        Normalization::None => map.clone(),
        Normalization::Fixed(scale) => {
            let data = map.data().iter().map(|v| v * scale).collect();
            GridMap::from_vec(map.width(), map.height(), data)
        }
        Normalization::ZScore => {
            let mean = map.mean();
            let n = map.data().len() as f32;
            let var = map
                .data()
                .iter()
                .map(|v| (v - mean) * (v - mean))
                .sum::<f32>()
                / n;
            if var == 0.0 {
                return map.clone();
            }
            let std = var.sqrt();
            let data = map.data().iter().map(|v| (v - mean) / std).collect();
            GridMap::from_vec(map.width(), map.height(), data)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_abs_caps_at_one() {
        let m = GridMap::from_vec(1, 3, vec![2.0, -4.0, 1.0]);
        let n = normalize(&m, Normalization::MaxAbs);
        assert_eq!(n.data(), &[0.5, -1.0, 0.25]);
    }

    #[test]
    fn zscore_centers_and_scales() {
        let m = GridMap::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        let n = normalize(&m, Normalization::ZScore);
        assert!(n.mean().abs() < 1e-6);
        let var: f32 = n.data().iter().map(|v| v * v).sum::<f32>() / 4.0;
        assert!((var - 1.0).abs() < 1e-5);
    }

    #[test]
    fn degenerate_maps_pass_through() {
        let m = GridMap::filled(2, 2, 5.0);
        let z = normalize(&m, Normalization::ZScore);
        assert_eq!(z, m);
        let zero = GridMap::new(2, 2);
        assert_eq!(normalize(&zero, Normalization::MaxAbs), zero);
    }

    #[test]
    fn none_is_identity() {
        let m = GridMap::from_vec(1, 2, vec![7.0, -3.0]);
        assert_eq!(normalize(&m, Normalization::None), m);
    }

    #[test]
    fn fixed_scale_preserves_ratios_across_maps() {
        let a = GridMap::from_vec(1, 2, vec![0.001, 0.002]);
        let b = GridMap::from_vec(1, 2, vec![0.01, 0.02]);
        let na = normalize(&a, Normalization::Fixed(100.0));
        let nb = normalize(&b, Normalization::Fixed(100.0));
        // Unlike MaxAbs, the 10x amplitude difference survives.
        assert!((nb.max() / na.max() - 10.0).abs() < 1e-5);
        assert!((na.data()[0] - 0.1).abs() < 1e-7);
    }
}
