//! Shortest-path resistance to the voltage sources.
//!
//! This is the costliest structural feature (the
//! `feature/shortest_path_resistance` span dominates `feature_stack`
//! time in traces), so the module is built for parallel reuse:
//!
//! - the adjacency is precomputed once as a CSR [`ResistanceGraph`]
//!   whose edge weights are *resistances* (no per-edge divide inside
//!   the Dijkstra inner loop) and shared immutably by every pass;
//! - each pad's pass borrows a per-thread scratch arena for its
//!   `dist` vector and binary heap, so a fan-out allocates O(nodes)
//!   once per worker thread instead of once per pad;
//! - the per-pad passes run as independent tasks on the deterministic
//!   pool, and the partial accumulators are folded in fixed chunk
//!   order ([`irf_runtime::par_reduce`]), so the result is bitwise
//!   identical at any thread count.

use crate::error::FeatureError;
use irf_pg::{GridMap, PowerGrid, Rasterizer};
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// How many pads the *average* shortest-path computation visits
/// individually before falling back to the single multi-source pass.
const MAX_PADS_FOR_AVERAGE: usize = 32;

/// Pads folded per reduction chunk. Fixed — never derived from the
/// thread count — so the accumulation grouping, and therefore every
/// floating-point sum, is identical at any parallelism.
const PADS_PER_CHUNK: usize = 4;

#[derive(PartialEq)]
struct HeapItem {
    dist: f64,
    node: u32,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// CSR-form bidirectional adjacency with precomputed edge
/// resistances: built once per grid and shared by every concurrent
/// Dijkstra pass. Edge weights come straight from [`Segment::ohms`],
/// dropping the `1.0 / conductance` divide the naive adjacency paid
/// on every edge visit.
///
/// [`Segment::ohms`]: irf_pg::Segment::ohms
#[derive(Debug, Clone)]
pub struct ResistanceGraph {
    offsets: Vec<usize>,
    targets: Vec<u32>,
    resistances: Vec<f64>,
}

impl ResistanceGraph {
    /// Builds the adjacency from the grid's segments. Per node, edges
    /// appear in segment order, matching the `Vec<Vec<_>>` adjacency
    /// this replaces.
    #[must_use]
    pub fn new(grid: &PowerGrid) -> Self {
        let n = grid.nodes.len();
        let mut offsets = vec![0usize; n + 1];
        for s in &grid.segments {
            offsets[s.a + 1] += 1;
            offsets[s.b + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        let mut targets = vec![0u32; offsets[n]];
        let mut resistances = vec![0.0f64; offsets[n]];
        for s in &grid.segments {
            targets[cursor[s.a]] = s.b as u32;
            resistances[cursor[s.a]] = s.ohms;
            cursor[s.a] += 1;
            targets[cursor[s.b]] = s.a as u32;
            resistances[cursor[s.b]] = s.ohms;
            cursor[s.b] += 1;
        }
        ResistanceGraph {
            offsets,
            targets,
            resistances,
        }
    }

    /// Node count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `true` when the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn neighbors(&self, node: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.offsets[node]..self.offsets[node + 1];
        self.targets[range.clone()]
            .iter()
            .zip(&self.resistances[range])
            .map(|(&t, &r)| (t as usize, r))
    }
}

/// Per-thread scratch arena: the distance vector and heap are reused
/// across passes on the same worker, so a 32-pad fan-out performs 1-2
/// large allocations per thread instead of 32.
struct Scratch {
    dist: Vec<f64>,
    heap: BinaryHeap<HeapItem>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = const {
        RefCell::new(Scratch {
            dist: Vec::new(),
            heap: BinaryHeap::new(),
        })
    };
}

/// Runs one Dijkstra pass from `sources` in the calling thread's
/// scratch arena and hands the finished distance slice to `f`
/// (`f64::INFINITY` marks unreachable nodes).
fn dijkstra_pass<R>(graph: &ResistanceGraph, sources: &[usize], f: impl FnOnce(&[f64]) -> R) -> R {
    SCRATCH.with(|cell| {
        let scratch = &mut *cell.borrow_mut();
        scratch.dist.clear();
        scratch.dist.resize(graph.len(), f64::INFINITY);
        scratch.heap.clear();
        for &s in sources {
            scratch.dist[s] = 0.0;
            scratch.heap.push(HeapItem {
                dist: 0.0,
                node: s as u32,
            });
        }
        while let Some(HeapItem { dist: d, node }) = scratch.heap.pop() {
            let node = node as usize;
            if d > scratch.dist[node] {
                continue;
            }
            for (next, resistance) in graph.neighbors(node) {
                let nd = d + resistance;
                if nd < scratch.dist[next] {
                    scratch.dist[next] = nd;
                    scratch.heap.push(HeapItem {
                        dist: nd,
                        node: next as u32,
                    });
                }
            }
        }
        f(&scratch.dist)
    })
}

/// Dijkstra with edge weight = segment resistance from the given
/// source set; returns per-node cumulative resistance
/// (`f64::INFINITY` for unreachable nodes).
///
/// # Errors
///
/// Returns [`FeatureError::NoPads`] when `sources` is empty.
pub fn resistance_distances(grid: &PowerGrid, sources: &[usize]) -> Result<Vec<f64>, FeatureError> {
    if sources.is_empty() {
        return Err(FeatureError::NoPads);
    }
    let graph = ResistanceGraph::new(grid);
    Ok(dijkstra_pass(&graph, sources, <[f64]>::to_vec))
}

/// The paper's shortest-path resistance map: "the average of the
/// cumulative resistance from each node to voltage sources". For each
/// pad we run a resistance-weighted Dijkstra and average the per-node
/// results; grids with very many pads fall back to the single
/// multi-source (minimum) pass to bound setup cost. Node values are
/// rasterized with per-tile means; unreachable nodes are skipped.
///
/// # Errors
///
/// Returns [`FeatureError::NoPads`] when the grid has no pads.
pub fn shortest_path_resistance_map(
    grid: &PowerGrid,
    raster: &Rasterizer,
) -> Result<GridMap, FeatureError> {
    let values = shortest_path_resistance_per_node(grid)?;
    Ok(rasterize_per_node(grid, &values, raster))
}

/// Rasterizes precomputed per-node shortest-path values with per-tile
/// means, skipping unreachable (infinite) nodes. Split out so the
/// feature extractor can fan the Dijkstra passes out at top level and
/// rasterize later inside its own task.
#[must_use]
pub fn rasterize_per_node(grid: &PowerGrid, values: &[f64], raster: &Rasterizer) -> GridMap {
    raster.splat_mean(
        grid.nodes
            .iter()
            .zip(values)
            .filter(|(_, v)| v.is_finite())
            .map(|(n, &v)| (n.x, n.y, v)),
    )
}

/// Per-node average shortest-path resistance (see
/// [`shortest_path_resistance_map`]). The per-pad passes fan out
/// across the deterministic pool; the partial accumulators are folded
/// in fixed chunk order, so the result is bitwise identical at any
/// thread count.
///
/// # Errors
///
/// Returns [`FeatureError::NoPads`] when the grid has no pads.
pub fn shortest_path_resistance_per_node(grid: &PowerGrid) -> Result<Vec<f64>, FeatureError> {
    if grid.pads.is_empty() {
        return Err(FeatureError::NoPads);
    }
    let pad_nodes: Vec<usize> = grid.pads.iter().map(|p| p.node).collect();
    let graph = ResistanceGraph::new(grid);
    irf_trace::registry().counter_add("irf_sp_pad_passes_total", &[], pad_nodes.len() as f64);
    if pad_nodes.len() > MAX_PADS_FOR_AVERAGE {
        // One multi-source minimum pass — cheap enough to stay serial.
        return Ok(dijkstra_pass(&graph, &pad_nodes, <[f64]>::to_vec));
    }
    let n = graph.len();
    let (acc, reachable) = irf_runtime::par_reduce(
        pad_nodes.len(),
        PADS_PER_CHUNK,
        (vec![0.0f64; n], vec![0u32; n]),
        |pads| {
            let mut acc = vec![0.0f64; n];
            let mut reachable = vec![0u32; n];
            for &pad in &pad_nodes[pads] {
                dijkstra_pass(&graph, &[pad], |dist| {
                    for ((a, r), &d) in acc.iter_mut().zip(reachable.iter_mut()).zip(dist) {
                        if d.is_finite() {
                            *a += d;
                            *r += 1;
                        }
                    }
                });
            }
            (acc, reachable)
        },
        |(mut acc, mut reachable), (acc_p, reachable_p)| {
            // In-order elementwise merge; the sums stay nonnegative,
            // so folding into the zero init is bit-exact.
            for (a, b) in acc.iter_mut().zip(&acc_p) {
                *a += b;
            }
            for (a, b) in reachable.iter_mut().zip(&reachable_p) {
                *a += b;
            }
            (acc, reachable)
        },
    );
    Ok(acc
        .iter()
        .zip(&reachable)
        .map(|(&a, &r)| {
            if r > 0 {
                a / f64::from(r)
            } else {
                f64::INFINITY
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use irf_spice::parse;

    /// pad --0.5-- a --0.5-- b, plus a second pad at b's far side.
    fn chain() -> PowerGrid {
        let src = "\
V1 p 0 1.0
R1 p a 0.5
R2 a b 0.5
I1 b 0 1m
";
        PowerGrid::from_netlist(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn distances_accumulate_resistance() {
        let g = chain();
        let pad = g.pads[0].node;
        let d = resistance_distances(&g, &[pad]).unwrap();
        // node order: p, a, b
        assert_eq!(d[pad], 0.0);
        assert!((d[1] - 0.5).abs() < 1e-12);
        assert!((d[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unreachable_nodes_are_infinite() {
        let src = "V1 p 0 1.0\nR1 p a 1.0\nR2 x y 1.0\nI1 a 0 1m\n";
        let g = PowerGrid::from_netlist(&parse(src).unwrap()).unwrap();
        let d = resistance_distances(&g, &[g.pads[0].node]).unwrap();
        assert!(d.iter().filter(|v| !v.is_finite()).count() == 2);
    }

    #[test]
    fn average_over_two_pads() {
        let src = "\
V1 p 0 1.0
V2 q 0 1.0
R1 p a 1.0
R2 a q 3.0
I1 a 0 1m
";
        let g = PowerGrid::from_netlist(&parse(src).unwrap()).unwrap();
        let v = shortest_path_resistance_per_node(&g).unwrap();
        // node a: 1.0 from p, 3.0 from q -> average 2.0.
        let a_idx = g
            .nodes
            .iter()
            .position(|n| n.name == "a")
            .expect("node a exists");
        assert!((v[a_idx] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn map_rasterizes_reachable_nodes() {
        let g = chain();
        let raster = Rasterizer::new(g.bounding_box(), 1, 1);
        let m = shortest_path_resistance_map(&g, &raster).unwrap();
        // Mean of 0.0, 0.5, 1.0.
        assert!((f64::from(m.get(0, 0)) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn shortest_path_prefers_low_resistance_route() {
        // Two routes from pad to t: direct 5 ohm, detour 1+1 = 2 ohm.
        let src = "\
V1 p 0 1.0
R1 p t 5.0
R2 p m 1.0
R3 m t 1.0
I1 t 0 1m
";
        let g = PowerGrid::from_netlist(&parse(src).unwrap()).unwrap();
        let d = resistance_distances(&g, &[g.pads[0].node]).unwrap();
        let t_idx = g.nodes.iter().position(|n| n.name == "t").unwrap();
        assert!((d[t_idx] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn padless_grid_is_an_error_not_a_panic() {
        let g = PowerGrid::default();
        assert_eq!(
            shortest_path_resistance_per_node(&g),
            Err(FeatureError::NoPads)
        );
        assert_eq!(resistance_distances(&g, &[]), Err(FeatureError::NoPads));
        let raster = Rasterizer::new((0, 0, 1, 1), 1, 1);
        assert_eq!(
            shortest_path_resistance_map(&g, &raster),
            Err(FeatureError::NoPads)
        );
    }

    #[test]
    fn csr_graph_matches_the_naive_adjacency() {
        let g = chain();
        let graph = ResistanceGraph::new(&g);
        let naive = g.adjacency();
        assert_eq!(graph.len(), g.nodes.len());
        for (node, edges) in naive.iter().enumerate() {
            let got: Vec<usize> = graph.neighbors(node).map(|(t, _)| t).collect();
            let want: Vec<usize> = edges.iter().map(|&(t, _)| t).collect();
            assert_eq!(got, want, "edge order at node {node}");
            for ((_, r), &(_, cond)) in graph.neighbors(node).zip(edges) {
                assert!((r - 1.0 / cond).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn fanout_matches_serial_accumulation_for_many_pads() {
        // 9 pads -> 3 reduction chunks; the averaged result must agree
        // with a plain serial per-pad loop to strict tolerance.
        let mut src = String::new();
        for i in 0..9 {
            src.push_str(&format!("V{i} p{i} 0 1.0\n"));
            src.push_str(&format!("R{i} p{i} mid {}\n", 0.25 * (i + 1) as f64));
        }
        src.push_str("Rl mid t 0.5\nI1 t 0 1m\n");
        let g = PowerGrid::from_netlist(&parse(&src).unwrap()).unwrap();
        let fanned = shortest_path_resistance_per_node(&g).unwrap();
        let mut acc = vec![0.0; g.nodes.len()];
        for pad in &g.pads {
            let d = resistance_distances(&g, &[pad.node]).unwrap();
            for (a, di) in acc.iter_mut().zip(&d) {
                *a += di;
            }
        }
        for (f, a) in fanned.iter().zip(&acc) {
            assert!((f - a / 9.0).abs() < 1e-12);
        }
    }
}
