//! Shortest-path resistance to the voltage sources.

use irf_pg::{GridMap, PowerGrid, Rasterizer};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// How many pads the *average* shortest-path computation visits
/// individually before falling back to the single multi-source pass.
const MAX_PADS_FOR_AVERAGE: usize = 32;

#[derive(PartialEq)]
struct HeapItem {
    dist: f64,
    node: usize,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra with edge weight = segment resistance from the given
/// source set; returns per-node cumulative resistance
/// (`f64::INFINITY` for unreachable nodes).
#[must_use]
pub fn resistance_distances(grid: &PowerGrid, sources: &[usize]) -> Vec<f64> {
    let adj = grid.adjacency();
    let mut dist = vec![f64::INFINITY; grid.nodes.len()];
    let mut heap = BinaryHeap::new();
    for &s in sources {
        dist[s] = 0.0;
        heap.push(HeapItem { dist: 0.0, node: s });
    }
    while let Some(HeapItem { dist: d, node }) = heap.pop() {
        if d > dist[node] {
            continue;
        }
        for &(next, conductance) in &adj[node] {
            let nd = d + 1.0 / conductance;
            if nd < dist[next] {
                dist[next] = nd;
                heap.push(HeapItem {
                    dist: nd,
                    node: next,
                });
            }
        }
    }
    dist
}

/// The paper's shortest-path resistance map: "the average of the
/// cumulative resistance from each node to voltage sources". For each
/// pad we run a resistance-weighted Dijkstra and average the per-node
/// results; grids with very many pads fall back to the single
/// multi-source (minimum) pass to bound setup cost. Node values are
/// rasterized with per-tile means; unreachable nodes are skipped.
///
/// # Panics
///
/// Panics if the grid has no pads.
#[must_use]
pub fn shortest_path_resistance_map(grid: &PowerGrid, raster: &Rasterizer) -> GridMap {
    assert!(!grid.pads.is_empty(), "shortest-path resistance needs pads");
    let values = shortest_path_resistance_per_node(grid);
    raster.splat_mean(
        grid.nodes
            .iter()
            .zip(&values)
            .filter(|(_, v)| v.is_finite())
            .map(|(n, &v)| (n.x, n.y, v)),
    )
}

/// Per-node average shortest-path resistance (see
/// [`shortest_path_resistance_map`]).
///
/// # Panics
///
/// Panics if the grid has no pads.
#[must_use]
pub fn shortest_path_resistance_per_node(grid: &PowerGrid) -> Vec<f64> {
    assert!(!grid.pads.is_empty(), "shortest-path resistance needs pads");
    let pad_nodes: Vec<usize> = grid.pads.iter().map(|p| p.node).collect();
    if pad_nodes.len() > MAX_PADS_FOR_AVERAGE {
        return resistance_distances(grid, &pad_nodes);
    }
    let mut acc = vec![0.0f64; grid.nodes.len()];
    let mut reachable = vec![0usize; grid.nodes.len()];
    for &pad in &pad_nodes {
        let d = resistance_distances(grid, &[pad]);
        for ((a, r), di) in acc.iter_mut().zip(reachable.iter_mut()).zip(&d) {
            if di.is_finite() {
                *a += di;
                *r += 1;
            }
        }
    }
    acc.iter()
        .zip(&reachable)
        .map(|(&a, &r)| if r > 0 { a / r as f64 } else { f64::INFINITY })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use irf_spice::parse;

    /// pad --0.5-- a --0.5-- b, plus a second pad at b's far side.
    fn chain() -> PowerGrid {
        let src = "\
V1 p 0 1.0
R1 p a 0.5
R2 a b 0.5
I1 b 0 1m
";
        PowerGrid::from_netlist(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn distances_accumulate_resistance() {
        let g = chain();
        let pad = g.pads[0].node;
        let d = resistance_distances(&g, &[pad]);
        // node order: p, a, b
        assert_eq!(d[pad], 0.0);
        assert!((d[1] - 0.5).abs() < 1e-12);
        assert!((d[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unreachable_nodes_are_infinite() {
        let src = "V1 p 0 1.0\nR1 p a 1.0\nR2 x y 1.0\nI1 a 0 1m\n";
        let g = PowerGrid::from_netlist(&parse(src).unwrap()).unwrap();
        let d = resistance_distances(&g, &[g.pads[0].node]);
        assert!(d.iter().filter(|v| !v.is_finite()).count() == 2);
    }

    #[test]
    fn average_over_two_pads() {
        let src = "\
V1 p 0 1.0
V2 q 0 1.0
R1 p a 1.0
R2 a q 3.0
I1 a 0 1m
";
        let g = PowerGrid::from_netlist(&parse(src).unwrap()).unwrap();
        let v = shortest_path_resistance_per_node(&g);
        // node a: 1.0 from p, 3.0 from q -> average 2.0.
        let a_idx = g
            .nodes
            .iter()
            .position(|n| n.name == "a")
            .expect("node a exists");
        assert!((v[a_idx] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn map_rasterizes_reachable_nodes() {
        let g = chain();
        let raster = Rasterizer::new(g.bounding_box(), 1, 1);
        let m = shortest_path_resistance_map(&g, &raster);
        // Mean of 0.0, 0.5, 1.0.
        assert!((f64::from(m.get(0, 0)) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn shortest_path_prefers_low_resistance_route() {
        // Two routes from pad to t: direct 5 ohm, detour 1+1 = 2 ohm.
        let src = "\
V1 p 0 1.0
R1 p t 5.0
R2 p m 1.0
R3 m t 1.0
I1 t 0 1m
";
        let g = PowerGrid::from_netlist(&parse(src).unwrap()).unwrap();
        let d = resistance_distances(&g, &[g.pads[0].node]);
        let t_idx = g.nodes.iter().position(|n| n.name == "t").unwrap();
        assert!((d[t_idx] - 2.0).abs() < 1e-12);
    }
}
