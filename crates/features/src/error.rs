//! Error type shared by the feature extractors.

/// Why a feature could not be extracted.
///
/// The pad-derived features (shortest-path resistance, effective
/// distance) are undefined on a grid without voltage sources; instead
/// of `assert!`ing, the extractors surface that as a value the
/// pipeline can propagate (`ir-fusion` maps it onto its own
/// `ModelError::NoPads`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FeatureError {
    /// The grid has no power pads (or the supplied source set is
    /// empty), so pad-relative features are undefined.
    NoPads,
}

impl std::fmt::Display for FeatureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeatureError::NoPads => {
                write!(
                    f,
                    "grid has no power pads; pad-relative features are undefined"
                )
            }
        }
    }
}

impl std::error::Error for FeatureError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_problem() {
        let message = FeatureError::NoPads.to_string();
        assert!(message.contains("no power pads"));
    }
}
