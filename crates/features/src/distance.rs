//! Effective distance to the voltage sources.

use irf_pg::{GridMap, PowerGrid, Rasterizer};

/// The paper's effective-distance map: for each pixel, the
/// "reciprocal of the sum of the reciprocals of Euclidean distances"
/// to every pad — a harmonic combination that is small near any pad
/// and grows in pad deserts.
///
/// Distances are measured in pixels; a pixel containing a pad gets
/// distance `0`.
///
/// # Panics
///
/// Panics if the grid has no pads.
#[must_use]
pub fn effective_distance_map(grid: &PowerGrid, raster: &Rasterizer) -> GridMap {
    assert!(!grid.pads.is_empty(), "effective distance needs pads");
    let pad_pixels: Vec<(usize, usize)> = grid
        .pads
        .iter()
        .map(|p| {
            let n = &grid.nodes[p.node];
            raster.pixel(n.x, n.y)
        })
        .collect();
    let (w, h) = (raster.width(), raster.height());
    let mut out = GridMap::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let mut inv_sum = 0.0f64;
            let mut on_pad = false;
            for &(px, py) in &pad_pixels {
                let dx = px as f64 - x as f64;
                let dy = py as f64 - y as f64;
                let d = (dx * dx + dy * dy).sqrt();
                if d == 0.0 {
                    on_pad = true;
                    break;
                }
                inv_sum += 1.0 / d;
            }
            let v = if on_pad { 0.0 } else { 1.0 / inv_sum };
            out.set(x, y, v as f32);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use irf_spice::parse;

    fn grid_with_corner_pad() -> PowerGrid {
        let src = "\
V1 n1_m4_0_0 0 1.0
R1 n1_m4_0_0 n1_m1_1000_1000 0.1
I1 n1_m1_1000_1000 0 1m
";
        PowerGrid::from_netlist(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn pad_pixel_has_zero_distance() {
        let g = grid_with_corner_pad();
        let raster = Rasterizer::new(g.bounding_box(), 8, 8);
        let m = effective_distance_map(&g, &raster);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn distance_grows_away_from_pad() {
        let g = grid_with_corner_pad();
        let raster = Rasterizer::new(g.bounding_box(), 8, 8);
        let m = effective_distance_map(&g, &raster);
        assert!(m.get(7, 7) > m.get(1, 1));
        assert!(m.get(1, 1) > 0.0);
    }

    #[test]
    fn two_pads_reduce_effective_distance() {
        let one = grid_with_corner_pad();
        let raster = Rasterizer::new(one.bounding_box(), 8, 8);
        let m1 = effective_distance_map(&one, &raster);
        let src = "\
V1 n1_m4_0_0 0 1.0
V2 n1_m4_1000_1000 0 1.0
R1 n1_m4_0_0 n1_m1_1000_1000 0.1
R2 n1_m4_1000_1000 n1_m1_1000_1000 0.1
I1 n1_m1_1000_1000 0 1m
";
        let two = PowerGrid::from_netlist(&parse(src).unwrap()).unwrap();
        let m2 = effective_distance_map(&two, &Rasterizer::new(two.bounding_box(), 8, 8));
        // With a second pad every non-pad pixel is effectively closer.
        assert!(m2.get(4, 4) < m1.get(4, 4));
    }

    #[test]
    fn harmonic_combination_value() {
        // One pad at pixel (0,0): value at (3,4) is exactly 5.
        let g = grid_with_corner_pad();
        let raster = Rasterizer::new((0, 0, 8, 8), 9, 9);
        let m = effective_distance_map(&g, &raster);
        assert!((m.get(3, 4) - 5.0).abs() < 1e-6);
    }
}
