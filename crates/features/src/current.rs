//! Per-layer current maps.
//!
//! The paper allocates the tile current "proportionally based on the
//! contribution from each layer, which is tied to resistance": a layer
//! that offers more conductance in a tile carries more of that tile's
//! load current. We implement exactly that split — each load's current
//! is distributed over layers in proportion to the layer's share of
//! segment conductance inside the load's tile.

use irf_pg::{GridMap, PowerGrid, Rasterizer};
use std::collections::HashMap;

/// The total current map over all layers (the classic IREDGe-style
/// current image): load currents summed per tile.
#[must_use]
pub fn total_current_map(grid: &PowerGrid, raster: &Rasterizer) -> GridMap {
    raster.splat_sum(grid.loads.iter().map(|l| {
        let n = &grid.nodes[l.node];
        (n.x, n.y, l.amps)
    }))
}

/// Per-layer current maps (ascending layer order), allocated by each
/// layer's conductance share inside the tile. Layers with no segments
/// in a tile carry none of that tile's current; if no layer has
/// conductance in the tile, the bottom layer takes it all.
#[must_use]
pub fn layer_current_maps(grid: &PowerGrid, raster: &Rasterizer) -> Vec<(u32, GridMap)> {
    let layers = grid.layers();
    let (w, h) = (raster.width(), raster.height());
    // Conductance each layer contributes to each tile: half of every
    // segment's conductance is credited to each endpoint's tile.
    let mut layer_index: HashMap<u32, usize> = HashMap::new();
    for (i, &l) in layers.iter().enumerate() {
        layer_index.insert(l, i);
    }
    let mut share = vec![vec![0f64; w * h]; layers.len()];
    for s in &grid.segments {
        let g = s.conductance() / 2.0;
        for &end in &[s.a, s.b] {
            let n = &grid.nodes[end];
            let (px, py) = raster.pixel(n.x, n.y);
            share[layer_index[&n.layer]][py * w + px] += g;
        }
    }
    let mut totals = vec![0f64; w * h];
    for layer_share in &share {
        for (t, s) in totals.iter_mut().zip(layer_share) {
            *t += s;
        }
    }
    // Distribute each load across layers by conductance share.
    let mut maps: Vec<GridMap> = (0..layers.len()).map(|_| GridMap::new(w, h)).collect();
    for l in &grid.loads {
        let n = &grid.nodes[l.node];
        let (px, py) = raster.pixel(n.x, n.y);
        let idx = py * w + px;
        if totals[idx] > 0.0 {
            for (li, layer_share) in share.iter().enumerate() {
                let frac = layer_share[idx] / totals[idx];
                maps[li].add(px, py, (l.amps * frac) as f32);
            }
        } else {
            maps[0].add(px, py, l.amps as f32);
        }
    }
    layers.into_iter().zip(maps).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use irf_spice::parse;

    fn grid() -> PowerGrid {
        let src = "\
V1 n1_m4_0_0 0 1.0
R1 n1_m4_0_0 n1_m1_0_0 0.1
R2 n1_m1_0_0 n1_m1_1000_0 0.5
R3 n1_m4_0_0 n1_m4_1000_0 0.2
I1 n1_m1_1000_0 0 2m
";
        PowerGrid::from_netlist(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn total_map_sums_loads() {
        let g = grid();
        let raster = Rasterizer::new(g.bounding_box(), 1, 1);
        let m = total_current_map(&g, &raster);
        assert!((m.get(0, 0) - 2e-3).abs() < 1e-9);
    }

    #[test]
    fn layer_maps_conserve_total_current() {
        let g = grid();
        let raster = Rasterizer::new(g.bounding_box(), 2, 2);
        let maps = layer_current_maps(&g, &raster);
        let total: f32 = maps.iter().flat_map(|(_, m)| m.data().iter()).sum();
        assert!((f64::from(total) - 2e-3).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn layer_allocation_follows_conductance() {
        let g = grid();
        let raster = Rasterizer::new(g.bounding_box(), 1, 1);
        let maps = layer_current_maps(&g, &raster);
        // Layer 1 conductance in the single tile: R1/2 (10/2=5) + R2 (2) = 7.
        // Layer 4: R1/2 (5) + R3 (5) = 10. Shares: 7/17 and 10/17.
        let m1: f32 = maps[0].1.get(0, 0);
        let m4: f32 = maps[1].1.get(0, 0);
        assert!((f64::from(m1) - 2e-3 * 7.0 / 17.0).abs() < 1e-8, "m1 {m1}");
        assert!((f64::from(m4) - 2e-3 * 10.0 / 17.0).abs() < 1e-8, "m4 {m4}");
    }

    #[test]
    fn no_conductance_tile_falls_back_to_bottom_layer() {
        // A load on an isolated node (tile without segments).
        let src = "\
V1 n1_m4_0_0 0 1.0
R1 n1_m4_0_0 n1_m1_0_0 0.1
I1 n1_m1_9000_9000 0 1m
R2 n1_m4_0_0 n1_m1_9000_9000 1.0
";
        // Place the load far away so it gets its own tile; R2 still
        // credits half its conductance there, so instead isolate by
        // checking conservation only.
        let g = PowerGrid::from_netlist(&parse(src).unwrap()).unwrap();
        let raster = Rasterizer::new(g.bounding_box(), 4, 4);
        let maps = layer_current_maps(&g, &raster);
        let total: f32 = maps.iter().flat_map(|(_, m)| m.data().iter()).sum();
        assert!((f64::from(total) - 1e-3).abs() < 1e-9);
    }
}
