//! Per-layer rasterization of the (rough) numerical solution.

use irf_pg::{GridMap, PowerGrid, Rasterizer};

/// Rasterizes a per-node IR-drop vector into one map per metal layer
/// (ascending layer order) — the paper's *hierarchical numerical
/// features*. Pixels with no node on that layer stay zero.
///
/// # Panics
///
/// Panics if `drops.len() != grid.nodes.len()`.
#[must_use]
pub fn layer_solution_maps(
    grid: &PowerGrid,
    drops: &[f64],
    raster: &Rasterizer,
) -> Vec<(u32, GridMap)> {
    assert_eq!(
        drops.len(),
        grid.nodes.len(),
        "solution length must match node count"
    );
    grid.layers()
        .into_iter()
        .map(|layer| {
            let samples = grid
                .nodes
                .iter()
                .zip(drops)
                .filter(|(n, _)| n.layer == layer)
                .map(|(n, &d)| (n.x, n.y, d));
            (layer, raster.splat_mean(samples))
        })
        .collect()
}

/// Rasterizes the solution over *all* layers into one map (used for
/// the golden label and for baselines that ignore layering). Tiles
/// take the worst (maximum) drop among their nodes.
///
/// # Panics
///
/// Panics if `drops.len() != grid.nodes.len()`.
#[must_use]
pub fn full_solution_map(grid: &PowerGrid, drops: &[f64], raster: &Rasterizer) -> GridMap {
    assert_eq!(
        drops.len(),
        grid.nodes.len(),
        "solution length must match node count"
    );
    raster.splat_max(grid.nodes.iter().zip(drops).map(|(n, &d)| (n.x, n.y, d)))
}

/// Rasterizes the solution restricted to the bottom (cell) layer —
/// the prediction target of the paper ("focusing on the IR drop of
/// the cell at the bottom layer").
///
/// # Panics
///
/// Panics if `drops.len() != grid.nodes.len()`.
#[must_use]
pub fn bottom_layer_solution_map(grid: &PowerGrid, drops: &[f64], raster: &Rasterizer) -> GridMap {
    assert_eq!(
        drops.len(),
        grid.nodes.len(),
        "solution length must match node count"
    );
    let bottom = grid.layers().first().copied().unwrap_or(1);
    raster.splat_max(
        grid.nodes
            .iter()
            .zip(drops)
            .filter(|(n, _)| n.layer == bottom)
            .map(|(n, &d)| (n.x, n.y, d)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use irf_spice::parse;

    fn two_layer_grid() -> PowerGrid {
        let src = "\
V1 n1_m4_0_0 0 1.0
R1 n1_m4_0_0 n1_m1_0_0 0.1
R2 n1_m1_0_0 n1_m1_1000_0 0.5
R3 n1_m4_0_0 n1_m4_1000_0 0.2
R4 n1_m4_1000_0 n1_m1_1000_0 0.1
I1 n1_m1_1000_0 0 1m
";
        PowerGrid::from_netlist(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn one_map_per_layer() {
        let g = two_layer_grid();
        let raster = Rasterizer::new(g.bounding_box(), 4, 4);
        let drops = vec![0.0, 0.001, 0.002, 0.0005];
        let maps = layer_solution_maps(&g, &drops, &raster);
        assert_eq!(maps.len(), 2);
        assert_eq!(maps[0].0, 1);
        assert_eq!(maps[1].0, 4);
        for (_, m) in &maps {
            assert_eq!(m.width(), 4);
        }
    }

    #[test]
    fn layer_maps_separate_values() {
        let g = two_layer_grid();
        let raster = Rasterizer::new(g.bounding_box(), 2, 2);
        // nodes order: m4_0_0(pad), m1_0_0, m1_1000_0, m4_1000_0
        let drops = vec![0.0, 0.010, 0.020, 0.005];
        let maps = layer_solution_maps(&g, &drops, &raster);
        let m1 = &maps[0].1;
        let m4 = &maps[1].1;
        // Bottom-layer left tile holds node m1_0_0 = 0.010.
        assert!((m1.get(0, 0) - 0.010).abs() < 1e-6);
        // Top-layer left tile holds the pad, drop 0.
        assert_eq!(m4.get(0, 0), 0.0);
        assert!((m4.get(1, 0) - 0.005).abs() < 1e-6);
    }

    #[test]
    fn full_map_takes_worst_per_tile() {
        let g = two_layer_grid();
        let raster = Rasterizer::new(g.bounding_box(), 1, 1);
        let drops = vec![0.0, 0.010, 0.020, 0.005];
        let m = full_solution_map(&g, &drops, &raster);
        assert!((m.get(0, 0) - 0.020).abs() < 1e-6);
    }

    #[test]
    fn bottom_map_ignores_upper_layers() {
        let g = two_layer_grid();
        let raster = Rasterizer::new(g.bounding_box(), 1, 1);
        // Give the top layer a larger fake drop; bottom map must not see it.
        let drops = vec![0.9, 0.010, 0.020, 0.9];
        let m = bottom_layer_solution_map(&g, &drops, &raster);
        assert!((m.get(0, 0) - 0.020).abs() < 1e-6);
    }
}
