//! The assembled per-design feature stack.

use crate::current::{layer_current_maps, total_current_map};
use crate::density::pdn_density_map;
use crate::distance::effective_distance_map;
use crate::error::FeatureError;
use crate::normalize::{normalize, Normalization};
use crate::resistance::resistance_map;
use crate::shortest_path;
use crate::solution::layer_solution_maps;
use irf_pg::{GridMap, PowerGrid, Rasterizer};

/// Fixed scale applied to voltage-valued maps (the rough-solution
/// channels): volts x 100, so millivolt-scale drops land near 0.1-1.
/// Training labels use the same constant
/// (see the `ir-fusion` crate), which is what lets the model exploit
/// the numerical solution as a near-identity starting point.
pub const VOLT_SCALE: f32 = 100.0;

/// Fixed scale applied to current-valued maps (amperes x 100).
pub const CURRENT_SCALE: f32 = 100.0;

/// Fixed scale applied to resistance-valued path maps (ohms x 0.1).
pub const PATH_RESISTANCE_SCALE: f32 = 0.1;

/// Configuration of the feature extraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureConfig {
    /// Output map width in pixels (the paper uses 256; the reproduction
    /// defaults lower for CPU training).
    pub width: usize,
    /// Output map height in pixels.
    pub height: usize,
    /// Include per-layer rough-solution maps (the *numerical* half of
    /// the fusion). Turning this off is the "w/o Num. Solu." ablation.
    pub numerical: bool,
    /// Include per-layer current maps (vs a single total map).
    /// Turning this off is the "w/o hierarchical" ablation: only the
    /// flat IREDGe-style inputs remain.
    pub hierarchical: bool,
    /// Normalization applied to the *structural shape* maps (density,
    /// resistance mass). Physically valued maps (currents, solutions,
    /// distances, path resistance) always use fixed scales so their
    /// amplitude survives across designs.
    pub normalization: Normalization,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            width: 64,
            height: 64,
            numerical: true,
            hierarchical: true,
            normalization: Normalization::MaxAbs,
        }
    }
}

/// A named stack of equally sized feature maps.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeatureStack {
    maps: Vec<GridMap>,
    names: Vec<String>,
}

impl FeatureStack {
    /// Number of channels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.maps.len()
    }

    /// `true` when the stack holds no maps.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.maps.is_empty()
    }

    /// The maps in channel order.
    #[must_use]
    pub fn maps(&self) -> &[GridMap] {
        &self.maps
    }

    /// Channel names, parallel to [`FeatureStack::maps`].
    #[must_use]
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Appends a named map.
    ///
    /// # Panics
    ///
    /// Panics if the map size differs from maps already present.
    pub fn push(&mut self, name: impl Into<String>, map: GridMap) {
        if let Some(first) = self.maps.first() {
            assert_eq!(
                (first.width(), first.height()),
                (map.width(), map.height()),
                "feature stack maps must share one size"
            );
        }
        self.maps.push(map);
        self.names.push(name.into());
    }

    /// Flattens into an NCHW buffer `(1, C, H, W)` for the models.
    /// Returns `(channels, height, width, data)`.
    #[must_use]
    pub fn to_nchw(&self) -> (usize, usize, usize, Vec<f32>) {
        let (h, w) = self
            .maps
            .first()
            .map_or((0, 0), |m| (m.height(), m.width()));
        let mut data = Vec::with_capacity(self.maps.len() * h * w);
        for m in &self.maps {
            data.extend_from_slice(m.data());
        }
        (self.maps.len(), h, w, data)
    }

    /// Rotates every map by `quarters x 90°` clockwise (augmentation).
    /// Channels are rotated concurrently; output order is preserved.
    #[must_use]
    pub fn rotated(&self, quarters: u32) -> FeatureStack {
        let tasks: Vec<_> = self
            .maps
            .iter()
            .map(|m| move || m.rotated(quarters))
            .collect();
        FeatureStack {
            maps: irf_runtime::par_map(tasks),
            names: self.names.clone(),
        }
    }
}

/// The current-independent feature channels of one design, normalized
/// and ready for assembly: everything determined by the grid topology,
/// geometry, and pad set alone — never by the load currents.
///
/// This is the `FeatureStack` stage's structural half in the
/// incremental pipeline: when only the current vector of a design
/// changes, these maps (including the costly per-pad shortest-path
/// Dijkstra) are reused verbatim and only the current and solution
/// channels are recomputed.
#[derive(Debug, Clone, PartialEq)]
pub struct StructuralMaps {
    /// The normalized `distance/effective` channel.
    pub distance: GridMap,
    /// The normalized `density/pdn` channel.
    pub density: GridMap,
    /// The normalized `resistance/map` channel.
    pub resistance: GridMap,
    /// The normalized `resistance/shortest_path` channel.
    pub shortest_path: GridMap,
}

impl StructuralMaps {
    /// Reassembles the legacy combined artifact from the two split
    /// halves (cheap map clones).
    #[must_use]
    pub fn from_parts(geometry: &GeometryMaps, resistance: &ResistanceMaps) -> Self {
        StructuralMaps {
            distance: geometry.distance.clone(),
            density: geometry.density.clone(),
            resistance: resistance.resistance.clone(),
            shortest_path: resistance.shortest_path.clone(),
        }
    }
}

/// The *geometry-only* feature channels: determined by node positions,
/// layers, segment endpoints, and the pad set — never by segment
/// resistances or load currents.
///
/// This is the half of the old [`StructuralMaps`] artifact that a
/// strap/via resistance edit can reuse verbatim: a topology delta that
/// only rescales `ohms` leaves these maps untouched.
#[derive(Debug, Clone, PartialEq)]
pub struct GeometryMaps {
    /// The normalized `distance/effective` channel.
    pub distance: GridMap,
    /// The normalized `density/pdn` channel.
    pub density: GridMap,
}

/// The *resistance-dependent* structural channels: functions of the
/// segment resistances (but still never of the load currents). A
/// strap/via edit invalidates these while [`GeometryMaps`] stays warm;
/// a current-only edit reuses both halves.
#[derive(Debug, Clone, PartialEq)]
pub struct ResistanceMaps {
    /// The normalized `resistance/map` channel.
    pub resistance: GridMap,
    /// The normalized `resistance/shortest_path` channel (the costly
    /// per-pad Dijkstra).
    pub shortest_path: GridMap,
}

/// Extracts the full hierarchical numerical-structural stack for one
/// design.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FeatureExtractor {
    /// Extraction settings.
    pub config: FeatureConfig,
}

impl FeatureExtractor {
    /// Creates an extractor.
    #[must_use]
    pub fn new(config: FeatureConfig) -> Self {
        FeatureExtractor { config }
    }

    /// Builds the rasterizer this extractor uses for `grid`.
    #[must_use]
    pub fn rasterizer(&self, grid: &PowerGrid) -> Rasterizer {
        Rasterizer::new(grid.bounding_box(), self.config.width, self.config.height)
    }

    /// Extracts the feature stack.
    ///
    /// `rough_drop` is the per-node IR-drop estimate from the truncated
    /// AMG-PCG solve (pass all-zeros to emulate the "w/o Num. Solu."
    /// ablation while keeping the channel count fixed).
    ///
    /// The shortest-path resistance values — the costliest feature —
    /// are computed first at top level, so their per-pad Dijkstra
    /// passes fan out across the whole pool; the remaining map groups
    /// then run as one task each (nested parallel calls inside a task
    /// execute inline).
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::NoPads`] when the grid has no pads (the
    /// pad-relative features are undefined).
    ///
    /// # Panics
    ///
    /// Panics if `rough_drop.len() != grid.nodes.len()`.
    pub fn extract(
        &self,
        grid: &PowerGrid,
        rough_drop: &[f64],
    ) -> Result<FeatureStack, FeatureError> {
        let structural = self.structural(grid)?;
        self.extract_with_structural(grid, rough_drop, &structural)
    }

    /// Computes only the current-independent channels — the structural
    /// half of the stack, including the costly per-pad shortest-path
    /// Dijkstra. The result depends on the grid topology, geometry,
    /// and pad set, but never on the load currents, so the incremental
    /// pipeline caches it across current-only edits.
    ///
    /// The shortest-path resistance values — the costliest feature —
    /// are computed first at top level, so their per-pad Dijkstra
    /// passes fan out across the whole pool; the remaining maps then
    /// run as one task each (nested parallel calls inside a task
    /// execute inline).
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::NoPads`] when the grid has no pads (the
    /// pad-relative features are undefined).
    pub fn structural(&self, grid: &PowerGrid) -> Result<StructuralMaps, FeatureError> {
        let geometry = self.geometry(grid)?;
        let resistance = self.resistance_maps(grid)?;
        Ok(StructuralMaps::from_parts(&geometry, &resistance))
    }

    /// Computes only the geometry-dependent channels (effective
    /// distance, PDN density). These survive both current edits *and*
    /// strap/via resistance edits, so the incremental pipeline keys
    /// them on the geometry fingerprint alone.
    ///
    /// Each map's values are bitwise identical to the corresponding
    /// channel of [`FeatureExtractor::structural`]: every individual
    /// map is produced by the same serial code regardless of which
    /// grouping computed it.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::NoPads`] when the grid has no pads (the
    /// distance channel is pad-relative).
    pub fn geometry(&self, grid: &PowerGrid) -> Result<GeometryMaps, FeatureError> {
        if grid.pads.is_empty() {
            return Err(FeatureError::NoPads);
        }
        let raster = self.rasterizer(grid);
        let norm = self.config.normalization;
        let dist = Normalization::Fixed(1.0 / self.config.width.max(self.config.height) as f32);
        let r = &raster;
        let tasks: Vec<Box<dyn FnOnce() -> GridMap + Send>> = vec![
            Box::new(move || {
                let _s = irf_trace::span("feature/effective_distance");
                normalize(&effective_distance_map(grid, r), dist)
            }),
            Box::new(move || {
                let _s = irf_trace::span("feature/pdn_density");
                normalize(&pdn_density_map(grid, r), norm)
            }),
        ];
        let mut maps = irf_runtime::par_map(tasks).into_iter();
        Ok(GeometryMaps {
            distance: maps.next().expect("distance map"),
            density: maps.next().expect("density map"),
        })
    }

    /// Computes only the resistance-dependent structural channels
    /// (resistance mass, per-pad shortest-path resistance). These are
    /// recomputed on a strap/via edit while [`GeometryMaps`] stays
    /// warm.
    ///
    /// The shortest-path resistance values — the costliest feature —
    /// are computed first at top level, so their per-pad Dijkstra
    /// passes fan out across the whole pool; the remaining maps then
    /// run as one task each (nested parallel calls inside a task
    /// execute inline).
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::NoPads`] when the grid has no pads (the
    /// pad-relative features are undefined).
    pub fn resistance_maps(&self, grid: &PowerGrid) -> Result<ResistanceMaps, FeatureError> {
        if grid.pads.is_empty() {
            return Err(FeatureError::NoPads);
        }
        let raster = self.rasterizer(grid);
        let sp_values = {
            let mut sp_span = irf_trace::span("feature/shortest_path_resistance");
            if sp_span.is_recording() {
                sp_span.attr("pads", grid.pads.len());
            }
            shortest_path::shortest_path_resistance_per_node(grid)?
        };
        let norm = self.config.normalization;
        let path_r = Normalization::Fixed(PATH_RESISTANCE_SCALE);
        let r = &raster;
        let tasks: Vec<Box<dyn FnOnce() -> GridMap + Send>> = vec![
            Box::new(move || {
                let _s = irf_trace::span("feature/resistance_map");
                normalize(&resistance_map(grid, r), norm)
            }),
            Box::new({
                let sp_values = &sp_values;
                move || {
                    let _s = irf_trace::span("feature/shortest_path_rasterize");
                    normalize(
                        &shortest_path::rasterize_per_node(grid, sp_values, r),
                        path_r,
                    )
                }
            }),
        ];
        let mut maps = irf_runtime::par_map(tasks).into_iter();
        Ok(ResistanceMaps {
            resistance: maps.next().expect("resistance map"),
            shortest_path: maps.next().expect("shortest-path map"),
        })
    }

    /// Assembles the full stack from precomputed structural channels,
    /// recomputing only the current-dependent channels (total/per-layer
    /// currents and per-layer rough-solution maps). Channel order and
    /// values are bitwise identical to [`FeatureExtractor::extract`] —
    /// that method routes through this one.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::NoPads`] when the grid has no pads.
    ///
    /// # Panics
    ///
    /// Panics if `rough_drop.len() != grid.nodes.len()` or the
    /// structural maps' size disagrees with the configured raster.
    pub fn extract_with_structural(
        &self,
        grid: &PowerGrid,
        rough_drop: &[f64],
        structural: &StructuralMaps,
    ) -> Result<FeatureStack, FeatureError> {
        self.assemble_stack(
            grid,
            rough_drop,
            &structural.distance,
            &structural.density,
            &structural.resistance,
            &structural.shortest_path,
        )
    }

    /// Assembles the full stack from the split structural halves —
    /// the stage-graph entry point where [`GeometryMaps`] and
    /// [`ResistanceMaps`] are cached under *different* fingerprints.
    /// Channel order and values are bitwise identical to
    /// [`FeatureExtractor::extract`].
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::NoPads`] when the grid has no pads.
    ///
    /// # Panics
    ///
    /// Panics if `rough_drop.len() != grid.nodes.len()` or the map
    /// sizes disagree with the configured raster.
    pub fn extract_with_parts(
        &self,
        grid: &PowerGrid,
        rough_drop: &[f64],
        geometry: &GeometryMaps,
        resistance: &ResistanceMaps,
    ) -> Result<FeatureStack, FeatureError> {
        self.assemble_stack(
            grid,
            rough_drop,
            &geometry.distance,
            &geometry.density,
            &resistance.resistance,
            &resistance.shortest_path,
        )
    }

    /// The shared assembly path behind [`extract_with_structural`] and
    /// [`extract_with_parts`]: recomputes only the current-dependent
    /// channels and splices the precomputed structural maps into the
    /// fixed channel order.
    ///
    /// [`extract_with_structural`]: FeatureExtractor::extract_with_structural
    /// [`extract_with_parts`]: FeatureExtractor::extract_with_parts
    fn assemble_stack(
        &self,
        grid: &PowerGrid,
        rough_drop: &[f64],
        distance: &GridMap,
        density: &GridMap,
        resistance: &GridMap,
        shortest_path: &GridMap,
    ) -> Result<FeatureStack, FeatureError> {
        if grid.pads.is_empty() {
            return Err(FeatureError::NoPads);
        }
        let mut span = irf_trace::span("feature_stack");
        let raster = self.rasterizer(grid);
        let amps = Normalization::Fixed(CURRENT_SCALE);
        let volts = Normalization::Fixed(VOLT_SCALE);
        // Every map group is independent of the others, so they are
        // computed concurrently; channel order is fixed by how the
        // results are assembled below, not by completion order.
        enum Group {
            One(&'static str, GridMap),
            Layers(&'static str, Vec<(u32, GridMap)>),
        }
        let r = &raster;
        let mut tasks: Vec<Box<dyn FnOnce() -> Group + Send>> = vec![Box::new(move || {
            let _s = irf_trace::span("feature/current_total");
            Group::One(
                "current/total",
                normalize(&total_current_map(grid, r), amps),
            )
        })];
        if self.config.hierarchical {
            tasks.push(Box::new(move || {
                let _s = irf_trace::span("feature/layer_currents");
                Group::Layers(
                    "current",
                    layer_current_maps(grid, r)
                        .into_iter()
                        .map(|(layer, m)| (layer, normalize(&m, amps)))
                        .collect(),
                )
            }));
        }
        if self.config.numerical {
            tasks.push(Box::new(move || {
                let _s = irf_trace::span("feature/layer_solutions");
                Group::Layers(
                    "solution",
                    layer_solution_maps(grid, rough_drop, r)
                        .into_iter()
                        .map(|(layer, m)| (layer, normalize(&m, volts)))
                        .collect(),
                )
            }));
        }
        let mut groups = irf_runtime::par_map(tasks).into_iter();
        let mut stack = FeatureStack::default();
        let total = match groups.next().expect("current/total group") {
            Group::One(name, m) => (name, m),
            Group::Layers(..) => unreachable!("first group is current/total"),
        };
        stack.push(total.0, total.1);
        stack.push("distance/effective", distance.clone());
        stack.push("density/pdn", density.clone());
        stack.push("resistance/map", resistance.clone());
        stack.push("resistance/shortest_path", shortest_path.clone());
        for group in groups {
            match group {
                Group::One(name, m) => stack.push(name, m),
                Group::Layers(prefix, maps) => {
                    for (layer, m) in maps {
                        stack.push(format!("{prefix}/m{layer}"), m);
                    }
                }
            }
        }
        if span.is_recording() {
            span.attr("channels", stack.len());
            span.attr("width", self.config.width);
            span.attr("height", self.config.height);
        }
        Ok(stack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irf_spice::parse;

    fn grid() -> PowerGrid {
        let src = "\
V1 n1_m4_0_0 0 1.0
R1 n1_m4_0_0 n1_m1_0_0 0.1
R2 n1_m1_0_0 n1_m1_1000_0 0.5
R3 n1_m4_0_0 n1_m4_1000_1000 0.2
R4 n1_m4_1000_1000 n1_m1_1000_0 0.3
I1 n1_m1_1000_0 0 1m
";
        PowerGrid::from_netlist(&parse(src).unwrap()).unwrap()
    }

    fn config() -> FeatureConfig {
        FeatureConfig {
            width: 8,
            height: 8,
            ..FeatureConfig::default()
        }
    }

    #[test]
    fn full_stack_has_expected_channels() {
        let g = grid();
        let ex = FeatureExtractor::new(config());
        let drops = vec![0.0; g.nodes.len()];
        let stack = ex.extract(&g, &drops).unwrap();
        // 5 shared + 2 layer-current + 2 layer-solution.
        assert_eq!(stack.len(), 9);
        assert!(stack.names().iter().any(|n| n == "solution/m4"));
        assert!(stack.names().iter().any(|n| n == "current/m1"));
    }

    #[test]
    fn ablations_drop_channel_groups() {
        let g = grid();
        let drops = vec![0.0; g.nodes.len()];
        let no_num = FeatureExtractor::new(FeatureConfig {
            numerical: false,
            ..config()
        })
        .extract(&g, &drops)
        .unwrap();
        assert_eq!(no_num.len(), 7);
        let flat = FeatureExtractor::new(FeatureConfig {
            numerical: false,
            hierarchical: false,
            ..config()
        })
        .extract(&g, &drops)
        .unwrap();
        assert_eq!(flat.len(), 5);
    }

    #[test]
    fn to_nchw_concatenates_channels() {
        let g = grid();
        let ex = FeatureExtractor::new(config());
        let stack = ex.extract(&g, &vec![0.0; g.nodes.len()]).unwrap();
        let (c, h, w, data) = stack.to_nchw();
        assert_eq!((c, h, w), (9, 8, 8));
        assert_eq!(data.len(), 9 * 64);
        assert_eq!(&data[..64], stack.maps()[0].data());
    }

    #[test]
    fn maps_are_bounded_after_scaling() {
        let g = grid();
        let ex = FeatureExtractor::new(config());
        let stack = ex.extract(&g, &vec![0.001; g.nodes.len()]).unwrap();
        for (m, name) in stack.maps().iter().zip(stack.names()) {
            assert!(m.max().is_finite(), "{name} not finite");
            assert!(m.max() < 100.0, "{name} badly scaled: {}", m.max());
        }
        // Solution channels keep their absolute scale: 1 mV -> 0.1.
        let sol = stack
            .names()
            .iter()
            .position(|n| n.starts_with("solution/"))
            .expect("solution channel present");
        assert!((stack.maps()[sol].max() - 0.1).abs() < 1e-5);
    }

    #[test]
    fn rotation_rotates_every_map() {
        let g = grid();
        let ex = FeatureExtractor::new(config());
        let stack = ex.extract(&g, &vec![0.0; g.nodes.len()]).unwrap();
        let rot = stack.rotated(2);
        assert_eq!(rot.len(), stack.len());
        let m0 = &stack.maps()[0];
        let r0 = &rot.maps()[0];
        assert_eq!(m0.get(0, 0), r0.get(7, 7));
    }

    #[test]
    fn structural_reuse_is_bitwise_identical() {
        let g = grid();
        let ex = FeatureExtractor::new(config());
        let drops = vec![0.0005; g.nodes.len()];
        let cold = ex.extract(&g, &drops).unwrap();
        let structural = ex.structural(&g).unwrap();
        let warm = ex.extract_with_structural(&g, &drops, &structural).unwrap();
        assert_eq!(cold, warm);
        // The structural maps never depend on the loads: recomputing
        // them after a current edit yields the exact same channels.
        let mut edited = g.clone();
        for l in &mut edited.loads {
            l.amps *= 3.0;
        }
        assert_eq!(ex.structural(&edited).unwrap(), structural);
    }

    #[test]
    fn split_halves_match_the_combined_structural_maps_bitwise() {
        let g = grid();
        let ex = FeatureExtractor::new(config());
        let drops = vec![0.0005; g.nodes.len()];
        let combined = ex.structural(&g).unwrap();
        let geometry = ex.geometry(&g).unwrap();
        let resistance = ex.resistance_maps(&g).unwrap();
        assert_eq!(geometry.distance, combined.distance);
        assert_eq!(geometry.density, combined.density);
        assert_eq!(resistance.resistance, combined.resistance);
        assert_eq!(resistance.shortest_path, combined.shortest_path);
        assert_eq!(StructuralMaps::from_parts(&geometry, &resistance), combined);

        // Parts-based assembly equals the cold extract bit for bit.
        let cold = ex.extract(&g, &drops).unwrap();
        let parts = ex
            .extract_with_parts(&g, &drops, &geometry, &resistance)
            .unwrap();
        assert_eq!(cold, parts);

        // A pure resistance edit leaves the geometry half untouched
        // but changes the resistance half.
        let mut edited = g.clone();
        edited.segments[1].ohms *= 2.0;
        assert_eq!(ex.geometry(&edited).unwrap(), geometry);
        assert_ne!(ex.resistance_maps(&edited).unwrap(), resistance);
    }

    #[test]
    #[should_panic(expected = "share one size")]
    fn mismatched_map_sizes_panic() {
        let mut s = FeatureStack::default();
        s.push("a", GridMap::new(4, 4));
        s.push("b", GridMap::new(8, 8));
    }
}
