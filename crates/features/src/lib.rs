//! Hierarchical numerical-structural feature extraction (paper
//! Section III-C).
//!
//! IR-Fusion feeds its model a stack of per-design images:
//!
//! - **hierarchical numerical features** — the rough AMG-PCG solution
//!   rasterized *per metal layer* ([`solution::layer_solution_maps`]);
//! - **hierarchical structure features** — per-layer current maps
//!   ([`current::layer_current_maps`]), the effective distance to the
//!   pads ([`distance::effective_distance_map`]), the PDN density map
//!   ([`density::pdn_density_map`]), the resistance map
//!   ([`resistance::resistance_map`]) and the shortest-path resistance
//!   map ([`shortest_path::shortest_path_resistance_map`]).
//!
//! [`stack::FeatureExtractor`] bundles all of them into a named
//! [`stack::FeatureStack`] ready for the model zoo.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod current;
pub mod density;
pub mod distance;
pub mod error;
pub mod normalize;
pub mod resistance;
pub mod shortest_path;
pub mod solution;
pub mod stack;

pub use error::FeatureError;
pub use stack::{
    FeatureConfig, FeatureExtractor, FeatureStack, GeometryMaps, ResistanceMaps, StructuralMaps,
};
