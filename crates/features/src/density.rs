//! PDN density map.

use irf_pg::{GridMap, PowerGrid, Rasterizer};

/// The PDN density map: how much power-grid structure each tile
/// contains. The paper derives it "from the average PDN pitch within
/// each grid"; density is the natural reciprocal formulation — we
/// count grid nodes per tile (every stripe crossing and via landing
/// contributes a node), normalized by the densest tile so the map is
/// in `[0, 1]`.
#[must_use]
pub fn pdn_density_map(grid: &PowerGrid, raster: &Rasterizer) -> GridMap {
    let counts = raster.splat_sum(grid.nodes.iter().map(|n| (n.x, n.y, 1.0)));
    counts.normalized()
}

/// Per-layer PDN density maps (ascending layer order), each
/// normalized independently.
#[must_use]
pub fn layer_density_maps(grid: &PowerGrid, raster: &Rasterizer) -> Vec<(u32, GridMap)> {
    grid.layers()
        .into_iter()
        .map(|layer| {
            let m = raster.splat_sum(
                grid.nodes
                    .iter()
                    .filter(|n| n.layer == layer)
                    .map(|n| (n.x, n.y, 1.0)),
            );
            (layer, m.normalized())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use irf_spice::parse;

    fn grid() -> PowerGrid {
        let src = "\
V1 n1_m4_0_0 0 1.0
R1 n1_m4_0_0 n1_m1_0_0 0.1
R2 n1_m1_0_0 n1_m1_100_0 0.5
R3 n1_m1_100_0 n1_m1_200_0 0.5
R4 n1_m1_200_0 n1_m1_1000_0 0.5
I1 n1_m1_1000_0 0 1m
";
        PowerGrid::from_netlist(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn density_is_normalized() {
        let g = grid();
        let raster = Rasterizer::new(g.bounding_box(), 4, 1);
        let m = pdn_density_map(&g, &raster);
        assert!((m.max() - 1.0).abs() < 1e-6);
        assert!(m.min() >= 0.0);
    }

    #[test]
    fn denser_tiles_score_higher() {
        let g = grid();
        let raster = Rasterizer::new(g.bounding_box(), 4, 1);
        let m = pdn_density_map(&g, &raster);
        // Tile 0 holds 4 nodes (0, 100, 200 + the pad node), tile 3 one.
        assert!(m.get(0, 0) > m.get(3, 0));
    }

    #[test]
    fn layer_maps_split_by_layer() {
        let g = grid();
        let raster = Rasterizer::new(g.bounding_box(), 4, 1);
        let maps = layer_density_maps(&g, &raster);
        assert_eq!(maps.len(), 2);
        let (l1, m1) = &maps[0];
        let (l4, m4) = &maps[1];
        assert_eq!((*l1, *l4), (1, 4));
        // Layer 4 has only the pad at x = 0.
        assert!((m4.get(0, 0) - 1.0).abs() < 1e-6);
        assert_eq!(m4.get(3, 0), 0.0);
        assert!(m1.get(0, 0) > 0.0);
    }
}
