//! Resistance map: local resistive mass per tile.

use irf_pg::{GridMap, PowerGrid, Rasterizer};

/// The paper's resistance map "distributes the resistance of each
/// resistor across overlapping grids": half of every segment's
/// resistance is credited to the tile of each endpoint.
#[must_use]
pub fn resistance_map(grid: &PowerGrid, raster: &Rasterizer) -> GridMap {
    raster.splat_sum(grid.segments.iter().flat_map(|s| {
        let half = s.ohms / 2.0;
        let na = &grid.nodes[s.a];
        let nb = &grid.nodes[s.b];
        [(na.x, na.y, half), (nb.x, nb.y, half)]
    }))
}

/// Per-layer resistance maps (ascending layer order). A segment
/// contributes to the layer of each endpoint (vias therefore bridge
/// two layers with half their resistance on each).
#[must_use]
pub fn layer_resistance_maps(grid: &PowerGrid, raster: &Rasterizer) -> Vec<(u32, GridMap)> {
    grid.layers()
        .into_iter()
        .map(|layer| {
            let m = raster.splat_sum(grid.segments.iter().flat_map(|s| {
                let half = s.ohms / 2.0;
                let na = &grid.nodes[s.a];
                let nb = &grid.nodes[s.b];
                let mut out = Vec::with_capacity(2);
                if na.layer == layer {
                    out.push((na.x, na.y, half));
                }
                if nb.layer == layer {
                    out.push((nb.x, nb.y, half));
                }
                out
            }));
            (layer, m)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use irf_spice::parse;

    fn grid() -> PowerGrid {
        let src = "\
V1 n1_m4_0_0 0 1.0
R1 n1_m4_0_0 n1_m1_0_0 0.4
R2 n1_m1_0_0 n1_m1_1000_0 1.0
I1 n1_m1_1000_0 0 1m
";
        PowerGrid::from_netlist(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn total_resistive_mass_is_conserved() {
        let g = grid();
        let raster = Rasterizer::new(g.bounding_box(), 2, 1);
        let m = resistance_map(&g, &raster);
        let total: f32 = m.data().iter().sum();
        assert!((f64::from(total) - 1.4).abs() < 1e-6);
    }

    #[test]
    fn endpoints_share_segments() {
        let g = grid();
        let raster = Rasterizer::new(g.bounding_box(), 2, 1);
        let m = resistance_map(&g, &raster);
        // Left tile: R1 (0.4 whole, both ends at x=0) + half of R2.
        assert!((f64::from(m.get(0, 0)) - 0.9).abs() < 1e-6);
        assert!((f64::from(m.get(1, 0)) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn layer_split_assigns_via_halves() {
        let g = grid();
        let raster = Rasterizer::new(g.bounding_box(), 1, 1);
        let maps = layer_resistance_maps(&g, &raster);
        let m1: f32 = maps[0].1.get(0, 0);
        let m4: f32 = maps[1].1.get(0, 0);
        // Layer 1: half of R1 (0.2) + all of R2 (1.0) = 1.2.
        assert!((f64::from(m1) - 1.2).abs() < 1e-6);
        // Layer 4: half of R1.
        assert!((f64::from(m4) - 0.2).abs() < 1e-6);
    }
}
