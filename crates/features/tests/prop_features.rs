//! Randomized-but-deterministic property tests for feature extraction
//! on generated grids (fixed seeds, exact reproduction on failure).

use irf_data::synth::{synthesize, SynthSpec};
use irf_features::{FeatureConfig, FeatureExtractor};
use irf_pg::PowerGrid;
use irf_runtime::Xoshiro256pp;

const CASES: u64 = 16;

fn random_grid(rng: &mut Xoshiro256pp) -> PowerGrid {
    let spec = SynthSpec {
        m1_stripes: rng.random_range(6usize..=10),
        m2_stripes: rng.random_range(6usize..=10),
        m4_stripes: 2,
        pads: rng.random_range(1usize..=3),
        seed: rng.random_range(0u64..200),
        ..SynthSpec::default()
    };
    PowerGrid::from_netlist(&synthesize(&spec)).expect("valid")
}

#[test]
fn stack_is_finite_and_consistently_sized() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xF0_01);
    for _ in 0..CASES {
        let grid = random_grid(&mut rng);
        let res = [8usize, 16, 24][rng.random_range(0usize..3)];
        let ex = FeatureExtractor::new(FeatureConfig {
            width: res,
            height: res,
            ..FeatureConfig::default()
        });
        let drops = vec![1e-3; grid.nodes.len()];
        let stack = ex.extract(&grid, &drops).expect("grid has pads");
        assert_eq!(stack.len(), 5 + 2 * grid.layers().len());
        for (m, name) in stack.maps().iter().zip(stack.names()) {
            assert_eq!(m.width(), res);
            assert_eq!(m.height(), res);
            assert!(m.data().iter().all(|v| v.is_finite()), "{name} has NaN/inf");
        }
    }
}

#[test]
fn rotation_commutes_with_extraction_channel_count() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xF0_02);
    for _ in 0..CASES {
        let grid = random_grid(&mut rng);
        let quarters = rng.random_range(0u32..4);
        let ex = FeatureExtractor::new(FeatureConfig {
            width: 8,
            height: 8,
            ..FeatureConfig::default()
        });
        let drops = vec![0.0; grid.nodes.len()];
        let stack = ex.extract(&grid, &drops).expect("grid has pads");
        let rot = stack.rotated(quarters);
        assert_eq!(rot.len(), stack.len());
        // Rotation preserves every channel's value distribution.
        for (a, b) in stack.maps().iter().zip(rot.maps()) {
            assert_eq!(a.max(), b.max());
            let sa: f32 = a.data().iter().sum();
            let sb: f32 = b.data().iter().sum();
            assert!((sa - sb).abs() < 1e-3 * (1.0 + sa.abs()));
        }
    }
}

#[test]
fn solution_channels_scale_linearly_with_drops() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xF0_03);
    for _ in 0..CASES {
        let grid = random_grid(&mut rng);
        let alpha = rng.random_range(0.5f64..4.0);
        let ex = FeatureExtractor::new(FeatureConfig {
            width: 8,
            height: 8,
            ..FeatureConfig::default()
        });
        let drops: Vec<f64> = (0..grid.nodes.len())
            .map(|i| 1e-3 * (1.0 + (i % 5) as f64))
            .collect();
        let scaled: Vec<f64> = drops.iter().map(|d| alpha * d).collect();
        let a = ex.extract(&grid, &drops).expect("grid has pads");
        let b = ex.extract(&grid, &scaled).expect("grid has pads");
        for ((ma, mb), name) in a.maps().iter().zip(b.maps()).zip(a.names()) {
            if name.starts_with("solution/") {
                for (va, vb) in ma.data().iter().zip(mb.data()) {
                    assert!(
                        (vb - alpha as f32 * va).abs() < 1e-4 * (1.0 + va.abs()),
                        "{name} not linear in the solution"
                    );
                }
            } else {
                // Structure features must be unaffected by the solve.
                assert_eq!(ma, mb, "{name} depends on the solution");
            }
        }
    }
}
