//! Property-based tests for feature extraction on generated grids.

use irf_data::synth::{synthesize, SynthSpec};
use irf_features::{FeatureConfig, FeatureExtractor};
use irf_pg::PowerGrid;
use proptest::prelude::*;

fn grid_strategy() -> impl Strategy<Value = PowerGrid> {
    (6usize..=10, 6usize..=10, 1usize..=3, 0u64..200).prop_map(|(m1, m2, pads, seed)| {
        let spec = SynthSpec {
            m1_stripes: m1,
            m2_stripes: m2,
            m4_stripes: 2,
            pads,
            seed,
            ..SynthSpec::default()
        };
        PowerGrid::from_netlist(&synthesize(&spec)).expect("valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn stack_is_finite_and_consistently_sized(
        grid in grid_strategy(),
        res in prop_oneof![Just(8usize), Just(16), Just(24)],
    ) {
        let ex = FeatureExtractor::new(FeatureConfig {
            width: res,
            height: res,
            ..FeatureConfig::default()
        });
        let drops = vec![1e-3; grid.nodes.len()];
        let stack = ex.extract(&grid, &drops);
        prop_assert_eq!(stack.len(), 5 + 2 * grid.layers().len());
        for (m, name) in stack.maps().iter().zip(stack.names()) {
            prop_assert_eq!(m.width(), res);
            prop_assert_eq!(m.height(), res);
            prop_assert!(m.data().iter().all(|v| v.is_finite()), "{} has NaN/inf", name);
        }
    }

    #[test]
    fn rotation_commutes_with_extraction_channel_count(
        grid in grid_strategy(),
        quarters in 0u32..4,
    ) {
        let ex = FeatureExtractor::new(FeatureConfig {
            width: 8,
            height: 8,
            ..FeatureConfig::default()
        });
        let drops = vec![0.0; grid.nodes.len()];
        let stack = ex.extract(&grid, &drops);
        let rot = stack.rotated(quarters);
        prop_assert_eq!(rot.len(), stack.len());
        // Rotation preserves every channel's value distribution.
        for (a, b) in stack.maps().iter().zip(rot.maps()) {
            prop_assert_eq!(a.max(), b.max());
            let sa: f32 = a.data().iter().sum();
            let sb: f32 = b.data().iter().sum();
            prop_assert!((sa - sb).abs() < 1e-3 * (1.0 + sa.abs()));
        }
    }

    #[test]
    fn solution_channels_scale_linearly_with_drops(
        grid in grid_strategy(),
        alpha in 0.5f64..4.0,
    ) {
        let ex = FeatureExtractor::new(FeatureConfig {
            width: 8,
            height: 8,
            ..FeatureConfig::default()
        });
        let drops: Vec<f64> = (0..grid.nodes.len()).map(|i| 1e-3 * (1.0 + (i % 5) as f64)).collect();
        let scaled: Vec<f64> = drops.iter().map(|d| alpha * d).collect();
        let a = ex.extract(&grid, &drops);
        let b = ex.extract(&grid, &scaled);
        for ((ma, mb), name) in a.maps().iter().zip(b.maps()).zip(a.names()) {
            if name.starts_with("solution/") {
                for (va, vb) in ma.data().iter().zip(mb.data()) {
                    prop_assert!(
                        (vb - alpha as f32 * va).abs() < 1e-4 * (1.0 + va.abs()),
                        "{name} not linear in the solution"
                    );
                }
            } else {
                // Structure features must be unaffected by the solve.
                prop_assert_eq!(ma, mb, "{} depends on the solution", name);
            }
        }
    }
}
