//! Randomized-but-deterministic property tests for the evaluation
//! metrics (fixed seeds, exact reproduction on failure).

use irf_metrics::{confusion, correlation, f1_score, mae, mirde, rmse, topk_overlap};
use irf_runtime::Xoshiro256pp;

const CASES: u64 = 128;

fn maps(rng: &mut Xoshiro256pp) -> (Vec<f32>, Vec<f32>) {
    let n = rng.random_range(1usize..64);
    let p = (0..n).map(|_| rng.random_range(0.0f32..1.0)).collect();
    let g = (0..n).map(|_| rng.random_range(0.0f32..1.0)).collect();
    (p, g)
}

#[test]
fn mae_is_a_metric() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x3E_01);
    for _ in 0..CASES {
        let (p, g) = maps(&mut rng);
        // Non-negativity, identity, symmetry.
        assert!(mae(&p, &g) >= 0.0);
        assert_eq!(mae(&p, &p), 0.0);
        assert!((mae(&p, &g) - mae(&g, &p)).abs() < 1e-12);
    }
}

#[test]
fn rmse_dominates_mae() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x3E_02);
    for _ in 0..CASES {
        let (p, g) = maps(&mut rng);
        // Quadratic mean >= arithmetic mean of |errors|.
        assert!(rmse(&p, &g) + 1e-12 >= mae(&p, &g));
    }
}

#[test]
fn f1_is_bounded_and_perfect_on_self() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x3E_03);
    for _ in 0..CASES {
        let (p, g) = maps(&mut rng);
        let f = f1_score(&p, &g);
        assert!((0.0..=1.0).contains(&f));
        assert!((f1_score(&g, &g) - 1.0).abs() < 1e-12 || g.iter().all(|&v| v <= 0.0));
    }
}

#[test]
fn confusion_partitions_all_pixels() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x3E_04);
    for _ in 0..CASES {
        let (p, g) = maps(&mut rng);
        let c = confusion(&p, &g);
        assert_eq!(c.tp + c.fp + c.tn + c.fn_, p.len());
    }
}

#[test]
fn mirde_bounded_by_max_error() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x3E_05);
    for _ in 0..CASES {
        let (p, g) = maps(&mut rng);
        let worst = p
            .iter()
            .zip(&g)
            .map(|(&a, &b)| f64::from((a - b).abs()))
            .fold(0.0, f64::max);
        assert!(mirde(&p, &g) <= worst + 1e-12);
    }
}

#[test]
fn correlation_is_scale_invariant() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x3E_06);
    for _ in 0..CASES {
        let (p, g) = maps(&mut rng);
        let a = rng.random_range(0.1f32..5.0);
        let b = rng.random_range(-1.0f32..1.0);
        let scaled: Vec<f32> = p.iter().map(|v| a * v + b).collect();
        let c1 = correlation(&p, &g);
        let c2 = correlation(&scaled, &g);
        assert!((c1 - c2).abs() < 1e-6, "{c1} vs {c2}");
    }
}

#[test]
fn correlation_is_bounded() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x3E_07);
    for _ in 0..CASES {
        let (p, g) = maps(&mut rng);
        let c = correlation(&p, &g);
        assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c));
    }
}

#[test]
fn topk_overlap_is_bounded() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x3E_08);
    for _ in 0..CASES {
        let (p, g) = maps(&mut rng);
        let k = (p.len() / 2).max(1);
        let o = topk_overlap(&p, &g, k);
        assert!((0.0..=1.0).contains(&o));
        assert_eq!(topk_overlap(&g, &g, k), 1.0);
    }
}
