//! Property-based tests for the evaluation metrics.

use irf_metrics::{confusion, correlation, f1_score, mae, mirde, rmse, topk_overlap};
use proptest::prelude::*;

fn maps() -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    (1usize..64).prop_flat_map(|n| {
        (
            proptest::collection::vec(0.0f32..1.0, n),
            proptest::collection::vec(0.0f32..1.0, n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mae_is_a_metric((p, g) in maps()) {
        // Non-negativity, identity, symmetry.
        prop_assert!(mae(&p, &g) >= 0.0);
        prop_assert_eq!(mae(&p, &p), 0.0);
        prop_assert!((mae(&p, &g) - mae(&g, &p)).abs() < 1e-12);
    }

    #[test]
    fn rmse_dominates_mae((p, g) in maps()) {
        // Quadratic mean >= arithmetic mean of |errors|.
        prop_assert!(rmse(&p, &g) + 1e-12 >= mae(&p, &g));
    }

    #[test]
    fn f1_is_bounded_and_perfect_on_self((p, g) in maps()) {
        let f = f1_score(&p, &g);
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert!((f1_score(&g, &g) - 1.0).abs() < 1e-12 || g.iter().all(|&v| v <= 0.0));
    }

    #[test]
    fn confusion_partitions_all_pixels((p, g) in maps()) {
        let c = confusion(&p, &g);
        prop_assert_eq!(c.tp + c.fp + c.tn + c.fn_, p.len());
    }

    #[test]
    fn mirde_bounded_by_max_error((p, g) in maps()) {
        let worst = p
            .iter()
            .zip(&g)
            .map(|(&a, &b)| f64::from((a - b).abs()))
            .fold(0.0, f64::max);
        prop_assert!(mirde(&p, &g) <= worst + 1e-12);
    }

    #[test]
    fn correlation_is_scale_invariant((p, g) in maps(), a in 0.1f32..5.0, b in -1.0f32..1.0) {
        let scaled: Vec<f32> = p.iter().map(|v| a * v + b).collect();
        let c1 = correlation(&p, &g);
        let c2 = correlation(&scaled, &g);
        prop_assert!((c1 - c2).abs() < 1e-6, "{c1} vs {c2}");
    }

    #[test]
    fn correlation_is_bounded((p, g) in maps()) {
        let c = correlation(&p, &g);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c));
    }

    #[test]
    fn topk_overlap_is_bounded((p, g) in maps()) {
        let k = (p.len() / 2).max(1);
        let o = topk_overlap(&p, &g, k);
        prop_assert!((0.0..=1.0).contains(&o));
        prop_assert_eq!(topk_overlap(&g, &g, k), 1.0);
    }
}
