//! Evaluation metrics for static IR-drop prediction.
//!
//! Implements exactly the metrics of the ICCAD-2023 contest setup the
//! paper follows: mean absolute error ([`mae`]), the hotspot
//! [`f1_score`] with positives defined as drops exceeding 90 % of the
//! golden maximum, the maximum-IR-drop error ([`mirde`]), plus
//! Pearson correlation ([`correlation`]) and a top-k hotspot overlap
//! ([`topk_overlap`]) used in the qualitative Fig. 6 discussion.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classification;
pub mod regression;
pub mod report;
pub mod timer;

pub use classification::{confusion, f1_score, topk_overlap, Confusion, HOTSPOT_THRESHOLD};
pub use regression::{correlation, mae, max_error, mirde, rmse};
pub use report::MetricReport;
pub use timer::Timer;
