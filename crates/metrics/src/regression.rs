//! Regression metrics over flat prediction/golden buffers.

/// Mean absolute error.
///
/// # Panics
///
/// Panics if lengths differ or the slices are empty.
#[must_use]
pub fn mae(pred: &[f32], golden: &[f32]) -> f64 {
    assert_eq!(pred.len(), golden.len(), "mae: length mismatch");
    assert!(!pred.is_empty(), "mae: empty inputs");
    pred.iter()
        .zip(golden)
        .map(|(&p, &g)| f64::from((p - g).abs()))
        .sum::<f64>()
        / pred.len() as f64
}

/// Root mean squared error.
///
/// # Panics
///
/// Panics if lengths differ or the slices are empty.
#[must_use]
pub fn rmse(pred: &[f32], golden: &[f32]) -> f64 {
    assert_eq!(pred.len(), golden.len(), "rmse: length mismatch");
    assert!(!pred.is_empty(), "rmse: empty inputs");
    (pred
        .iter()
        .zip(golden)
        .map(|(&p, &g)| {
            let d = f64::from(p - g);
            d * d
        })
        .sum::<f64>()
        / pred.len() as f64)
        .sqrt()
}

/// Maximum absolute error over all pixels.
///
/// # Panics
///
/// Panics if lengths differ.
#[must_use]
pub fn max_error(pred: &[f32], golden: &[f32]) -> f64 {
    assert_eq!(pred.len(), golden.len(), "max_error: length mismatch");
    pred.iter()
        .zip(golden)
        .map(|(&p, &g)| f64::from((p - g).abs()))
        .fold(0.0, f64::max)
}

/// Maximum-IR-drop error (MIRDE): the absolute error at the pixel
/// where the *golden* drop is largest — the worst-case region
/// designers care most about.
///
/// # Panics
///
/// Panics if lengths differ or the slices are empty.
#[must_use]
pub fn mirde(pred: &[f32], golden: &[f32]) -> f64 {
    assert_eq!(pred.len(), golden.len(), "mirde: length mismatch");
    assert!(!pred.is_empty(), "mirde: empty inputs");
    let argmax = golden
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .expect("non-empty");
    f64::from((pred[argmax] - golden[argmax]).abs())
}

/// Pearson correlation coefficient; `0.0` when either side is
/// constant.
///
/// # Panics
///
/// Panics if lengths differ or the slices are empty.
#[must_use]
pub fn correlation(pred: &[f32], golden: &[f32]) -> f64 {
    assert_eq!(pred.len(), golden.len(), "correlation: length mismatch");
    assert!(!pred.is_empty(), "correlation: empty inputs");
    let n = pred.len() as f64;
    let mp = pred.iter().map(|&v| f64::from(v)).sum::<f64>() / n;
    let mg = golden.iter().map(|&v| f64::from(v)).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vp = 0.0;
    let mut vg = 0.0;
    for (&p, &g) in pred.iter().zip(golden) {
        let dp = f64::from(p) - mp;
        let dg = f64::from(g) - mg;
        cov += dp * dg;
        vp += dp * dp;
        vg += dg * dg;
    }
    if vp == 0.0 || vg == 0.0 {
        0.0
    } else {
        cov / (vp.sqrt() * vg.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_simple() {
        assert!((mae(&[1.0, 2.0], &[0.0, 4.0]) - 1.5).abs() < 1e-12);
        assert_eq!(mae(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn rmse_penalizes_outliers_more() {
        let a = rmse(&[1.0, 1.0], &[0.0, 0.0]);
        let b = rmse(&[2.0, 0.0], &[0.0, 0.0]);
        assert!(b > a);
    }

    #[test]
    fn mirde_reads_error_at_golden_peak() {
        // Golden peak at index 2; prediction error there is 0.5.
        let golden = [1.0, 2.0, 5.0, 3.0];
        let pred = [9.0, 9.0, 4.5, 9.0];
        assert!((mirde(&pred, &golden) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn max_error_scans_all() {
        assert_eq!(max_error(&[0.0, 5.0], &[0.0, 0.0]), 5.0);
    }

    #[test]
    fn correlation_bounds() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((correlation(&x, &y) - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((correlation(&x, &z) + 1.0).abs() < 1e-12);
        let c = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(correlation(&x, &c), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = mae(&[1.0], &[1.0, 2.0]);
    }
}
