//! Bundled per-design evaluation results.

use crate::classification::f1_score;
use crate::regression::{correlation, mae, mirde};
use std::fmt;

/// All headline metrics of one evaluation, in the paper's units
/// (MAE and MIRDE are reported in units of `1e-4 V`, matching
/// Table I's caption).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MetricReport {
    /// Mean absolute error, volts.
    pub mae_volts: f64,
    /// Hotspot F1 score.
    pub f1: f64,
    /// Maximum-IR-drop error, volts.
    pub mirde_volts: f64,
    /// Pearson correlation.
    pub cc: f64,
    /// Evaluation runtime, seconds.
    pub runtime_seconds: f64,
}

impl MetricReport {
    /// Computes the report from flat buffers, attaching a runtime.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or the buffers are empty.
    #[must_use]
    pub fn evaluate(pred: &[f32], golden: &[f32], runtime_seconds: f64) -> Self {
        MetricReport {
            mae_volts: mae(pred, golden),
            f1: f1_score(pred, golden),
            mirde_volts: mirde(pred, golden),
            cc: correlation(pred, golden),
            runtime_seconds,
        }
    }

    /// MAE in the paper's `1e-4 V` units.
    #[must_use]
    pub fn mae_e4(&self) -> f64 {
        self.mae_volts * 1e4
    }

    /// MIRDE in the paper's `1e-4 V` units.
    #[must_use]
    pub fn mirde_e4(&self) -> f64 {
        self.mirde_volts * 1e4
    }

    /// Averages several reports (used across the test designs).
    ///
    /// # Panics
    ///
    /// Panics if `reports` is empty.
    #[must_use]
    pub fn mean(reports: &[MetricReport]) -> MetricReport {
        assert!(!reports.is_empty(), "mean of no reports");
        let n = reports.len() as f64;
        MetricReport {
            mae_volts: reports.iter().map(|r| r.mae_volts).sum::<f64>() / n,
            f1: reports.iter().map(|r| r.f1).sum::<f64>() / n,
            mirde_volts: reports.iter().map(|r| r.mirde_volts).sum::<f64>() / n,
            cc: reports.iter().map(|r| r.cc).sum::<f64>() / n,
            runtime_seconds: reports.iter().map(|r| r.runtime_seconds).sum::<f64>() / n,
        }
    }
}

impl fmt::Display for MetricReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MAE {:.3}e-4 V | F1 {:.3} | MIRDE {:.3}e-4 V | CC {:.3} | {:.3} s",
            self.mae_e4(),
            self.f1,
            self.mirde_e4(),
            self.cc,
            self.runtime_seconds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_bundles_metrics() {
        let golden = [1e-4f32, 2e-4, 10e-4, 9.5e-4];
        let r = MetricReport::evaluate(&golden, &golden, 0.5);
        assert_eq!(r.mae_volts, 0.0);
        assert_eq!(r.f1, 1.0);
        assert_eq!(r.mirde_volts, 0.0);
        assert!((r.cc - 1.0).abs() < 1e-12);
        assert_eq!(r.runtime_seconds, 0.5);
    }

    #[test]
    fn paper_units_scale() {
        let r = MetricReport {
            mae_volts: 0.72e-4,
            mirde_volts: 3.05e-4,
            ..MetricReport::default()
        };
        assert!((r.mae_e4() - 0.72).abs() < 1e-9);
        assert!((r.mirde_e4() - 3.05).abs() < 1e-9);
    }

    #[test]
    fn mean_averages_fields() {
        let a = MetricReport {
            mae_volts: 1.0,
            f1: 0.2,
            mirde_volts: 2.0,
            cc: 0.4,
            runtime_seconds: 1.0,
        };
        let b = MetricReport {
            mae_volts: 3.0,
            f1: 0.6,
            mirde_volts: 4.0,
            cc: 0.8,
            runtime_seconds: 3.0,
        };
        let m = MetricReport::mean(&[a, b]);
        assert_eq!(m.mae_volts, 2.0);
        assert!((m.f1 - 0.4).abs() < 1e-12);
        assert_eq!(m.runtime_seconds, 2.0);
    }

    #[test]
    fn display_is_informative() {
        let r = MetricReport::default();
        let s = r.to_string();
        assert!(s.contains("MAE") && s.contains("F1") && s.contains("MIRDE"));
    }
}
