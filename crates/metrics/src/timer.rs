//! Wall-clock timing for the runtime columns of Table I / Fig. 7.

use std::time::{Duration, Instant};

/// A simple accumulating stopwatch.
///
/// # Example
///
/// ```
/// use irf_metrics::Timer;
///
/// let mut t = Timer::new();
/// t.start();
/// let _work: u64 = (0..1000).sum();
/// t.stop();
/// assert!(t.elapsed().as_nanos() > 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Timer {
    accumulated: Duration,
    running_since: Option<Instant>,
}

impl Timer {
    /// Creates a stopped timer at zero.
    #[must_use]
    pub fn new() -> Self {
        Timer::default()
    }

    /// Starts (or restarts) the running segment.
    pub fn start(&mut self) {
        self.running_since = Some(Instant::now());
    }

    /// Stops the running segment, folding it into the accumulated
    /// total. Stopping a stopped timer is a no-op.
    pub fn stop(&mut self) {
        if let Some(since) = self.running_since.take() {
            self.accumulated += since.elapsed();
        }
    }

    /// Total accumulated time (including a still-running segment).
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        match self.running_since {
            Some(since) => self.accumulated + since.elapsed(),
            None => self.accumulated,
        }
    }

    /// Accumulated seconds as `f64`.
    #[must_use]
    pub fn seconds(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Times a closure and returns `(result, seconds)`.
    pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
        let start = Instant::now();
        let out = f();
        (out, start.elapsed().as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_across_segments() {
        let mut t = Timer::new();
        t.start();
        std::thread::sleep(Duration::from_millis(2));
        t.stop();
        let first = t.elapsed();
        t.start();
        std::thread::sleep(Duration::from_millis(2));
        t.stop();
        assert!(t.elapsed() > first);
    }

    #[test]
    fn stop_without_start_is_noop() {
        let mut t = Timer::new();
        t.stop();
        assert_eq!(t.elapsed(), Duration::ZERO);
    }

    #[test]
    fn time_closure_returns_result() {
        let (v, secs) = Timer::time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
