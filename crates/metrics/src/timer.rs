//! Wall-clock timing for the runtime columns of Table I / Fig. 7.
//!
//! The implementation moved to [`irf_trace::Timer`] so timed segments
//! share the tracing clock (a [`irf_trace::Timer::named`] timer also
//! records its segments as trace events); this module re-exports it to
//! keep `irf_metrics::Timer` working for existing callers.

pub use irf_trace::Timer;

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn reexported_timer_accumulates() {
        let mut t = Timer::new();
        t.start();
        std::thread::sleep(Duration::from_millis(1));
        t.stop();
        assert!(t.elapsed() > Duration::ZERO);
    }
}
