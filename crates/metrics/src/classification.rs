//! Hotspot classification metrics (the contest F1).

/// Fraction of the golden maximum above which a pixel counts as a
/// hotspot (the contest's 90 % rule).
pub const HOTSPOT_THRESHOLD: f32 = 0.9;

/// A binary confusion matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Precision `TP / (TP + FP)`; `0.0` when no positives are
    /// predicted.
    #[must_use]
    pub fn precision(&self) -> f64 {
        let d = self.tp + self.fp;
        if d == 0 {
            0.0
        } else {
            self.tp as f64 / d as f64
        }
    }

    /// Recall `TP / (TP + FN)`; `0.0` when no positives exist.
    #[must_use]
    pub fn recall(&self) -> f64 {
        let d = self.tp + self.fn_;
        if d == 0 {
            0.0
        } else {
            self.tp as f64 / d as f64
        }
    }

    /// F1 score `2PR / (P + R)`; `0.0` when both are zero.
    #[must_use]
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Builds the hotspot confusion matrix: a pixel is *positive* when its
/// golden drop exceeds `HOTSPOT_THRESHOLD x max(golden)`, and
/// *predicted positive* when its predicted drop exceeds the same
/// absolute threshold (the contest definition).
///
/// # Panics
///
/// Panics if lengths differ or the slices are empty.
#[must_use]
pub fn confusion(pred: &[f32], golden: &[f32]) -> Confusion {
    assert_eq!(pred.len(), golden.len(), "confusion: length mismatch");
    assert!(!pred.is_empty(), "confusion: empty inputs");
    let gmax = golden.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let thr = HOTSPOT_THRESHOLD * gmax;
    let mut c = Confusion::default();
    for (&p, &g) in pred.iter().zip(golden) {
        match (p > thr, g > thr) {
            (true, true) => c.tp += 1,
            (true, false) => c.fp += 1,
            (false, true) => c.fn_ += 1,
            (false, false) => c.tn += 1,
        }
    }
    c
}

/// F1 score of the hotspot classification. See [`confusion`].
///
/// # Panics
///
/// Panics if lengths differ or the slices are empty.
#[must_use]
pub fn f1_score(pred: &[f32], golden: &[f32]) -> f64 {
    confusion(pred, golden).f1()
}

/// Overlap of the top-`k` pixels by value between prediction and
/// golden (`|A ∩ B| / k`) — a rank-based hotspot agreement measure.
///
/// # Panics
///
/// Panics if lengths differ, the slices are empty, or `k == 0` or
/// `k > len`.
#[must_use]
pub fn topk_overlap(pred: &[f32], golden: &[f32], k: usize) -> f64 {
    assert_eq!(pred.len(), golden.len(), "topk: length mismatch");
    assert!(k > 0 && k <= pred.len(), "topk: k out of range");
    let top = |v: &[f32]| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&a, &b| v[b].partial_cmp(&v[a]).unwrap_or(std::cmp::Ordering::Equal));
        idx.truncate(k);
        idx
    };
    let a = top(pred);
    let b: std::collections::HashSet<usize> = top(golden).into_iter().collect();
    a.iter().filter(|i| b.contains(i)).count() as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_scores_one() {
        let g = [0.1, 0.2, 1.0, 0.95, 0.3];
        assert!((f1_score(&g, &g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn confusion_counts() {
        // max = 1.0, threshold = 0.9. Golden positives: idx 2, 3.
        let golden = [0.1, 0.2, 1.0, 0.95];
        let pred = [0.95, 0.2, 1.0, 0.1];
        let c = confusion(&pred, &golden);
        assert_eq!(c.tp, 1); // idx 2
        assert_eq!(c.fp, 1); // idx 0
        assert_eq!(c.fn_, 1); // idx 3
        assert_eq!(c.tn, 1); // idx 1
        assert!((c.precision() - 0.5).abs() < 1e-12);
        assert!((c.recall() - 0.5).abs() < 1e-12);
        assert!((c.f1() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn all_negative_prediction_gives_zero_f1() {
        let golden = [0.0, 0.0, 1.0];
        let pred = [0.0, 0.0, 0.0];
        assert_eq!(f1_score(&pred, &golden), 0.0);
    }

    #[test]
    fn degenerate_confusion_is_safe() {
        let c = Confusion::default();
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn topk_overlap_counts_shared_peaks() {
        let golden = [0.0, 1.0, 2.0, 3.0];
        let same = topk_overlap(&golden, &golden, 2);
        assert_eq!(same, 1.0);
        let pred = [3.0, 2.0, 1.0, 0.0];
        assert_eq!(topk_overlap(&pred, &golden, 2), 0.0);
    }
}
