//! Incomplete Cholesky IC(0) preconditioner.
//!
//! The classic middle ground between Jacobi and AMG for power-grid
//! systems (cited throughout the PG-analysis literature, e.g. Chen &
//! Chen, DAC'01): a Cholesky factorization restricted to the sparsity
//! pattern of `A`, applied as `M^{-1} = (L L^T)^{-1}` inside PCG.

use crate::csr::CsrMatrix;
use crate::error::SolveError;
use crate::pcg::Preconditioner;

/// IC(0): a lower-triangular factor kept on the pattern of `A`'s
/// lower triangle, stored row-wise.
#[derive(Debug, Clone)]
pub struct Ic0Preconditioner {
    n: usize,
    /// Strictly-lower entries of row k: `(col, value)` sorted by col.
    rows: Vec<Vec<(usize, f64)>>,
    /// Diagonal of `L`.
    diag: Vec<f64>,
}

impl Ic0Preconditioner {
    /// Computes the IC(0) factor of an SPD matrix.
    ///
    /// Row-wise incomplete factorization: every fill-in outside `A`'s
    /// own pattern is discarded. When a pivot goes non-positive, a
    /// growing diagonal shift is applied (shifted IC, in the spirit of
    /// Manteuffel) before giving up.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NotSquare`] for non-square input, or
    /// [`SolveError::NotPositiveDefinite`] when even the largest shift
    /// cannot keep the pivots positive.
    pub fn factor(a: &CsrMatrix) -> Result<Self, SolveError> {
        if a.rows() != a.cols() {
            return Err(SolveError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let base: f64 = a.diagonal().iter().fold(0.0_f64, |m, d| m.max(d.abs()));
        let mut last = SolveError::NotPositiveDefinite { row: 0, pivot: 0.0 };
        for shift in [0.0, 1e-8, 1e-4, 1e-2] {
            match Self::try_factor(a, shift * base) {
                Ok(f) => return Ok(f),
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    fn try_factor(a: &CsrMatrix, shift: f64) -> Result<Self, SolveError> {
        let n = a.rows();
        let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        let mut diag = vec![0.0; n];
        for k in 0..n {
            let (cols, vals) = a.row(k);
            let mut d = shift;
            let mut row_k: Vec<(usize, f64)> = Vec::new();
            for (&c, &v) in cols.iter().zip(vals) {
                if c < k {
                    row_k.push((c, v)); // seeded with a_kj, refined below
                } else if c == k {
                    d += v;
                }
            }
            // row_k is sorted because CSR columns are sorted.
            for idx in 0..row_k.len() {
                let (j, a_kj) = row_k[idx];
                // l_kj = (a_kj - <L_k, L_j>_{cols < j}) / l_jj
                let dot = sparse_dot_below(&row_k[..idx], &rows[j], j);
                let lkj = (a_kj - dot) / diag[j];
                row_k[idx].1 = lkj;
                d -= lkj * lkj;
            }
            if d <= 0.0 {
                return Err(SolveError::NotPositiveDefinite { row: k, pivot: d });
            }
            diag[k] = d.sqrt();
            rows.push(row_k);
        }
        Ok(Ic0Preconditioner { n, rows, diag })
    }

    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored non-zeros in the factor (including the diagonal).
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.n + self.rows.iter().map(Vec::len).sum::<usize>()
    }
}

/// Dot product of two sorted sparse rows, restricted to columns `< j`.
/// `lhs` entries already carry final `l_k*` values; `rhs` is row `j`.
fn sparse_dot_below(lhs: &[(usize, f64)], rhs: &[(usize, f64)], j: usize) -> f64 {
    let mut acc = 0.0;
    let (mut p, mut q) = (0usize, 0usize);
    while p < lhs.len() && q < rhs.len() {
        let (cl, vl) = lhs[p];
        let (cr, vr) = rhs[q];
        if cl >= j || cr >= j {
            break;
        }
        match cl.cmp(&cr) {
            std::cmp::Ordering::Less => p += 1,
            std::cmp::Ordering::Greater => q += 1,
            std::cmp::Ordering::Equal => {
                acc += vl * vr;
                p += 1;
                q += 1;
            }
        }
    }
    acc
}

impl Preconditioner for Ic0Preconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        assert_eq!(r.len(), self.n, "ic0: rhs length mismatch");
        assert_eq!(z.len(), self.n, "ic0: output length mismatch");
        z.copy_from_slice(r);
        // Forward: L y = r (row-oriented).
        for k in 0..self.n {
            let mut s = z[k];
            for &(j, v) in &self.rows[k] {
                s -= v * z[j];
            }
            z[k] = s / self.diag[k];
        }
        // Backward: L^T x = y. Process k descending; once z_k is
        // final, push its contribution down to every j < k in row k.
        for k in (0..self.n).rev() {
            z[k] /= self.diag[k];
            let zk = z[k];
            for &(j, v) in &self.rows[k] {
                z[j] -= v * zk;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::CholeskyFactor;
    use crate::pcg::{pcg, JacobiPreconditioner};
    use crate::triplet::TripletMatrix;

    fn grid(nx: usize, ny: usize) -> CsrMatrix {
        let n = nx * ny;
        let idx = |i: usize, j: usize| i * ny + j;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..nx {
            for j in 0..ny {
                if i + 1 < nx {
                    t.stamp_conductance(idx(i, j), idx(i + 1, j), 1.0);
                }
                if j + 1 < ny {
                    t.stamp_conductance(idx(i, j), idx(i, j + 1), 1.0);
                }
            }
        }
        t.stamp_grounded_conductance(0, 5.0);
        t.stamp_grounded_conductance(n - 1, 5.0);
        t.to_csr()
    }

    #[test]
    fn factor_exact_on_tridiagonal() {
        // A tridiagonal matrix has no fill, so IC(0) equals the full
        // Cholesky factor and the preconditioner solves exactly.
        let n = 20;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n - 1 {
            t.stamp_conductance(i, i + 1, 1.0 + i as f64 * 0.1);
        }
        t.stamp_grounded_conductance(0, 1.0);
        t.stamp_grounded_conductance(n - 1, 2.0);
        let a = t.to_csr();
        let f = Ic0Preconditioner::factor(&a).expect("SPD");
        let x_true: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 1.0).collect();
        let b = a.spmv(&x_true);
        let mut z = vec![0.0; n];
        f.apply(&b, &mut z);
        for (zi, ti) in z.iter().zip(&x_true) {
            assert!((zi - ti).abs() < 1e-9, "exact on tridiagonal: {zi} vs {ti}");
        }
        // Same factor content as the full Cholesky.
        let full = CholeskyFactor::factor(&a).expect("SPD");
        assert_eq!(f.nnz(), full.nnz());
    }

    #[test]
    fn ic0_pcg_converges_and_beats_jacobi() {
        let a = grid(16, 16);
        let b = vec![1e-3; a.rows()];
        let ic = Ic0Preconditioner::factor(&a).expect("SPD");
        let jac = JacobiPreconditioner::new(&a);
        let r_ic = pcg(&a, &b, &ic, 1e-10, 1000);
        let r_j = pcg(&a, &b, &jac, 1e-10, 1000);
        assert!(r_ic.converged && r_j.converged);
        assert!(
            r_ic.trace.iterations() < r_j.trace.iterations(),
            "IC(0) {} vs Jacobi {}",
            r_ic.trace.iterations(),
            r_j.trace.iterations()
        );
    }

    #[test]
    fn ic0_pattern_never_exceeds_input() {
        let a = grid(8, 8);
        let f = Ic0Preconditioner::factor(&a).expect("SPD");
        // nnz(L) <= nnz(lower(A)) + n by construction.
        let lower_nnz = a.iter().filter(|&(r, c, _)| c < r).count();
        assert!(f.nnz() <= lower_nnz + a.rows());
    }

    #[test]
    fn non_square_rejected() {
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]);
        assert!(matches!(
            Ic0Preconditioner::factor(&a),
            Err(SolveError::NotSquare { .. })
        ));
    }

    #[test]
    fn dimension_is_reported() {
        let a = grid(4, 4);
        let f = Ic0Preconditioner::factor(&a).expect("SPD");
        assert_eq!(f.dim(), 16);
    }
}
