//! Unified solver facade with timing and convergence reporting.

use crate::amg::{AmgCore, AmgHierarchy, AmgParams, AmgPreconditioner, CycleKind};
use crate::cg::{conjugate_gradient, ConvergenceTrace};
use crate::cholesky::CholeskyFactor;
use crate::csr::CsrMatrix;
use crate::ic0::Ic0Preconditioner;
use crate::pcg::{pcg_with_guess, JacobiPreconditioner};
use crate::vector::norm2;
use std::sync::Arc;
use std::time::Instant;

/// Which algorithm [`Solver`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SolverKind {
    /// Plain conjugate gradient.
    Cg,
    /// Jacobi-preconditioned CG.
    JacobiPcg,
    /// Incomplete-Cholesky IC(0)-preconditioned CG.
    Ic0Pcg,
    /// AMG(K-cycle)-preconditioned CG — the PowerRush solver the paper
    /// builds on.
    #[default]
    AmgPcg,
    /// AMG with a V-cycle preconditioner.
    AmgPcgVCycle,
    /// Sparse Cholesky direct solve (golden reference).
    Cholesky,
}

impl SolverKind {
    /// Human-readable label used by reports and benches.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SolverKind::Cg => "CG",
            SolverKind::JacobiPcg => "Jacobi-PCG",
            SolverKind::Ic0Pcg => "IC(0)-PCG",
            SolverKind::AmgPcg => "AMG-PCG (K-cycle)",
            SolverKind::AmgPcgVCycle => "AMG-PCG (V-cycle)",
            SolverKind::Cholesky => "Cholesky",
        }
    }
}

impl std::fmt::Display for SolverKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// Approximate (or exact, for direct) solution vector.
    pub x: Vec<f64>,
    /// `true` if the requested tolerance was met (always true for a
    /// successful direct solve).
    pub converged: bool,
    /// Iteration count (0 for direct solves).
    pub iterations: usize,
    /// Final relative residual `||b - A x|| / ||b||`.
    pub residual: f64,
    /// Wall-clock setup time (AMG hierarchy / factorization), seconds.
    pub setup_seconds: f64,
    /// Wall-clock solve time, seconds.
    pub solve_seconds: f64,
    /// Per-iteration residual history (empty for direct solves).
    pub trace: ConvergenceTrace,
}

/// Configurable entry point over all solver kinds.
///
/// # Example
///
/// ```
/// use irf_sparse::{TripletMatrix, Solver, SolverKind};
///
/// let mut t = TripletMatrix::new(3, 3);
/// for i in 0..3 {
///     t.push(i, i, 2.0);
/// }
/// let report = Solver::new(SolverKind::Cholesky).solve(&t.to_csr(), &[2.0, 4.0, 6.0]);
/// assert!(report.converged);
/// for (xi, want) in report.x.iter().zip([1.0, 2.0, 3.0]) {
///     assert!((xi - want).abs() < 1e-12);
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Solver {
    kind: SolverKind,
    tol: f64,
    max_iter: usize,
    amg_params: AmgParams,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new(SolverKind::default())
    }
}

impl Solver {
    /// Creates a solver with default tolerance `1e-8` and a budget of
    /// 1000 iterations.
    #[must_use]
    pub fn new(kind: SolverKind) -> Self {
        Solver {
            kind,
            tol: 1e-8,
            max_iter: 1000,
            amg_params: AmgParams::default(),
        }
    }

    /// Sets the relative-residual tolerance.
    #[must_use]
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Sets the iteration budget. For the IR-Fusion rough-solution
    /// phase this is the small `k` (1-10) of the paper's Fig. 7.
    #[must_use]
    pub fn with_max_iterations(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter;
        self
    }

    /// Overrides the AMG setup parameters.
    #[must_use]
    pub fn with_amg_params(mut self, params: AmgParams) -> Self {
        self.amg_params = params;
        self
    }

    /// The configured algorithm.
    #[must_use]
    pub fn kind(&self) -> SolverKind {
        self.kind
    }

    /// Solves `A x = b` from a zero initial guess.
    ///
    /// # Panics
    ///
    /// Panics if `A` is not square, `b` has the wrong length, or (for
    /// the direct path) the matrix is not positive definite.
    #[must_use]
    pub fn solve(&self, a: &CsrMatrix, b: &[f64]) -> SolveReport {
        self.solve_with_guess(a, b, vec![0.0; b.len()])
    }

    /// Solves `A x = b` starting from `x0` (iterative kinds only; the
    /// direct kind ignores the guess).
    ///
    /// Internally routes through [`Solver::prepare`] followed by
    /// [`SolverSetup::solve_with_guess`], so a cold solve and a solve
    /// against a cached [`SolverSetup`] execute the exact same code and
    /// produce bitwise-identical solutions.
    ///
    /// # Panics
    ///
    /// See [`Solver::solve`].
    #[must_use]
    pub fn solve_with_guess(&self, a: &CsrMatrix, b: &[f64], x0: Vec<f64>) -> SolveReport {
        self.prepare(a).solve_with_guess(a, b, x0)
    }

    /// Runs the setup phase only — AMG hierarchy construction (plus
    /// smoother diagonals), IC(0)/Cholesky factorization, or the
    /// Jacobi diagonal — and returns a reusable [`SolverSetup`] handle
    /// that can serve any number of right-hand sides against the same
    /// matrix. This is the stage-graph `SolverSetup` artifact: for
    /// re-analyses where only the current vector changed, the handle is
    /// cached and the hierarchy is reused verbatim.
    ///
    /// Emits the `amg_setup` trace span and solver telemetry for the
    /// AMG kinds, exactly as the one-shot [`Solver::solve`] path does.
    ///
    /// # Panics
    ///
    /// Panics if `A` is not square or (for factorizing kinds) not
    /// positive definite.
    #[must_use]
    pub fn prepare(&self, a: &CsrMatrix) -> SolverSetup {
        let t0 = Instant::now();
        let inner = match self.kind {
            SolverKind::Cg => Prepared::Bare,
            SolverKind::JacobiPcg => Prepared::Jacobi(JacobiPreconditioner::new(a)),
            SolverKind::Ic0Pcg => Prepared::Ic0(
                Ic0Preconditioner::factor(a).expect("matrix must be (near-)SPD for IC(0)"),
            ),
            SolverKind::AmgPcg | SolverKind::AmgPcgVCycle => {
                let cycle = if self.kind == SolverKind::AmgPcg {
                    CycleKind::KCycle
                } else {
                    CycleKind::VCycle
                };
                let mut setup_span = irf_trace::span("amg_setup");
                let h = AmgHierarchy::build(a, self.amg_params);
                record_amg_telemetry(&h, &mut setup_span);
                let core = Arc::new(AmgCore::new(h, cycle));
                drop(setup_span);
                irf_trace::registry().counter_add(
                    "irf_stage_seconds_total",
                    &[("stage", "amg_setup")],
                    t0.elapsed().as_secs_f64(),
                );
                Prepared::Amg(core)
            }
            SolverKind::Cholesky => Prepared::Cholesky(Arc::new(
                CholeskyFactor::factor(a).expect("matrix must be SPD for Cholesky"),
            )),
        };
        SolverSetup {
            kind: self.kind,
            tol: self.tol,
            max_iter: self.max_iter,
            dim: a.rows(),
            setup_seconds: t0.elapsed().as_secs_f64(),
            inner,
        }
    }

    /// [`Solver::prepare`] for a matrix whose sparsity pattern matches
    /// an already-prepared `base` setup — the topology-delta fast path.
    ///
    /// For the AMG kinds this routes through
    /// [`AmgHierarchy::rebuild_from`], which reuses the base coarse
    /// sparsity patterns (skipping the dominant assembly sorts) wherever
    /// the freshly recomputed aggregation proves the hierarchy shape is
    /// unchanged. The returned setup is bitwise equivalent to a cold
    /// [`Solver::prepare`] of the same matrix. Non-AMG kinds, or a
    /// `base` prepared under a different kind, simply fall back to the
    /// cold path.
    ///
    /// # Panics
    ///
    /// Same as [`Solver::prepare`].
    #[must_use]
    pub fn rebuild_from(&self, base: &SolverSetup, a: &CsrMatrix) -> SolverSetup {
        let (Prepared::Amg(core), SolverKind::AmgPcg | SolverKind::AmgPcgVCycle) =
            (&base.inner, self.kind)
        else {
            return self.prepare(a);
        };
        let t0 = Instant::now();
        let cycle = if self.kind == SolverKind::AmgPcg {
            CycleKind::KCycle
        } else {
            CycleKind::VCycle
        };
        let mut setup_span = irf_trace::span("amg_setup");
        if setup_span.is_recording() {
            setup_span.attr("rebuilt", true);
        }
        let h = AmgHierarchy::rebuild_from(a, self.amg_params, core.hierarchy());
        record_amg_telemetry(&h, &mut setup_span);
        let core = Arc::new(AmgCore::new(h, cycle));
        drop(setup_span);
        irf_trace::registry().counter_add(
            "irf_stage_seconds_total",
            &[("stage", "amg_setup")],
            t0.elapsed().as_secs_f64(),
        );
        SolverSetup {
            kind: self.kind,
            tol: self.tol,
            max_iter: self.max_iter,
            dim: a.rows(),
            setup_seconds: t0.elapsed().as_secs_f64(),
            inner: Prepared::Amg(core),
        }
    }
}

/// The prepared state a [`SolverSetup`] carries per solver kind.
#[derive(Debug, Clone)]
enum Prepared {
    /// Plain CG needs no setup.
    Bare,
    Jacobi(JacobiPreconditioner),
    Ic0(Ic0Preconditioner),
    Amg(Arc<AmgCore>),
    Cholesky(Arc<CholeskyFactor>),
}

/// A reusable, thread-safe solver handle produced by
/// [`Solver::prepare`]: the setup artifacts (AMG hierarchy + smoother
/// diagonals, factorizations, diagonals) bound to one matrix, ready to
/// solve any number of right-hand sides without repeating setup.
///
/// Cloning is cheap (the heavy state is behind `Arc`s), and the handle
/// is `Send + Sync`, so it can live in a shared stage-artifact cache.
/// Solutions are bitwise identical to one-shot [`Solver::solve`] calls
/// because that path routes through this type.
#[derive(Debug, Clone)]
pub struct SolverSetup {
    kind: SolverKind,
    tol: f64,
    max_iter: usize,
    dim: usize,
    setup_seconds: f64,
    inner: Prepared,
}

impl SolverSetup {
    /// The solver kind this setup was prepared for.
    #[must_use]
    pub fn kind(&self) -> SolverKind {
        self.kind
    }

    /// Dimension of the matrix this setup was prepared against.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Wall-clock seconds the setup phase took when it originally ran.
    #[must_use]
    pub fn setup_seconds(&self) -> f64 {
        self.setup_seconds
    }

    /// Relative-residual tolerance this setup stops at.
    #[must_use]
    pub fn tolerance(&self) -> f64 {
        self.tol
    }

    /// Iteration cap this setup stops at.
    #[must_use]
    pub fn max_iterations(&self) -> usize {
        self.max_iter
    }

    /// Returns a copy of this setup with an overridden stopping rule
    /// (tolerance + iteration cap). The prepared artifacts are shared,
    /// so the copy is cheap and solves remain bitwise reproducible for
    /// a given stopping rule.
    #[must_use]
    pub fn with_stopping(&self, tol: f64, max_iter: usize) -> SolverSetup {
        SolverSetup {
            tol,
            max_iter,
            ..self.clone()
        }
    }

    /// Solves `A x = b` from a zero initial guess. `a` must be the
    /// same matrix this setup was prepared against.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions of `a` or `b` disagree with the
    /// prepared dimension.
    #[must_use]
    pub fn solve(&self, a: &CsrMatrix, b: &[f64]) -> SolveReport {
        self.solve_with_guess(a, b, vec![0.0; b.len()])
    }

    /// Solves `A x = b` starting from `x0` (iterative kinds only; the
    /// direct kind ignores the guess). The reported `setup_seconds` is
    /// the original preparation time, not time spent in this call.
    ///
    /// # Panics
    ///
    /// See [`SolverSetup::solve`].
    #[must_use]
    pub fn solve_with_guess(&self, a: &CsrMatrix, b: &[f64], x0: Vec<f64>) -> SolveReport {
        assert_eq!(
            a.rows(),
            self.dim,
            "SolverSetup was prepared for a {}-dim system",
            self.dim
        );
        assert_eq!(b.len(), self.dim, "rhs length mismatch");
        match &self.inner {
            Prepared::Bare => {
                let t0 = Instant::now();
                let res = conjugate_gradient(a, b, self.tol, self.max_iter);
                finish_iterative(res, self.setup_seconds, t0.elapsed().as_secs_f64())
            }
            Prepared::Jacobi(m) => {
                let t0 = Instant::now();
                let res = pcg_with_guess(a, b, m, x0, self.tol, self.max_iter);
                finish_iterative(res, self.setup_seconds, t0.elapsed().as_secs_f64())
            }
            Prepared::Ic0(m) => {
                let t0 = Instant::now();
                let res = pcg_with_guess(a, b, m, x0, self.tol, self.max_iter);
                finish_iterative(res, self.setup_seconds, t0.elapsed().as_secs_f64())
            }
            Prepared::Amg(core) => {
                let m = AmgPreconditioner::from_core(Arc::clone(core));
                let t1 = Instant::now();
                let mut solve_span = irf_trace::span("pcg_solve");
                let res = pcg_with_guess(a, b, &m, x0, self.tol, self.max_iter);
                record_pcg_telemetry(&res, &mut solve_span);
                drop(solve_span);
                let solve = t1.elapsed().as_secs_f64();
                irf_trace::registry().counter_add(
                    "irf_stage_seconds_total",
                    &[("stage", "pcg_solve")],
                    solve,
                );
                finish_iterative(res, self.setup_seconds, solve)
            }
            Prepared::Cholesky(f) => {
                let t1 = Instant::now();
                let x = f.solve(b);
                let solve_seconds = t1.elapsed().as_secs_f64();
                let mut r = vec![0.0; b.len()];
                a.residual_into(b, &x, &mut r);
                let bn = norm2(b);
                let residual = if bn == 0.0 { 0.0 } else { norm2(&r) / bn };
                SolveReport {
                    x,
                    converged: true,
                    iterations: 0,
                    residual,
                    setup_seconds: self.setup_seconds,
                    solve_seconds,
                    trace: ConvergenceTrace::default(),
                }
            }
        }
    }
}

/// Publishes AMG hierarchy statistics as span attributes and registry
/// gauges: level count, per-level nnz, and operator complexity.
fn record_amg_telemetry(h: &AmgHierarchy, span: &mut irf_trace::Span) {
    let levels = h.num_levels();
    let complexity = h.operator_complexity();
    if span.is_recording() {
        span.attr("levels", levels);
        span.attr(
            "level_nnz",
            h.levels()
                .iter()
                .map(|l| l.a.nnz() as f64)
                .collect::<Vec<_>>(),
        );
        span.attr("operator_complexity", complexity);
    }
    let registry = irf_trace::registry();
    registry.gauge_set("irf_amg_levels", &[], levels as f64);
    registry.gauge_set("irf_amg_operator_complexity", &[], complexity);
}

/// Publishes PCG convergence telemetry: iteration count, convergence
/// flag, and the per-iteration residual history.
fn record_pcg_telemetry(res: &crate::cg::CgResult, span: &mut irf_trace::Span) {
    let iterations = res.trace.iterations();
    irf_trace::request::note_pcg(iterations as u64);
    if span.is_recording() {
        span.attr("iterations", iterations);
        span.attr("converged", res.converged);
        span.attr("final_residual", res.trace.final_residual());
        span.attr("residual_history", res.trace.history.as_slice());
    }
    let registry = irf_trace::registry();
    registry.gauge_set("irf_pcg_iterations", &[], iterations as f64);
    registry.counter_add("irf_pcg_iterations_total", &[], iterations as f64);
    registry.counter_add("irf_pcg_solves_total", &[], 1.0);
    if res.converged {
        registry.counter_add("irf_pcg_converged_total", &[], 1.0);
    }
}

fn finish_iterative(res: crate::cg::CgResult, setup: f64, solve: f64) -> SolveReport {
    SolveReport {
        converged: res.converged,
        iterations: res.trace.iterations(),
        residual: res.trace.final_residual(),
        setup_seconds: setup,
        solve_seconds: solve,
        x: res.x,
        trace: res.trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet::TripletMatrix;

    fn grid(nx: usize, ny: usize) -> CsrMatrix {
        let n = nx * ny;
        let idx = |i: usize, j: usize| i * ny + j;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..nx {
            for j in 0..ny {
                if i + 1 < nx {
                    t.stamp_conductance(idx(i, j), idx(i + 1, j), 1.0);
                }
                if j + 1 < ny {
                    t.stamp_conductance(idx(i, j), idx(i, j + 1), 1.0);
                }
            }
        }
        // Pads at the four corners keep the system SPD.
        for &(i, j) in &[(0, 0), (0, ny - 1), (nx - 1, 0), (nx - 1, ny - 1)] {
            t.stamp_grounded_conductance(idx(i, j), 10.0);
        }
        t.to_csr()
    }

    #[test]
    fn all_solvers_agree() {
        let a = grid(10, 10);
        let b = vec![0.01; 100];
        let golden = Solver::new(SolverKind::Cholesky).solve(&a, &b);
        for kind in [
            SolverKind::Cg,
            SolverKind::JacobiPcg,
            SolverKind::Ic0Pcg,
            SolverKind::AmgPcg,
            SolverKind::AmgPcgVCycle,
        ] {
            let r = Solver::new(kind).with_tolerance(1e-10).solve(&a, &b);
            assert!(r.converged, "{kind:?} did not converge");
            for (p, q) in r.x.iter().zip(&golden.x) {
                assert!((p - q).abs() < 1e-6, "{kind:?} disagrees with Cholesky");
            }
        }
    }

    #[test]
    fn amg_pcg_uses_fewest_iterations() {
        let a = grid(24, 24);
        let b = vec![0.01; a.rows()];
        let cg = Solver::new(SolverKind::Cg).solve(&a, &b);
        let amg = Solver::new(SolverKind::AmgPcg).solve(&a, &b);
        assert!(amg.iterations < cg.iterations);
    }

    #[test]
    fn iteration_budget_caps_work() {
        let a = grid(24, 24);
        let b = vec![0.01; a.rows()];
        let r = Solver::new(SolverKind::AmgPcg)
            .with_tolerance(1e-14)
            .with_max_iterations(2)
            .solve(&a, &b);
        assert_eq!(r.iterations, 2);
        assert!(!r.converged);
        // A rough solution is already below the initial residual (the
        // 2-norm may transiently rise at k=1; PCG minimises the A-norm).
        assert!(r.residual < 1.0);
    }

    #[test]
    fn with_stopping_overrides_only_the_stopping_rule() {
        let a = grid(10, 10);
        let b = vec![0.01; 100];
        let setup = Solver::new(SolverKind::AmgPcg)
            .with_tolerance(1e-12)
            .with_max_iterations(50)
            .prepare(&a);
        let loose = setup.with_stopping(1e-3, 7);
        assert_eq!(loose.tolerance(), 1e-3);
        assert_eq!(loose.max_iterations(), 7);
        assert_eq!(loose.kind(), setup.kind());
        assert_eq!(loose.dim(), setup.dim());
        // Warm-started under the loose rule, a converged solution
        // should exit immediately; the strict setup keeps iterating.
        let cold = setup.solve(&a, &b);
        let warm = loose.solve_with_guess(&a, &b, cold.x.clone());
        assert!(warm.iterations <= 1);
        assert!(warm.iterations < cold.iterations);
    }

    #[test]
    fn warm_start_is_accepted() {
        let a = grid(8, 8);
        let b = vec![0.02; 64];
        let cold = Solver::new(SolverKind::AmgPcg)
            .with_tolerance(1e-11)
            .solve(&a, &b);
        let warm = Solver::new(SolverKind::AmgPcg)
            .with_tolerance(1e-10)
            .solve_with_guess(&a, &b, cold.x.clone());
        assert!(warm.iterations <= 1);
    }

    #[test]
    fn report_carries_timings() {
        let a = grid(8, 8);
        let b = vec![0.02; 64];
        let r = Solver::new(SolverKind::AmgPcg).solve(&a, &b);
        assert!(r.setup_seconds >= 0.0 && r.solve_seconds >= 0.0);
        assert!(!r.trace.history.is_empty());
    }

    #[test]
    fn amg_pcg_publishes_solver_telemetry() {
        let a = grid(10, 10);
        let b = vec![0.01; 100];
        let collector = irf_trace::Collector::install();
        let r = Solver::new(SolverKind::AmgPcg).solve(&a, &b);
        if let Some(collector) = collector {
            // Other tests in this binary may run concurrently and add
            // their own solver spans; look for one matching *this*
            // solve's iteration count.
            let trace = collector.finish();
            let pcg = trace
                .events
                .iter()
                .find(|e| {
                    e.name == "pcg_solve"
                        && e.args.contains(&(
                            "iterations",
                            irf_trace::AttrValue::U64(r.iterations as u64),
                        ))
                })
                .expect("pcg_solve span with matching iteration count");
            assert!(pcg.args.iter().any(|(k, v)| *k == "residual_history"
                && matches!(v, irf_trace::AttrValue::F64List(h) if h.len() == r.iterations + 1)));
            let setup = trace
                .events
                .iter()
                .find(|e| e.name == "amg_setup")
                .expect("amg_setup span");
            assert!(setup.args.iter().any(|(k, _)| *k == "levels"));
            assert!(setup.args.iter().any(|(k, _)| *k == "operator_complexity"));
        }
        let registry = irf_trace::registry();
        assert!(registry.get("irf_pcg_iterations", &[]).is_some());
        assert!(registry.get("irf_amg_levels", &[]).is_some());
        assert!(
            registry.get("irf_pcg_iterations_total", &[]).unwrap_or(0.0) >= r.iterations as f64
        );
    }

    #[test]
    fn prepared_setup_reused_across_rhs_is_bitwise_identical() {
        let a = grid(16, 16);
        let b1 = vec![0.01; a.rows()];
        let b2: Vec<f64> = (0..a.rows())
            .map(|i| 0.01 + (i % 7) as f64 * 1e-4)
            .collect();
        for kind in [
            SolverKind::Cg,
            SolverKind::JacobiPcg,
            SolverKind::Ic0Pcg,
            SolverKind::AmgPcg,
            SolverKind::AmgPcgVCycle,
            SolverKind::Cholesky,
        ] {
            let solver = Solver::new(kind)
                .with_tolerance(1e-12)
                .with_max_iterations(8);
            let setup = solver.prepare(&a);
            assert_eq!(setup.kind(), kind);
            assert_eq!(setup.dim(), a.rows());
            // Same prepared handle serves two different right-hand
            // sides, each bitwise identical to a one-shot cold solve.
            for b in [&b1, &b2] {
                let warm = setup.solve(&a, b);
                let cold = solver.solve(&a, b);
                assert_eq!(warm.x, cold.x, "{kind:?} warm != cold");
                assert_eq!(warm.iterations, cold.iterations);
            }
        }
    }

    #[test]
    fn rebuild_from_solves_bitwise_identical_to_cold_prepare() {
        let a = grid(16, 16);
        // Same-pattern conductance edit: re-stamp one interior strap at
        // a different resistance.
        let edited = {
            let n = a.rows();
            let mut t: Vec<(usize, usize, f64)> = a.iter().collect();
            for e in t.iter_mut() {
                if (e.0, e.1) == (5, 6) || (e.0, e.1) == (6, 5) {
                    e.2 *= 0.5; // off-diagonals: weaker coupling
                } else if e.0 == e.1 && (e.0 == 5 || e.0 == 6) {
                    e.2 -= 0.5; // diagonals keep the zero-row-sum stamp
                }
            }
            CsrMatrix::from_triplets(n, n, &t)
        };
        assert!(a.same_pattern(&edited));
        let b = vec![0.01; a.rows()];
        for kind in [
            SolverKind::AmgPcg,
            SolverKind::AmgPcgVCycle,
            SolverKind::Cholesky,
        ] {
            let solver = Solver::new(kind)
                .with_tolerance(1e-12)
                .with_max_iterations(8);
            let base = solver.prepare(&a);
            let warm = solver.rebuild_from(&base, &edited);
            let cold = solver.prepare(&edited);
            let wx = warm.solve(&edited, &b);
            let cx = cold.solve(&edited, &b);
            assert_eq!(wx.x, cx.x, "{kind:?} rebuilt warm != cold");
            assert_eq!(wx.iterations, cx.iterations);
        }
    }

    #[test]
    fn labels_are_distinct() {
        use std::collections::HashSet;
        let labels: HashSet<_> = [
            SolverKind::Cg,
            SolverKind::JacobiPcg,
            SolverKind::Ic0Pcg,
            SolverKind::AmgPcg,
            SolverKind::AmgPcgVCycle,
            SolverKind::Cholesky,
        ]
        .iter()
        .map(|k| k.label())
        .collect();
        assert_eq!(labels.len(), 6);
    }
}
