//! Plain (unpreconditioned) conjugate gradient.

use crate::csr::CsrMatrix;
use crate::vector::{axpy, dot, norm2, xpby};

/// Convergence trace of an iterative solve: one relative-residual entry
/// per iteration, starting with the initial residual.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConvergenceTrace {
    /// Relative residual history; `history[0]` is the initial value.
    pub history: Vec<f64>,
}

impl ConvergenceTrace {
    /// Final relative residual (or `inf` if no iterations ran).
    #[must_use]
    pub fn final_residual(&self) -> f64 {
        self.history.last().copied().unwrap_or(f64::INFINITY)
    }

    /// Number of iterations performed.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.history.len().saturating_sub(1)
    }
}

/// Result of a conjugate-gradient solve.
#[derive(Debug, Clone, PartialEq)]
pub struct CgResult {
    /// Approximate solution.
    pub x: Vec<f64>,
    /// `true` if the relative residual dropped below the tolerance.
    pub converged: bool,
    /// Per-iteration residual history.
    pub trace: ConvergenceTrace,
}

/// Solves the SPD system `A x = b` with plain conjugate gradient.
///
/// Iterates until the relative residual `||b - A x|| / ||b||` drops
/// below `tol` or `max_iter` iterations have run. A zero right-hand
/// side returns the zero solution immediately.
///
/// # Panics
///
/// Panics if `A` is not square or `b.len() != A.rows()`.
#[must_use]
pub fn conjugate_gradient(a: &CsrMatrix, b: &[f64], tol: f64, max_iter: usize) -> CgResult {
    assert_eq!(a.rows(), a.cols(), "cg: matrix must be square");
    assert_eq!(b.len(), a.rows(), "cg: rhs length mismatch");
    let n = b.len();
    let bnorm = norm2(b);
    let mut x = vec![0.0; n];
    if bnorm == 0.0 {
        return CgResult {
            x,
            converged: true,
            trace: ConvergenceTrace { history: vec![0.0] },
        };
    }
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut ap = vec![0.0; n];
    let mut rr = dot(&r, &r);
    let mut history = vec![rr.sqrt() / bnorm];
    let mut converged = history[0] < tol;
    let mut it = 0;
    while !converged && it < max_iter {
        a.spmv_into(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            break; // not SPD or numerical breakdown
        }
        let alpha = rr / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        let rr_new = dot(&r, &r);
        let beta = rr_new / rr;
        xpby(&r, beta, &mut p);
        rr = rr_new;
        it += 1;
        let rel = rr.sqrt() / bnorm;
        history.push(rel);
        converged = rel < tol;
    }
    CgResult {
        x,
        converged,
        trace: ConvergenceTrace { history },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplacian_2d(nx: usize, ny: usize) -> CsrMatrix {
        let n = nx * ny;
        let idx = |i: usize, j: usize| i * ny + j;
        let mut t = Vec::new();
        for i in 0..nx {
            for j in 0..ny {
                t.push((idx(i, j), idx(i, j), 4.0));
                if i + 1 < nx {
                    t.push((idx(i, j), idx(i + 1, j), -1.0));
                    t.push((idx(i + 1, j), idx(i, j), -1.0));
                }
                if j + 1 < ny {
                    t.push((idx(i, j), idx(i, j + 1), -1.0));
                    t.push((idx(i, j + 1), idx(i, j), -1.0));
                }
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn cg_solves_identity_in_one_step() {
        let a = CsrMatrix::identity(10);
        let b: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let res = conjugate_gradient(&a, &b, 1e-12, 10);
        assert!(res.converged);
        assert!(res.trace.iterations() <= 1);
        for (xi, bi) in res.x.iter().zip(&b) {
            assert!((xi - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn cg_solves_2d_laplacian() {
        let a = laplacian_2d(12, 12);
        let b = vec![1.0; a.rows()];
        let res = conjugate_gradient(&a, &b, 1e-10, 1000);
        assert!(res.converged);
        let mut r = vec![0.0; b.len()];
        a.residual_into(&b, &res.x, &mut r);
        assert!(crate::vector::norm2(&r) / crate::vector::norm2(&b) < 1e-9);
    }

    #[test]
    fn cg_zero_rhs_returns_zero() {
        let a = laplacian_2d(4, 4);
        let res = conjugate_gradient(&a, &[0.0; 16], 1e-10, 100);
        assert!(res.converged);
        assert!(res.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn cg_residual_history_is_monotone_overall() {
        let a = laplacian_2d(8, 8);
        let b = vec![1.0; 64];
        let res = conjugate_gradient(&a, &b, 1e-10, 500);
        let first = res.trace.history[0];
        let last = res.trace.final_residual();
        assert!(last < first);
    }

    #[test]
    fn cg_respects_iteration_budget() {
        let a = laplacian_2d(16, 16);
        let b = vec![1.0; 256];
        let res = conjugate_gradient(&a, &b, 1e-14, 3);
        assert!(!res.converged);
        assert_eq!(res.trace.iterations(), 3);
    }
}
