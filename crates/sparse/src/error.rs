//! Error types for the sparse solvers.

use std::error::Error;
use std::fmt;

/// Error returned by direct factorizations and solver entry points.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The matrix is not square (`rows != cols`).
    NotSquare {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// The right-hand side length does not match the matrix dimension.
    DimensionMismatch {
        /// Matrix dimension.
        expected: usize,
        /// Right-hand side length.
        found: usize,
    },
    /// Cholesky hit a non-positive pivot: the matrix is not positive
    /// definite (or is numerically singular).
    NotPositiveDefinite {
        /// Row at which the pivot failed.
        row: usize,
        /// The offending pivot value.
        pivot: f64,
    },
    /// An iterative method exhausted its iteration budget without
    /// reaching the requested tolerance.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
        /// Final relative residual.
        residual: f64,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square ({rows}x{cols})")
            }
            SolveError::DimensionMismatch { expected, found } => {
                write!(f, "rhs length {found} does not match dimension {expected}")
            }
            SolveError::NotPositiveDefinite { row, pivot } => {
                write!(f, "non-positive pivot {pivot:e} at row {row}")
            }
            SolveError::NotConverged {
                iterations,
                residual,
            } => {
                write!(
                    f,
                    "no convergence after {iterations} iterations (relative residual {residual:e})"
                )
            }
        }
    }
}

impl Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = SolveError::NotSquare { rows: 3, cols: 4 };
        assert_eq!(e.to_string(), "matrix is not square (3x4)");
        let e = SolveError::NotPositiveDefinite {
            row: 7,
            pivot: -1.0,
        };
        assert!(e.to_string().contains("row 7"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + std::error::Error>() {}
        assert_bounds::<SolveError>();
    }
}
