//! Sparse up-looking Cholesky factorization (the direct-solver
//! baseline, in the spirit of KLU/CHOLMOD's role in the paper).
//!
//! The factorization follows the classic CSparse recipe: an
//! elimination tree computed from the symmetric pattern, per-row
//! reach sets, and an up-looking numeric phase. The factor is the
//! golden reference used to label synthetic designs exactly.

use crate::csr::CsrMatrix;
use crate::error::SolveError;

const NONE: usize = usize::MAX;

/// A lower-triangular sparse Cholesky factor `A = L L^T`.
///
/// # Example
///
/// ```
/// use irf_sparse::{TripletMatrix, cholesky::CholeskyFactor};
///
/// let mut t = TripletMatrix::new(3, 3);
/// for i in 0..3 {
///     t.push(i, i, 2.0);
/// }
/// t.push(0, 1, -1.0);
/// t.push(1, 0, -1.0);
/// let a = t.to_csr();
/// let f = CholeskyFactor::factor(&a)?;
/// let x = f.solve(&[1.0, 0.0, 2.0]);
/// let r = a.spmv(&x);
/// assert!((r[0] - 1.0).abs() < 1e-12);
/// # Ok::<(), irf_sparse::SolveError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    n: usize,
    /// Strictly-lower entries of column `j`: row indices (ascending).
    col_rows: Vec<Vec<usize>>,
    /// Values parallel to `col_rows`.
    col_vals: Vec<Vec<f64>>,
    /// Diagonal of `L`.
    diag: Vec<f64>,
}

impl CholeskyFactor {
    /// Factors the SPD matrix `a`.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NotSquare`] for non-square input and
    /// [`SolveError::NotPositiveDefinite`] when a pivot is not strictly
    /// positive.
    pub fn factor(a: &CsrMatrix) -> Result<Self, SolveError> {
        if a.rows() != a.cols() {
            return Err(SolveError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let parent = etree(a);
        let mut col_rows: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut col_vals: Vec<Vec<f64>> = vec![Vec::new(); n];
        let mut diag = vec![0.0; n];
        let mut x = vec![0.0; n]; // dense scratch for the current row
        let mut mark = vec![NONE; n];
        let mut pattern: Vec<usize> = Vec::new();
        for k in 0..n {
            // Scatter the strictly-lower part of row k (== upper column
            // k by symmetry) into the scratch vector and gather the
            // reach set along the elimination tree.
            pattern.clear();
            mark[k] = k;
            let mut d = 0.0;
            let (cols, vals) = a.row(k);
            for (&c, &v) in cols.iter().zip(vals) {
                if c > k {
                    continue;
                }
                if c == k {
                    d = v;
                    continue;
                }
                x[c] = v;
                let mut i = c;
                while mark[i] != k {
                    mark[i] = k;
                    pattern.push(i);
                    i = parent[i];
                    if i == NONE {
                        break;
                    }
                }
            }
            // Up-looking: process reach in ascending column order
            // (valid topological order since parent[j] > j).
            pattern.sort_unstable();
            for &j in &pattern {
                let lkj = x[j] / diag[j];
                x[j] = 0.0;
                for (&i, &v) in col_rows[j].iter().zip(&col_vals[j]) {
                    x[i] -= v * lkj;
                }
                d -= lkj * lkj;
                col_rows[j].push(k);
                col_vals[j].push(lkj);
            }
            if d <= 0.0 {
                return Err(SolveError::NotPositiveDefinite { row: k, pivot: d });
            }
            diag[k] = d.sqrt();
        }
        Ok(CholeskyFactor {
            n,
            col_rows,
            col_vals,
            diag,
        })
    }

    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored non-zeros in `L` (including the diagonal).
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.n + self.col_rows.iter().map(Vec::len).sum::<usize>()
    }

    /// Solves `A x = b` via forward/backward substitution.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    #[must_use]
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "cholesky solve: rhs length mismatch");
        let mut y = b.to_vec();
        // Forward: L y = b (column-oriented).
        for j in 0..self.n {
            y[j] /= self.diag[j];
            let yj = y[j];
            for (&i, &v) in self.col_rows[j].iter().zip(&self.col_vals[j]) {
                y[i] -= v * yj;
            }
        }
        // Backward: L^T x = y.
        for j in (0..self.n).rev() {
            let mut s = y[j];
            for (&i, &v) in self.col_rows[j].iter().zip(&self.col_vals[j]) {
                s -= v * y[i];
            }
            y[j] = s / self.diag[j];
        }
        y
    }
}

/// Elimination tree of the symmetric matrix pattern: `parent[i]` is the
/// first row `> i` whose factor row touches column `i`.
fn etree(a: &CsrMatrix) -> Vec<usize> {
    let n = a.rows();
    let mut parent = vec![NONE; n];
    let mut ancestor = vec![NONE; n];
    for k in 0..n {
        let (cols, _) = a.row(k);
        for &c in cols {
            if c >= k {
                continue;
            }
            let mut i = c;
            while i != NONE && i < k {
                let next = ancestor[i];
                ancestor[i] = k;
                if next == NONE {
                    parent[i] = k;
                    break;
                }
                i = next;
            }
        }
    }
    parent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet::TripletMatrix;
    use crate::vector::norm2;

    fn laplacian_2d(nx: usize, ny: usize) -> CsrMatrix {
        let n = nx * ny;
        let idx = |i: usize, j: usize| i * ny + j;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..nx {
            for j in 0..ny {
                t.push(idx(i, j), idx(i, j), 4.1);
                if i + 1 < nx {
                    t.stamp_conductance(idx(i, j), idx(i + 1, j), 1.0);
                }
                if j + 1 < ny {
                    t.stamp_conductance(idx(i, j), idx(i, j + 1), 1.0);
                }
            }
        }
        t.to_csr()
    }

    #[test]
    fn factor_solve_roundtrip() {
        let a = laplacian_2d(9, 7);
        let f = CholeskyFactor::factor(&a).expect("SPD");
        let x_true: Vec<f64> = (0..a.rows()).map(|i| ((i * 3) % 11) as f64 - 5.0).collect();
        let b = a.spmv(&x_true);
        let x = f.solve(&b);
        let err: f64 = x
            .iter()
            .zip(&x_true)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        assert!(err / norm2(&x_true) < 1e-10, "relative error {err}");
    }

    #[test]
    fn identity_factors_to_identity() {
        let a = CsrMatrix::identity(5);
        let f = CholeskyFactor::factor(&a).expect("SPD");
        assert_eq!(f.nnz(), 5);
        let x = f.solve(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(x, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn non_square_is_rejected() {
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]);
        assert!(matches!(
            CholeskyFactor::factor(&a),
            Err(SolveError::NotSquare { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn indefinite_is_rejected() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, -1.0)]);
        assert!(matches!(
            CholeskyFactor::factor(&a),
            Err(SolveError::NotPositiveDefinite { row: 1, .. })
        ));
    }

    #[test]
    fn fill_in_is_bounded_by_dense() {
        let a = laplacian_2d(8, 8);
        let f = CholeskyFactor::factor(&a).expect("SPD");
        assert!(f.nnz() <= 64 * 65 / 2);
        assert!(f.nnz() >= a.nnz() / 2); // at least the lower triangle
    }

    #[test]
    fn solve_matches_cg() {
        let a = laplacian_2d(6, 6);
        let b = vec![1.0; 36];
        let x_dir = CholeskyFactor::factor(&a).expect("SPD").solve(&b);
        let x_cg = crate::cg::conjugate_gradient(&a, &b, 1e-12, 1000).x;
        for (p, q) in x_dir.iter().zip(&x_cg) {
            assert!((p - q).abs() < 1e-8);
        }
    }
}
