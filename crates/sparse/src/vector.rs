//! Small dense-vector helpers shared by the iterative solvers.
//!
//! These are free functions rather than a vector newtype: solver inner
//! loops want to operate on plain `&[f64]` buffers owned by the caller
//! (C-CALLER-CONTROL), and a wrapper type would add nothing but noise.

/// Elements per reduction chunk. Fixed so that chunk boundaries (and
/// therefore the order of floating-point accumulation) never depend on
/// the thread count: `dot`/`norm2` are bitwise identical at any
/// parallelism, and for inputs up to one chunk identical to a plain
/// serial fold.
const REDUCE_CHUNK: usize = 8192;

/// Elements per elementwise-update chunk (`axpy`/`xpby`). These kernels
/// touch each element independently, so chunking only bounds task size.
const UPDATE_CHUNK: usize = 16384;

/// Dot product of two equally sized slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    irf_runtime::par_reduce(
        x.len(),
        REDUCE_CHUNK,
        0.0,
        |r| {
            x[r.clone()]
                .iter()
                .zip(&y[r])
                .map(|(a, b)| a * b)
                .sum::<f64>()
        },
        |a, b| a + b,
    )
}

/// Euclidean (L2) norm.
#[must_use]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// `y += alpha * x` (the BLAS `axpy` kernel).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    irf_runtime::par_chunks_mut(y, UPDATE_CHUNK, |ci, yc| {
        let base = ci * UPDATE_CHUNK;
        for (yi, xi) in yc.iter_mut().zip(&x[base..]) {
            *yi += alpha * xi;
        }
    });
}

/// `y = x + beta * y` (the update used for CG search directions).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xpby(x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "xpby: length mismatch");
    irf_runtime::par_chunks_mut(y, UPDATE_CHUNK, |ci, yc| {
        let base = ci * UPDATE_CHUNK;
        for (yi, xi) in yc.iter_mut().zip(&x[base..]) {
            *yi = xi + beta * *yi;
        }
    });
}

/// Copies `src` into `dst`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn copy(src: &[f64], dst: &mut [f64]) {
    dst.copy_from_slice(src);
}

/// Maximum absolute entry (infinity norm); `0.0` for an empty slice.
#[must_use]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_orthogonal() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn dot_simple() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn norm2_pythagoras() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
    }

    #[test]
    fn xpby_updates_direction() {
        let mut y = vec![1.0, 2.0];
        xpby(&[10.0, 10.0], 0.5, &mut y);
        assert_eq!(y, vec![10.5, 11.0]);
    }

    #[test]
    fn norm_inf_picks_max_abs() {
        assert_eq!(norm_inf(&[1.0, -7.0, 3.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
