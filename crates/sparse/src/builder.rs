//! Two-pass, memory-lean CSR assembly.
//!
//! [`crate::TripletMatrix`] buffers every contribution as a
//! `(usize, usize, f64)` triplet — 24 bytes per entry — before
//! converting to CSR, which at million-node scale means hundreds of
//! megabytes of scratch that exists only to be bucket-sorted and
//! thrown away. [`CsrAssembler`] removes the triplet buffer with the
//! classic two-pass scheme:
//!
//! 1. **Count pass** — walk the stamp sources once, incrementing
//!    per-row entry counts (no values stored).
//! 2. **Fill pass** — prefix-sum the counts into bucket offsets,
//!    allocate one exactly-sized `(col, value)` array (16 bytes per
//!    entry, no row index), and walk the sources a second time
//!    writing each contribution directly into its row bucket.
//!
//! The bucketed array then finishes through the same
//! parallel-sort + serial-merge back half as
//! [`CsrMatrix::from_triplets`] ([`CsrMatrix::from_bucketed`]), so a
//! two-pass assembly is **bitwise identical** to the triplet path
//! whenever the fill pass pushes contributions in the same order the
//! triplet path would have: bucket sort preserves per-row insertion
//! order, and per-row insertion order is all the stable column sort
//! and duplicate merge can observe.
//!
//! The stamp helpers ([`CsrAssembler::count_conductance`] /
//! [`CsrAssembler::stamp_conductance`] and friends) mirror
//! [`crate::TripletMatrix::stamp_conductance`]'s exact push order so
//! MNA assembly in `irf-pg` can swap paths without perturbing a single
//! bit.

use crate::csr::CsrMatrix;

/// Incremental two-pass CSR builder; see the [module docs](self).
///
/// # Example
///
/// ```
/// use irf_sparse::{CsrAssembler, CsrMatrix};
///
/// let mut asm = CsrAssembler::new(2, 2);
/// asm.count_conductance(0, 1);
/// asm.begin_fill();
/// asm.stamp_conductance(0, 1, 2.0);
/// let a = asm.finish();
///
/// let mut t = irf_sparse::TripletMatrix::new(2, 2);
/// t.stamp_conductance(0, 1, 2.0);
/// assert_eq!(a, t.to_csr());
/// ```
#[derive(Debug, Clone)]
pub struct CsrAssembler {
    rows: usize,
    cols: usize,
    /// During the count pass: `offsets[r + 1]` accumulates row `r`'s
    /// entry count. After [`CsrAssembler::begin_fill`]: the prefix-sum
    /// bucket offsets (`rows + 1` entries).
    offsets: Vec<usize>,
    /// Per-row write cursors for the fill pass (empty until
    /// `begin_fill`).
    cursor: Vec<usize>,
    /// Row-bucketed `(col, value)` entries (empty until `begin_fill`).
    entries: Vec<(usize, f64)>,
    filling: bool,
}

impl CsrAssembler {
    /// Starts a two-pass assembly of a `rows x cols` matrix in the
    /// count pass.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        CsrAssembler {
            rows,
            cols,
            offsets: vec![0usize; rows + 1],
            cursor: Vec::new(),
            entries: Vec::new(),
            filling: false,
        }
    }

    /// Count pass: one future entry in row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds or the fill pass has begun.
    pub fn count_entry(&mut self, r: usize) {
        assert!(!self.filling, "count_entry after begin_fill");
        assert!(r < self.rows, "row {r} out of bounds");
        self.offsets[r + 1] += 1;
    }

    /// Count pass twin of [`CsrAssembler::stamp_conductance`]: a
    /// conductance between interior unknowns `a` and `b` contributes
    /// two entries to each of their rows.
    ///
    /// # Panics
    ///
    /// See [`CsrAssembler::count_entry`].
    pub fn count_conductance(&mut self, a: usize, b: usize) {
        self.count_entry(a);
        self.count_entry(a);
        self.count_entry(b);
        self.count_entry(b);
    }

    /// Count pass twin of [`CsrAssembler::stamp_grounded`]: one
    /// diagonal entry.
    ///
    /// # Panics
    ///
    /// See [`CsrAssembler::count_entry`].
    pub fn count_grounded(&mut self, a: usize) {
        self.count_entry(a);
    }

    /// Ends the count pass: prefix-sums the counts into bucket
    /// offsets and allocates the exactly-sized entry array. Stamp
    /// calls are accepted after this.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn begin_fill(&mut self) {
        assert!(!self.filling, "begin_fill called twice");
        for i in 0..self.rows {
            self.offsets[i + 1] += self.offsets[i];
        }
        self.cursor = self.offsets[..self.rows].to_vec();
        self.entries = vec![(0usize, 0.0f64); self.offsets[self.rows]];
        self.filling = true;
    }

    /// Fill pass: writes one `(r, c, v)` contribution into row `r`'s
    /// bucket. Duplicates accumulate at [`CsrAssembler::finish`] in
    /// push order, exactly like [`crate::TripletMatrix::push`].
    ///
    /// # Panics
    ///
    /// Panics if out of bounds, before `begin_fill`, or when row `r`
    /// receives more entries than were counted for it.
    pub fn push(&mut self, r: usize, c: usize, v: f64) {
        assert!(self.filling, "push before begin_fill");
        assert!(
            r < self.rows && c < self.cols,
            "entry ({r},{c}) out of bounds"
        );
        let k = self.cursor[r];
        assert!(
            k < self.offsets[r + 1],
            "row {r} overflows its counted entries"
        );
        self.entries[k] = (c, v);
        self.cursor[r] = k + 1;
    }

    /// Fill pass: stamps conductance `g` between interior unknowns `a`
    /// and `b` in the same push order as
    /// [`crate::TripletMatrix::stamp_conductance`] — diagonal `a`,
    /// diagonal `b`, then the two off-diagonals — so assemblies are
    /// bitwise interchangeable between the two paths.
    ///
    /// # Panics
    ///
    /// See [`CsrAssembler::push`].
    pub fn stamp_conductance(&mut self, a: usize, b: usize, g: f64) {
        self.push(a, a, g);
        self.push(b, b, g);
        self.push(a, b, -g);
        self.push(b, a, -g);
    }

    /// Fill pass: stamps conductance `g` from unknown `a` to ground
    /// (diagonal only), mirroring
    /// [`crate::TripletMatrix::stamp_grounded_conductance`].
    ///
    /// # Panics
    ///
    /// See [`CsrAssembler::push`].
    pub fn stamp_grounded(&mut self, a: usize, g: f64) {
        self.push(a, a, g);
    }

    /// Finishes assembly: every row must have received exactly the
    /// entries it counted. Sorting, duplicate merging and exact-zero
    /// dropping run through [`CsrMatrix::from_bucketed`], the same
    /// back half as [`CsrMatrix::from_triplets`].
    ///
    /// # Panics
    ///
    /// Panics if `begin_fill` was never called or some row is
    /// underfilled.
    #[must_use]
    pub fn finish(self) -> CsrMatrix {
        assert!(self.filling, "finish before begin_fill");
        for r in 0..self.rows {
            assert!(
                self.cursor[r] == self.offsets[r + 1],
                "row {r} underfilled: {} of {} counted entries",
                self.cursor[r] - self.offsets[r],
                self.offsets[r + 1] - self.offsets[r],
            );
        }
        CsrMatrix::from_bucketed(self.rows, self.cols, &self.offsets, self.entries)
    }

    /// Number of rows of the matrix under assembly.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the matrix under assembly.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entries counted so far (count pass) or allocated (fill pass).
    #[must_use]
    pub fn counted(&self) -> usize {
        if self.filling {
            self.offsets[self.rows]
        } else {
            self.offsets.iter().sum()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet::TripletMatrix;

    /// Pseudo-random but deterministic segment list exercising
    /// duplicates (parallel segments) and grounded stamps.
    fn segments(n: usize, count: usize) -> Vec<(usize, usize, f64)> {
        let mut s = 0x9e3779b97f4a7c15u64;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (s >> 33) as usize % n;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = (s >> 33) as usize % n;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let g = 0.25 + ((s >> 40) as f64) / 65536.0;
            out.push((a, b, g));
        }
        out
    }

    #[test]
    fn matches_triplet_path_bitwise() {
        let n = 200;
        let segs = segments(n, 1500);
        let mut t = TripletMatrix::with_capacity(n, n, 4 * segs.len());
        let mut asm = CsrAssembler::new(n, n);
        for &(a, b, _) in &segs {
            if a == b {
                asm.count_grounded(a);
            } else {
                asm.count_conductance(a, b);
            }
        }
        asm.begin_fill();
        for &(a, b, g) in &segs {
            if a == b {
                t.stamp_grounded_conductance(a, g);
                asm.stamp_grounded(a, g);
            } else {
                t.stamp_conductance(a, b, g);
                asm.stamp_conductance(a, b, g);
            }
        }
        let via_triplets = t.to_csr();
        let via_assembler = asm.finish();
        assert_eq!(via_triplets, via_assembler);
        // Bitwise, not just approximately: compare raw value bits.
        let bits_t: Vec<u64> = via_triplets.values().iter().map(|v| v.to_bits()).collect();
        let bits_a: Vec<u64> = via_assembler.values().iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_t, bits_a);
    }

    #[test]
    fn duplicate_cancellation_drops_entries_like_from_triplets() {
        let mut asm = CsrAssembler::new(2, 2);
        asm.count_entry(0);
        asm.count_entry(0);
        asm.count_entry(1);
        asm.begin_fill();
        asm.push(0, 1, 3.0);
        asm.push(0, 1, -3.0); // sums to exact zero -> dropped
        asm.push(1, 1, 2.0);
        let a = asm.finish();
        let b = CsrMatrix::from_triplets(2, 2, &[(0, 1, 3.0), (0, 1, -3.0), (1, 1, 2.0)]);
        assert_eq!(a, b);
        assert_eq!(a.nnz(), 1);
    }

    #[test]
    fn empty_assembly_produces_empty_matrix() {
        let mut asm = CsrAssembler::new(3, 3);
        asm.begin_fill();
        let a = asm.finish();
        assert_eq!(a.rows(), 3);
        assert_eq!(a.nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "underfilled")]
    fn underfill_is_caught() {
        let mut asm = CsrAssembler::new(2, 2);
        asm.count_entry(0);
        asm.begin_fill();
        let _ = asm.finish();
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn overfill_is_caught() {
        let mut asm = CsrAssembler::new(2, 2);
        asm.count_entry(0);
        asm.begin_fill();
        asm.push(0, 0, 1.0);
        asm.push(0, 1, 1.0);
    }
}
