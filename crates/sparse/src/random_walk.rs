//! Monte-Carlo random-walk solver (Qian, Nassif & Sapatnekar, TCAD'05).
//!
//! For the reduced conductance system `G x = b` of a power grid, each
//! row satisfies `x_i = sum_j p_ij x_j + b_i / g_ii` with transition
//! probabilities `p_ij = -g_ij / g_ii`, and the slack
//! `1 - sum_j p_ij` is the probability of absorption at a voltage pad
//! (whose contribution was folded into the diagonal, i.e. potential 0
//! in IR-drop coordinates). A walker started at node `i` therefore
//! accumulates `b / g` rewards along its path until absorption, and
//! the expected accumulated reward equals `x_i`.
//!
//! This is a *baseline* included because the paper cites it as one of
//! the classic iterative alternatives; it shines when only a handful
//! of node voltages are needed.

use crate::csr::CsrMatrix;
use irf_runtime::Xoshiro256pp;

/// Configuration of the random-walk estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomWalkConfig {
    /// Number of walks averaged per queried node.
    pub walks_per_node: usize,
    /// Hard cap on the length of a single walk (guards against grids
    /// with very weak pad coupling).
    pub max_steps: usize,
    /// RNG seed, for reproducibility.
    pub seed: u64,
}

impl Default for RandomWalkConfig {
    fn default() -> Self {
        RandomWalkConfig {
            walks_per_node: 2000,
            max_steps: 100_000,
            seed: 0x1337,
        }
    }
}

/// A prepared random-walk solver over a fixed matrix.
#[derive(Debug, Clone)]
pub struct RandomWalkSolver<'a> {
    a: &'a CsrMatrix,
    config: RandomWalkConfig,
    /// Per-node reward `b_i / g_ii` is computed on the fly from the rhs.
    inv_diag: Vec<f64>,
    /// Cumulative transition probabilities per row, parallel to the
    /// off-diagonal pattern, plus the absorption slack at the end.
    cum_probs: Vec<Vec<(usize, f64)>>,
}

impl<'a> RandomWalkSolver<'a> {
    /// Prepares the transition tables for `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square, has a non-positive diagonal entry,
    /// or has a positive off-diagonal (not an M-matrix).
    #[must_use]
    pub fn new(a: &'a CsrMatrix, config: RandomWalkConfig) -> Self {
        assert_eq!(a.rows(), a.cols(), "random walk: matrix must be square");
        let n = a.rows();
        let mut inv_diag = vec![0.0; n];
        let mut cum_probs = Vec::with_capacity(n);
        for (i, inv_d) in inv_diag.iter_mut().enumerate() {
            let (cols, vals) = a.row(i);
            let mut diag = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                if c == i {
                    diag = v;
                }
            }
            assert!(diag > 0.0, "random walk: non-positive diagonal at {i}");
            *inv_d = 1.0 / diag;
            let mut cum = 0.0;
            let mut row = Vec::new();
            for (&c, &v) in cols.iter().zip(vals) {
                if c == i {
                    continue;
                }
                assert!(v <= 0.0, "random walk: positive off-diagonal at ({i},{c})");
                cum += -v / diag;
                row.push((c, cum));
            }
            cum_probs.push(row);
        }
        RandomWalkSolver {
            a,
            config,
            inv_diag,
            cum_probs,
        }
    }

    /// Estimates `x[node]` of `A x = b` by Monte-Carlo walks.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds or `b.len()` mismatches.
    #[must_use]
    pub fn solve_node(&self, b: &[f64], node: usize) -> f64 {
        assert_eq!(b.len(), self.a.rows(), "random walk: rhs mismatch");
        assert!(node < self.a.rows(), "random walk: node out of bounds");
        let mut rng = Xoshiro256pp::seed_from_u64(
            self.config.seed ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut total = 0.0;
        for _ in 0..self.config.walks_per_node {
            total += self.one_walk(b, node, &mut rng);
        }
        total / self.config.walks_per_node as f64
    }

    /// Estimates the full solution vector (one set of walks per node).
    ///
    /// This is intentionally naive — the point of the baseline is its
    /// per-node cost profile, not full-grid throughput.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` mismatches the dimension.
    #[must_use]
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        (0..self.a.rows()).map(|i| self.solve_node(b, i)).collect()
    }

    fn one_walk(&self, b: &[f64], start: usize, rng: &mut Xoshiro256pp) -> f64 {
        let mut node = start;
        let mut reward = 0.0;
        for _ in 0..self.config.max_steps {
            reward += b[node] * self.inv_diag[node];
            let u: f64 = rng.random();
            let row = &self.cum_probs[node];
            // Find the first neighbour whose cumulative probability
            // exceeds u; beyond the last entry the walker is absorbed.
            match row.iter().find(|&&(_, cum)| u < cum) {
                Some(&(next, _)) => node = next,
                None => return reward, // absorbed at a pad
            }
        }
        reward
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet::TripletMatrix;

    /// 1-D chain of unit resistors with both ends tied to pads.
    fn grounded_chain(n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            if i + 1 < n {
                t.stamp_conductance(i, i + 1, 1.0);
            }
        }
        t.stamp_grounded_conductance(0, 1.0);
        t.stamp_grounded_conductance(n - 1, 1.0);
        t.to_csr()
    }

    #[test]
    fn walk_matches_direct_solution_on_chain() {
        let a = grounded_chain(8);
        let b = vec![0.1; 8];
        let exact = crate::cholesky::CholeskyFactor::factor(&a)
            .expect("SPD")
            .solve(&b);
        let solver = RandomWalkSolver::new(
            &a,
            RandomWalkConfig {
                walks_per_node: 20_000,
                ..RandomWalkConfig::default()
            },
        );
        for node in [0, 3, 7] {
            let est = solver.solve_node(&b, node);
            assert!(
                (est - exact[node]).abs() < 0.05 * exact[node].abs().max(0.01),
                "node {node}: est {est} vs exact {}",
                exact[node]
            );
        }
    }

    #[test]
    fn zero_rhs_gives_zero() {
        let a = grounded_chain(5);
        let solver = RandomWalkSolver::new(&a, RandomWalkConfig::default());
        assert_eq!(solver.solve_node(&[0.0; 5], 2), 0.0);
    }

    #[test]
    fn estimates_are_reproducible() {
        let a = grounded_chain(6);
        let b = vec![0.2; 6];
        let solver = RandomWalkSolver::new(&a, RandomWalkConfig::default());
        assert_eq!(solver.solve_node(&b, 3), solver.solve_node(&b, 3));
    }

    #[test]
    #[should_panic(expected = "positive off-diagonal")]
    fn non_m_matrix_is_rejected() {
        let a =
            CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 0.5), (1, 0, 0.5), (1, 1, 1.0)]);
        let _ = RandomWalkSolver::new(&a, RandomWalkConfig::default());
    }
}
