//! Coordinate-format (COO) assembly matrix.
//!
//! Modified nodal analysis stamps each circuit element independently, so
//! the natural assembly format is a bag of `(row, col, value)` triplets
//! with duplicates summed. [`TripletMatrix::to_csr`] compresses the bag
//! into a [`CsrMatrix`] for the solvers.

use crate::csr::CsrMatrix;

/// A growable coordinate-format sparse matrix used for assembly.
///
/// Duplicate entries are allowed and are summed during conversion to
/// CSR, matching the semantics of MNA stamping.
///
/// # Example
///
/// ```
/// use irf_sparse::TripletMatrix;
///
/// let mut t = TripletMatrix::new(2, 2);
/// t.push(0, 0, 1.0);
/// t.push(0, 0, 2.0); // duplicate: summed
/// t.push(1, 1, 4.0);
/// let a = t.to_csr();
/// assert_eq!(a.get(0, 0), 3.0);
/// assert_eq!(a.get(1, 1), 4.0);
/// assert_eq!(a.get(0, 1), 0.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TripletMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletMatrix {
    /// Creates an empty `rows x cols` assembly matrix.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        TripletMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty matrix with room for `cap` entries.
    #[must_use]
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        TripletMatrix {
            rows,
            cols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of raw (possibly duplicate) entries pushed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no entries have been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends one `(row, col, value)` entry.
    ///
    /// Zero values are kept (they may cancel later duplicates), but
    /// entries that sum to exactly zero are dropped by [`to_csr`].
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    ///
    /// [`to_csr`]: TripletMatrix::to_csr
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "triplet ({row},{col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.entries.push((row, col, value));
    }

    /// Stamps a two-terminal conductance `g` between nodes `a` and `b`
    /// (the classic MNA resistor stamp): adds `g` to the two diagonal
    /// entries and `-g` to the two off-diagonals.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of bounds, or if the matrix is not
    /// square.
    pub fn stamp_conductance(&mut self, a: usize, b: usize, g: f64) {
        assert_eq!(
            self.rows, self.cols,
            "conductance stamp needs a square matrix"
        );
        self.push(a, a, g);
        self.push(b, b, g);
        self.push(a, b, -g);
        self.push(b, a, -g);
    }

    /// Adds `g` to the diagonal entry of node `a` — the stamp for a
    /// conductance from `a` to a Dirichlet (eliminated) node such as a
    /// voltage pad.
    pub fn stamp_grounded_conductance(&mut self, a: usize, g: f64) {
        self.push(a, a, g);
    }

    /// Compresses into CSR, summing duplicates and dropping entries
    /// whose sum is exactly zero.
    #[must_use]
    pub fn to_csr(&self) -> CsrMatrix {
        CsrMatrix::from_triplets(self.rows, self.cols, &self.entries)
    }

    /// Compresses into CSR by scatter-adding into `pattern`'s sparsity
    /// structure, skipping the sort `to_csr` performs.
    ///
    /// Returns `None` if any entry falls outside the pattern or any
    /// accumulated value is exactly zero (cases where [`to_csr`] would
    /// produce a different structure); the caller should then fall back
    /// to a full assembly. On `Some`, the result is bitwise identical
    /// to [`to_csr`] because both sum duplicates in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `pattern`'s shape differs from this matrix's.
    ///
    /// [`to_csr`]: TripletMatrix::to_csr
    #[must_use]
    pub fn to_csr_with_pattern(&self, pattern: &CsrMatrix) -> Option<CsrMatrix> {
        assert_eq!(
            (pattern.rows(), pattern.cols()),
            (self.rows, self.cols),
            "pattern shape mismatch"
        );
        CsrMatrix::from_triplets_with_pattern(pattern, &self.entries)
    }

    /// Iterates over the raw entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(usize, usize, f64)> {
        self.entries.iter()
    }
}

impl Extend<(usize, usize, f64)> for TripletMatrix {
    fn extend<I: IntoIterator<Item = (usize, usize, f64)>>(&mut self, iter: I) {
        for (r, c, v) in iter {
            self.push(r, c, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let t = TripletMatrix::new(3, 3);
        assert!(t.is_empty());
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 3);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut t = TripletMatrix::new(1, 1);
        t.push(0, 0, 1.5);
        t.push(0, 0, 2.5);
        assert_eq!(t.to_csr().get(0, 0), 4.0);
    }

    #[test]
    fn cancelling_duplicates_are_dropped() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 1, 1.0);
        t.push(0, 1, -1.0);
        t.push(0, 0, 1.0);
        let a = t.to_csr();
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.get(0, 1), 0.0);
    }

    #[test]
    fn conductance_stamp_is_symmetric_and_zero_row_sum() {
        let mut t = TripletMatrix::new(3, 3);
        t.stamp_conductance(0, 2, 4.0);
        let a = t.to_csr();
        assert_eq!(a.get(0, 0), 4.0);
        assert_eq!(a.get(2, 2), 4.0);
        assert_eq!(a.get(0, 2), -4.0);
        assert_eq!(a.get(2, 0), -4.0);
        // Row sums are zero for a floating resistor network.
        for r in 0..3 {
            let sum: f64 = (0..3).map(|c| a.get(r, c)).sum();
            assert!(sum.abs() < 1e-15);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_out_of_bounds_panics() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(2, 0, 1.0);
    }

    #[test]
    fn extend_collects_triplets() {
        let mut t = TripletMatrix::new(2, 2);
        t.extend([(0, 0, 1.0), (1, 1, 2.0)]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn pattern_assembly_matches_full_assembly() {
        let mut base = TripletMatrix::new(3, 3);
        base.stamp_conductance(0, 1, 2.0);
        base.stamp_conductance(1, 2, 3.0);
        base.stamp_grounded_conductance(0, 5.0);
        let pattern = base.to_csr();

        let mut edited = TripletMatrix::new(3, 3);
        edited.stamp_conductance(0, 1, 2.0);
        edited.stamp_conductance(1, 2, 4.5); // resistance edit
        edited.stamp_grounded_conductance(0, 5.0);
        let fast = edited.to_csr_with_pattern(&pattern).expect("same pattern");
        assert_eq!(fast, edited.to_csr());

        // A new connection is outside the pattern: decline.
        let mut rewired = TripletMatrix::new(3, 3);
        rewired.stamp_conductance(0, 2, 1.0);
        assert!(rewired.to_csr_with_pattern(&pattern).is_none());
    }
}
