//! Compressed sparse row (CSR) matrix.

use std::sync::{Arc, OnceLock};

use crate::sell::SellPlan;

/// Cuts `0..rows` into nnz-balanced chunks: each chunk accumulates at
/// least an autotuned cost budget (one unit per stored non-zero plus
/// one per row) before the next boundary. Returned in `row_ptr` style
/// (`[0, ..., rows]`), ready for
/// [`irf_runtime::par_ragged_chunks_mut`]. Skewed rows (a few dense
/// pad rows among thousands of sparse ones) therefore no longer
/// straggle one worker the way fixed row-count chunks did.
///
/// The per-chunk budget comes from
/// [`irf_runtime::autotuned_chunk_cost`], replacing the old fixed
/// 8192-unit threshold: million-node grids no longer shatter into
/// hundreds of thousands of dispatch-bound micro-chunks, and coarse
/// AMG levels no longer collapse to a single serial chunk. The budget
/// is a pure function of the matrix structure (total cost), never the
/// thread count, so chunk boundaries — and with them SELL group
/// layout and reduction order — stay bitwise stable.
fn nnz_balanced_chunks(rows: usize, row_ptr: &[usize]) -> Vec<usize> {
    let total = row_ptr[rows] + rows;
    let budget = irf_runtime::autotuned_chunk_cost(total);
    let mut bounds = Vec::with_capacity(total / budget.max(1) + 2);
    bounds.push(0);
    let mut cost = 0usize;
    for r in 0..rows {
        cost += row_ptr[r + 1] - row_ptr[r] + 1;
        if cost >= budget {
            bounds.push(r + 1);
            cost = 0;
        }
    }
    if *bounds.last().expect("non-empty") != rows {
        bounds.push(rows);
    }
    bounds
}

/// An immutable sparse matrix in compressed sparse row format.
///
/// This is the workhorse storage for the conductance systems produced
/// by modified nodal analysis. Column indices within each row are kept
/// sorted and unique, which the solvers and the AMG setup rely on.
///
/// # Example
///
/// ```
/// use irf_sparse::CsrMatrix;
///
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (0, 1, -1.0), (1, 1, 2.0)]);
/// let y = a.spmv(&[1.0, 1.0]);
/// assert_eq!(y, vec![1.0, 2.0]);
/// ```
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row pointers, length `rows + 1`.
    row_ptr: Vec<usize>,
    /// Column indices, sorted within each row.
    col_idx: Vec<usize>,
    /// Non-zero values, parallel to `col_idx`.
    values: Vec<f64>,
    /// nnz-balanced row-chunk boundaries for the parallel kernels
    /// (`row_ptr` style), precomputed from the structure at
    /// construction.
    row_chunks: Vec<usize>,
    /// Lazily built SELL-4 repacking for the SIMD SpMV path. Clones
    /// share it (values are immutable); constructors that produce new
    /// values start empty.
    sell: OnceLock<Arc<SellPlan>>,
}

/// Equality is semantic — shape, structure and values — and ignores
/// the derived SIMD plan cache.
impl PartialEq for CsrMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.row_ptr == other.row_ptr
            && self.col_idx == other.col_idx
            && self.values == other.values
    }
}

impl CsrMatrix {
    /// Builds a CSR matrix from `(row, col, value)` triplets, summing
    /// duplicates and dropping entries whose sum is exactly zero.
    ///
    /// # Panics
    ///
    /// Panics if any triplet is out of bounds.
    #[must_use]
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        // Count entries per row (with duplicates) to size buckets.
        let mut counts = vec![0usize; rows + 1];
        for &(r, c, _) in triplets {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of bounds");
            counts[r + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        // Bucket sort triplets into rows.
        let mut cursor = counts.clone();
        let mut entries: Vec<(usize, f64)> = vec![(0, 0.0); triplets.len()];
        for &(r, c, v) in triplets {
            entries[cursor[r]] = (c, v);
            cursor[r] += 1;
        }
        Self::from_bucketed(rows, cols, &counts, entries)
    }

    /// Finishes assembly from already row-bucketed `(col, value)`
    /// entries: `offsets` is a `rows + 1` prefix array delimiting each
    /// row's slice of `entries`, with entries in per-row insertion
    /// order. This is the shared back half of
    /// [`CsrMatrix::from_triplets`] and the two-pass
    /// [`crate::CsrAssembler`], so both produce bitwise-identical
    /// matrices from the same per-row entry sequences.
    ///
    /// Each row is sorted by column in parallel — one ragged piece per
    /// row, each sorted by the same serial routine, so the result is
    /// identical at any thread count. This is the dominant cost of
    /// assembly (and of the AMG Galerkin triple product, which funnels
    /// through here). The sort must be *stable*: duplicate (row, col)
    /// contributions then merge in insertion order, which is exactly
    /// the order [`CsrMatrix::from_triplets_with_pattern`]
    /// scatter-adds them — the bitwise-identity contract of
    /// incremental re-assembly. Duplicates are summed and exact-zero
    /// sums dropped.
    pub(crate) fn from_bucketed(
        rows: usize,
        cols: usize,
        offsets: &[usize],
        mut entries: Vec<(usize, f64)>,
    ) -> Self {
        debug_assert_eq!(offsets.len(), rows + 1);
        debug_assert_eq!(*offsets.last().unwrap_or(&0), entries.len());
        irf_runtime::par_ragged_chunks_mut(&mut entries, offsets, |_r, row| {
            row.sort_by_key(|&(c, _)| c);
        });
        // Merge duplicates row by row (cheap linear scan).
        let mut row_ptr = vec![0usize; rows + 1];
        let mut out_c: Vec<usize> = Vec::with_capacity(entries.len());
        let mut out_v: Vec<f64> = Vec::with_capacity(entries.len());
        for r in 0..rows {
            let row = &entries[offsets[r]..offsets[r + 1]];
            let mut i = 0;
            while i < row.len() {
                let c = row[i].0;
                let mut v = 0.0;
                while i < row.len() && row[i].0 == c {
                    v += row[i].1;
                    i += 1;
                }
                if v != 0.0 {
                    out_c.push(c);
                    out_v.push(v);
                }
            }
            row_ptr[r + 1] = out_c.len();
        }
        drop(entries);
        let row_chunks = nnz_balanced_chunks(rows, &row_ptr);
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx: out_c,
            values: out_v,
            row_chunks,
            sell: OnceLock::new(),
        }
    }

    /// Builds a CSR matrix from triplets by scatter-adding into the
    /// sparsity `pattern` of an existing matrix, skipping the per-row
    /// sort that dominates [`CsrMatrix::from_triplets`].
    ///
    /// This is the incremental re-assembly fast path: when only values
    /// changed (e.g. a strap/via resistance edit re-stamps the same
    /// circuit topology), the result is **bitwise identical** to a
    /// fresh `from_triplets` call — duplicates are accumulated in
    /// triplet order, the same order the stable sort in `from_triplets`
    /// preserves for equal columns.
    ///
    /// Returns `None` when the pattern cannot represent the triplets
    /// exactly: a triplet lands outside the pattern, or an accumulated
    /// value is exactly `0.0` (which `from_triplets` would have dropped,
    /// changing the pattern). Callers fall back to a full assembly.
    ///
    /// # Panics
    ///
    /// Panics if any triplet is out of bounds for the pattern's shape.
    #[must_use]
    pub fn from_triplets_with_pattern(
        pattern: &CsrMatrix,
        triplets: &[(usize, usize, f64)],
    ) -> Option<Self> {
        let rows = pattern.rows;
        let cols = pattern.cols;
        let mut values = vec![0.0f64; pattern.nnz()];
        for &(r, c, v) in triplets {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of bounds");
            let (s, e) = (pattern.row_ptr[r], pattern.row_ptr[r + 1]);
            let k = pattern.col_idx[s..e].binary_search(&c).ok()?;
            values[s + k] += v;
        }
        Self::with_pattern_values(pattern, values)
    }

    /// Wraps a fully accumulated `values` array (parallel to
    /// `pattern`'s stored entries) in the pattern's structure. Shared
    /// tail of every pattern-reuse assembly path
    /// ([`CsrMatrix::from_triplets_with_pattern`], the AMG
    /// pattern-reusing Galerkin product).
    ///
    /// Returns `None` when any accumulated value is exactly `0.0`: a
    /// full assembly would have dropped that entry, so the true
    /// pattern differs (including slots nothing touched) and the fast
    /// path must decline.
    pub(crate) fn with_pattern_values(pattern: &CsrMatrix, values: Vec<f64>) -> Option<Self> {
        debug_assert_eq!(values.len(), pattern.nnz());
        if values.contains(&0.0) {
            return None;
        }
        Some(CsrMatrix {
            rows: pattern.rows,
            cols: pattern.cols,
            row_ptr: pattern.row_ptr.clone(),
            col_idx: pattern.col_idx.clone(),
            values,
            row_chunks: pattern.row_chunks.clone(),
            // The values differ from the pattern's, so its cached SIMD
            // plan (which embeds values) must not be reused.
            sell: OnceLock::new(),
        })
    }

    /// `true` when `other` has exactly this matrix's sparsity pattern
    /// (shape, row pointers and column indices) regardless of values.
    #[must_use]
    pub fn same_pattern(&self, other: &CsrMatrix) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.row_ptr == other.row_ptr
            && self.col_idx == other.col_idx
    }

    /// Builds an `n x n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let row_ptr: Vec<usize> = (0..=n).collect();
        let row_chunks = nnz_balanced_chunks(n, &row_ptr);
        CsrMatrix {
            rows: n,
            cols: n,
            row_ptr,
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
            row_chunks,
            sell: OnceLock::new(),
        }
    }

    /// nnz-balanced row-chunk boundaries (`row_ptr` style) the parallel
    /// kernels partition on; also useful for callers running their own
    /// per-row parallel passes over this matrix.
    #[must_use]
    pub fn row_chunks(&self) -> &[usize] {
        &self.row_chunks
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row pointer array (`rows + 1` entries).
    #[must_use]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column index array.
    #[must_use]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Value array.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The `(cols, vals)` slice pair for one row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    #[must_use]
    pub fn row(&self, row: usize) -> (&[usize], &[f64]) {
        let (s, e) = (self.row_ptr[row], self.row_ptr[row + 1]);
        (&self.col_idx[s..e], &self.values[s..e])
    }

    /// Value at `(row, col)`, `0.0` if not stored.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        let (cols, vals) = self.row(row);
        match cols.binary_search(&col) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Sparse matrix-vector product `y = A * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    #[must_use]
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.spmv_into(x, &mut y);
        y
    }

    /// Sparse matrix-vector product into a caller-owned buffer
    /// (`y = A * x`), avoiding an allocation in solver inner loops.
    ///
    /// # Panics
    ///
    /// Panics if dimensions do not match.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "spmv: x length mismatch");
        assert_eq!(y.len(), self.rows, "spmv: y length mismatch");
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if irf_runtime::simd::enabled() {
            let plan = self.sell_plan();
            irf_runtime::par_ragged_chunks_mut(y, &self.row_chunks, |ci, yc| {
                // SAFETY: `simd::enabled()` guarantees AVX2; the plan
                // was built from this matrix's own arrays.
                #[allow(unsafe_code)]
                unsafe {
                    crate::sell::spmv_chunk_avx2(plan, ci, self.row_chunks[ci], x, yc, None);
                }
            });
            return;
        }
        // Row-parallel over nnz-balanced ragged chunks: each output
        // element is produced by exactly one serial inner loop and the
        // chunk boundaries derive from the structure alone, so the
        // result is bitwise identical at any thread count. Matrices
        // below one chunk run inline.
        irf_runtime::par_ragged_chunks_mut(y, &self.row_chunks, |ci, yc| {
            let base = self.row_chunks[ci];
            for (i, yr) in yc.iter_mut().enumerate() {
                let r = base + i;
                let mut acc = 0.0;
                for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                    acc += self.values[k] * x[self.col_idx[k]];
                }
                *yr = acc;
            }
        });
    }

    /// Residual `r = b - A*x` into a caller-owned buffer.
    ///
    /// # Panics
    ///
    /// Panics if dimensions do not match.
    pub fn residual_into(&self, b: &[f64], x: &[f64], r: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "residual: x length mismatch");
        assert_eq!(r.len(), self.rows, "residual: r length mismatch");
        assert_eq!(b.len(), self.rows, "residual: b length mismatch");
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if irf_runtime::simd::enabled() {
            let plan = self.sell_plan();
            irf_runtime::par_ragged_chunks_mut(r, &self.row_chunks, |ci, rc| {
                // SAFETY: `simd::enabled()` guarantees AVX2; the plan
                // was built from this matrix's own arrays.
                #[allow(unsafe_code)]
                unsafe {
                    crate::sell::spmv_chunk_avx2(plan, ci, self.row_chunks[ci], x, rc, Some(b));
                }
            });
            return;
        }
        irf_runtime::par_ragged_chunks_mut(r, &self.row_chunks, |ci, rc| {
            let base = self.row_chunks[ci];
            for (i, rr) in rc.iter_mut().enumerate() {
                let row = base + i;
                let mut acc = 0.0;
                for k in self.row_ptr[row]..self.row_ptr[row + 1] {
                    acc += self.values[k] * x[self.col_idx[k]];
                }
                *rr = b[row] - acc;
            }
        });
    }

    /// The diagonal of the matrix (zeros where no diagonal is stored).
    #[must_use]
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Transposed copy of the matrix.
    #[must_use]
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let mut row_ptr = counts.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0f64; self.nnz()];
        let mut cursor = counts;
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                let dst = cursor[c];
                col_idx[dst] = r;
                values[dst] = self.values[k];
                cursor[c] += 1;
            }
        }
        row_ptr.rotate_right(1);
        row_ptr[0] = 0;
        // Rebuild the proper prefix array.
        let mut rp = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            rp[c + 1] += 1;
        }
        for i in 0..self.cols {
            rp[i + 1] += rp[i];
        }
        let row_chunks = nnz_balanced_chunks(self.cols, &rp);
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr: rp,
            col_idx,
            values,
            row_chunks,
            sell: OnceLock::new(),
        }
    }

    /// `true` if the matrix equals its transpose up to `tol`.
    #[must_use]
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                if (v - self.get(c, r)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Frobenius norm of the matrix.
    #[must_use]
    pub fn norm_frobenius(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// The lazily built SELL-4 plan for the SIMD kernels.
    #[cfg_attr(not(all(feature = "simd", target_arch = "x86_64")), allow(dead_code))]
    fn sell_plan(&self) -> &SellPlan {
        self.sell.get_or_init(|| {
            Arc::new(SellPlan::build(
                &self.row_ptr,
                &self.col_idx,
                &self.values,
                &self.row_chunks,
            ))
        })
    }

    /// `true` when this matrix has already materialised its SELL-4
    /// SIMD plan (built lazily on the first vector-dispatched SpMV).
    /// Introspection for tests and benches; always `false` on the
    /// scalar-only build.
    #[must_use]
    pub fn simd_plan_built(&self) -> bool {
        self.sell.get().is_some()
    }

    /// Iterates over all stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| {
            let (s, e) = (self.row_ptr[r], self.row_ptr[r + 1]);
            self.col_idx[s..e]
                .iter()
                .zip(&self.values[s..e])
                .map(move |(&c, &v)| (r, c, v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn from_triplets_sorts_and_merges() {
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 2, 1.0), (0, 0, 3.0), (0, 2, 1.0)]);
        assert_eq!(a.row(0), (&[0usize, 2][..], &[3.0, 2.0][..]));
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn pattern_reuse_is_bitwise_identical_to_full_assembly() {
        // Duplicates with different magnitudes exercise the summation
        // order: stable-sorted merge and pattern scatter must agree.
        let t1 = [
            (0, 2, 0.1),
            (0, 0, 3.0),
            (0, 2, 0.2),
            (1, 1, 2.0),
            (0, 2, 0.3),
        ];
        let base = CsrMatrix::from_triplets(2, 3, &t1);
        let t2: Vec<_> = t1.iter().map(|&(r, c, v)| (r, c, v * 1.5)).collect();
        let fresh = CsrMatrix::from_triplets(2, 3, &t2);
        let reused = CsrMatrix::from_triplets_with_pattern(&base, &t2).expect("pattern matches");
        assert_eq!(fresh, reused);
        assert!(base.same_pattern(&reused));
    }

    #[test]
    fn pattern_reuse_declines_on_mismatch() {
        let base = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        // New entry outside the pattern.
        assert!(CsrMatrix::from_triplets_with_pattern(&base, &[(0, 1, 1.0)]).is_none());
        // Exact-zero sum: from_triplets would drop the entry.
        assert!(
            CsrMatrix::from_triplets_with_pattern(&base, &[(0, 0, 1.0), (0, 0, -1.0)]).is_none()
        );
        // Untouched pattern slot stays 0.0: also a pattern change.
        assert!(CsrMatrix::from_triplets_with_pattern(&base, &[(0, 0, 2.0)]).is_none());
    }

    #[test]
    fn same_pattern_detects_structural_differences() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let b = CsrMatrix::from_triplets(2, 2, &[(0, 0, 5.0), (1, 1, -2.0)]);
        let c = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 1, 1.0)]);
        assert!(a.same_pattern(&b));
        assert!(!a.same_pattern(&c));
    }

    #[test]
    fn identity_spmv_is_identity() {
        let a = CsrMatrix::identity(4);
        let x = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(a.spmv(&x), x);
    }

    #[test]
    fn spmv_matches_dense() {
        let a = laplacian_1d(5);
        let x: Vec<f64> = (0..5).map(|i| i as f64).collect();
        let y = a.spmv(&x);
        // dense check
        for (r, yr) in y.iter().enumerate() {
            let mut acc = 0.0;
            for (c, xc) in x.iter().enumerate() {
                acc += a.get(r, c) * xc;
            }
            assert!((yr - acc).abs() < 1e-14);
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let a = CsrMatrix::from_triplets(3, 2, &[(0, 1, 1.0), (2, 0, -2.0), (1, 1, 5.0)]);
        let att = a.transpose().transpose();
        assert_eq!(a, att);
    }

    #[test]
    fn transpose_swaps_entries() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 1, 7.0)]);
        let at = a.transpose();
        assert_eq!(at.get(1, 0), 7.0);
        assert_eq!(at.get(0, 1), 0.0);
    }

    #[test]
    fn symmetric_detection() {
        assert!(laplacian_1d(6).is_symmetric(0.0));
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]);
        assert!(!a.is_symmetric(1e-12));
    }

    #[test]
    fn diagonal_extraction() {
        let a = laplacian_1d(3);
        assert_eq!(a.diagonal(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn residual_is_zero_at_solution() {
        let a = CsrMatrix::identity(3);
        let b = vec![1.0, 2.0, 3.0];
        let mut r = vec![0.0; 3];
        a.residual_into(&b, &b, &mut r);
        assert!(r.iter().all(|v| v.abs() < 1e-15));
    }

    #[test]
    fn row_chunks_partition_all_rows() {
        // Skewed structure: one dense row among sparse ones.
        let mut t: Vec<(usize, usize, f64)> = (0..5000).map(|i| (i, i, 1.0)).collect();
        for c in 0..4000 {
            t.push((17, c, 0.5));
        }
        let a = CsrMatrix::from_triplets(5000, 5000, &t);
        let ch = a.row_chunks();
        assert_eq!(*ch.first().unwrap(), 0);
        assert_eq!(*ch.last().unwrap(), 5000);
        assert!(ch.windows(2).all(|w| w[0] < w[1]));
        assert!(ch.len() > 2, "skewed matrix should split into chunks");
        // spmv still matches the dense reference on the skewed matrix.
        let x: Vec<f64> = (0..5000).map(|i| f64::from(i as u32 % 13) - 6.0).collect();
        let y = a.spmv(&x);
        // Row 17: 0.5 on cols 0..4000 plus the 1.0 diagonal (merged).
        let dense17: f64 = (0..4000).map(|c| 0.5 * x[c]).sum::<f64>() + x[17];
        assert!((y[17] - dense17).abs() < 1e-9);
        assert!((y[40] - x[40]).abs() < 1e-15);
    }

    #[test]
    fn iter_yields_all_entries() {
        let a = laplacian_1d(3);
        assert_eq!(a.iter().count(), a.nnz());
        let sum: f64 = a.iter().map(|(_, _, v)| v).sum();
        assert!((sum - 2.0).abs() < 1e-14); // 3*2 - 4*1
    }
}
