//! Multigrid cycling: V-cycle and Notay's K-cycle, wrapped as a PCG
//! preconditioner.

use crate::amg::hierarchy::{prolongate_add, restrict_into, AmgHierarchy};
use crate::pcg::Preconditioner;
use crate::smoother::{l1_diagonal, scaled_sweeps, smooth, SmootherKind};
use crate::vector::dot;
use std::cell::RefCell;
use std::sync::Arc;

/// Which multigrid cycling strategy the preconditioner applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CycleKind {
    /// Classic V-cycle: one recursive coarse correction per level.
    VCycle,
    /// Notay's K-cycle: the coarse problem is solved by up to two
    /// steps of flexible CG preconditioned by the next level's cycle.
    /// This is the scheme PowerRush (and hence IR-Fusion) uses: it
    /// "efficiently balances convergence speed and computational cost".
    #[default]
    KCycle,
}

/// An [`AmgHierarchy`] applied as the `M^{-1}` of PCG via a multigrid
/// cycle — the "AMG" in AMG-PCG.
///
/// # Example
///
/// ```
/// use irf_sparse::{TripletMatrix, pcg::pcg};
/// use irf_sparse::amg::{AmgHierarchy, AmgParams, AmgPreconditioner, CycleKind};
///
/// let n = 200;
/// let mut t = TripletMatrix::new(n, n);
/// for i in 0..n {
///     t.push(i, i, 2.0);
///     if i + 1 < n {
///         t.push(i, i + 1, -1.0);
///         t.push(i + 1, i, -1.0);
///     }
/// }
/// let a = t.to_csr();
/// let h = AmgHierarchy::build(&a, AmgParams::default());
/// let m = AmgPreconditioner::new(h, CycleKind::KCycle);
/// let res = pcg(&a, &vec![1.0; n], &m, 1e-10, 100);
/// assert!(res.converged);
/// ```
#[derive(Debug, Clone)]
pub struct AmgPreconditioner {
    core: Arc<AmgCore>,
    /// Per-level scratch for [`run_cycle`](Self::run_cycle), taken and
    /// restored around each level's work so repeated `apply` calls (one
    /// per PCG iteration) allocate nothing after warm-up.
    v_scratch: RefCell<Vec<VScratch>>,
    /// Per-level scratch for the K-cycle inner Krylov iterations (kept
    /// separate from `v_scratch` because the K-cycle holds its buffers
    /// across a nested `run_cycle` at the same level).
    k_scratch: RefCell<Vec<KScratch>>,
}

/// The immutable, thread-safe part of an [`AmgPreconditioner`]: the
/// hierarchy, the cycle choice, and the precomputed per-level smoother
/// diagonals. An `Arc<AmgCore>` can be cached across solves and
/// rewrapped per solve with [`AmgPreconditioner::from_core`], which
/// only allocates fresh (empty) scratch pools — the expensive setup is
/// shared verbatim, so warm solves are bitwise identical to cold ones.
#[derive(Debug, Clone)]
pub struct AmgCore {
    hierarchy: AmgHierarchy,
    cycle: CycleKind,
    /// Per-level smoothing diagonals, precomputed once for the
    /// Jacobi-family smoothers (empty for Gauss-Seidel variants).
    smoother_diag: Vec<Vec<f64>>,
}

impl AmgCore {
    /// Precomputes the smoother diagonals for a built hierarchy.
    #[must_use]
    pub fn new(hierarchy: AmgHierarchy, cycle: CycleKind) -> Self {
        let smoother_diag = match hierarchy.params().smoother {
            SmootherKind::Jacobi => hierarchy.levels().iter().map(|l| l.a.diagonal()).collect(),
            SmootherKind::L1Jacobi => hierarchy
                .levels()
                .iter()
                .map(|l| l1_diagonal(&l.a))
                .collect(),
            _ => Vec::new(),
        };
        AmgCore {
            hierarchy,
            cycle,
            smoother_diag,
        }
    }

    /// The wrapped hierarchy.
    #[must_use]
    pub fn hierarchy(&self) -> &AmgHierarchy {
        &self.hierarchy
    }

    /// The cycling strategy.
    #[must_use]
    pub fn cycle(&self) -> CycleKind {
        self.cycle
    }
}

/// Scratch vectors for one level of a V-/K-cycle descent.
#[derive(Debug, Clone, Default)]
struct VScratch {
    /// Fine-level residual.
    r: Vec<f64>,
    /// Restricted residual (next-coarser dimension).
    rc: Vec<f64>,
    /// Coarse correction (next-coarser dimension).
    xc: Vec<f64>,
    /// Residual buffer lent to Jacobi-family smoother sweeps.
    smooth_r: Vec<f64>,
}

/// Scratch vectors for one level of the K-cycle inner CG.
#[derive(Debug, Clone, Default)]
struct KScratch {
    z1: Vec<f64>,
    az1: Vec<f64>,
    r: Vec<f64>,
    z2: Vec<f64>,
    az2: Vec<f64>,
    p2: Vec<f64>,
    ap2: Vec<f64>,
}

impl AmgPreconditioner {
    /// Wraps a built hierarchy with the chosen cycle.
    #[must_use]
    pub fn new(hierarchy: AmgHierarchy, cycle: CycleKind) -> Self {
        Self::from_core(Arc::new(AmgCore::new(hierarchy, cycle)))
    }

    /// Wraps a shared, already-built core with fresh scratch pools.
    /// This is the warm path: a cached `Arc<AmgCore>` turns into a
    /// ready preconditioner without redoing any setup work.
    #[must_use]
    pub fn from_core(core: Arc<AmgCore>) -> Self {
        let n_levels = core.hierarchy.num_levels();
        AmgPreconditioner {
            core,
            v_scratch: RefCell::new(vec![VScratch::default(); n_levels]),
            k_scratch: RefCell::new(vec![KScratch::default(); n_levels]),
        }
    }

    /// Applies this level's smoother, reusing the precomputed diagonal
    /// and the provided residual scratch for the Jacobi family.
    fn smooth_level(&self, level: usize, b: &[f64], x: &mut [f64], smooth_r: &mut Vec<f64>) {
        let lvl = &self.core.hierarchy.levels()[level];
        let params = self.core.hierarchy.params();
        match params.smoother {
            SmootherKind::Jacobi | SmootherKind::L1Jacobi => {
                let omega = if params.smoother == SmootherKind::Jacobi {
                    2.0 / 3.0
                } else {
                    1.0
                };
                smooth_r.resize(b.len(), 0.0);
                scaled_sweeps(
                    &lvl.a,
                    b,
                    x,
                    omega,
                    params.smoothing_sweeps,
                    &self.core.smoother_diag[level],
                    smooth_r,
                );
            }
            kind => smooth(kind, &lvl.a, b, x, params.smoothing_sweeps),
        }
    }

    /// The wrapped hierarchy.
    #[must_use]
    pub fn hierarchy(&self) -> &AmgHierarchy {
        self.core.hierarchy()
    }

    /// The cycling strategy.
    #[must_use]
    pub fn cycle(&self) -> CycleKind {
        self.core.cycle
    }

    /// The shared core (hierarchy + smoother diagonals).
    #[must_use]
    pub fn core(&self) -> &Arc<AmgCore> {
        &self.core
    }

    /// Runs one cycle on `A_level x = b`, updating `x` (which must be
    /// zero-initialised by the caller at the top level).
    fn run_cycle(&self, level: usize, b: &[f64], x: &mut [f64]) {
        let levels = self.core.hierarchy.levels();
        let lvl = &levels[level];
        if lvl.agg.is_none() {
            // Coarsest level: exact solve.
            self.core.hierarchy.coarse_solve(b, x);
            return;
        }
        let agg = lvl
            .agg
            .as_ref()
            .expect("non-coarsest level has aggregation");
        // Borrow this level's scratch for the duration; the RefCell
        // borrow is released before recursing to the next level.
        let mut s = std::mem::take(&mut self.v_scratch.borrow_mut()[level]);
        // Pre-smoothing.
        self.smooth_level(level, b, x, &mut s.smooth_r);
        // Coarse-grid correction on the residual.
        s.r.resize(b.len(), 0.0);
        lvl.a.residual_into(b, x, &mut s.r);
        s.rc.resize(agg.n_coarse, 0.0);
        restrict_into(agg, &s.r, &mut s.rc);
        s.xc.clear();
        s.xc.resize(agg.n_coarse, 0.0);
        match self.core.cycle {
            CycleKind::VCycle => self.run_cycle(level + 1, &s.rc, &mut s.xc),
            CycleKind::KCycle => self.kcycle_coarse_solve(level + 1, &s.rc, &mut s.xc),
        }
        prolongate_add(agg, &s.xc, x);
        // Post-smoothing.
        self.smooth_level(level, b, x, &mut s.smooth_r);
        self.v_scratch.borrow_mut()[level] = s;
    }

    /// Solves the coarse problem with at most two steps of flexible CG,
    /// each preconditioned by the next level's cycle (Notay's K-cycle).
    fn kcycle_coarse_solve(&self, level: usize, b: &[f64], x: &mut [f64]) {
        let a = &self.core.hierarchy.levels()[level].a;
        let n = b.len();
        // This level's K-cycle scratch; held across the nested
        // `run_cycle` calls, which use the separate `v_scratch` pool.
        let mut s = std::mem::take(&mut self.k_scratch.borrow_mut()[level]);
        // --- First inner iteration ---
        // z1 = cycle(b); the Krylov step decides how far to go along it.
        s.z1.clear();
        s.z1.resize(n, 0.0);
        self.run_cycle(level, b, &mut s.z1);
        s.az1.resize(n, 0.0);
        a.spmv_into(&s.z1, &mut s.az1);
        let d1 = dot(&s.z1, &s.az1);
        if d1 <= 0.0 || !d1.is_finite() {
            x.copy_from_slice(&s.z1);
            self.k_scratch.borrow_mut()[level] = s;
            return;
        }
        let rho1 = dot(&s.z1, b);
        let alpha1 = rho1 / d1;
        // Residual after the first step.
        s.r.resize(n, 0.0);
        for ((ri, bi), azi) in s.r.iter_mut().zip(b).zip(&s.az1) {
            *ri = bi - alpha1 * azi;
        }
        let rnorm2: f64 = dot(&s.r, &s.r);
        let bnorm2: f64 = dot(b, b);
        // Cheap skip: if the first step already reduced the residual a
        // lot, a second inner iteration buys little.
        if rnorm2 <= 0.04 * bnorm2 {
            for (xi, z1i) in x.iter_mut().zip(&s.z1) {
                *xi = alpha1 * z1i;
            }
            self.k_scratch.borrow_mut()[level] = s;
            return;
        }
        // --- Second inner iteration (flexible CG step) ---
        s.z2.clear();
        s.z2.resize(n, 0.0);
        self.run_cycle(level, &s.r, &mut s.z2);
        s.az2.resize(n, 0.0);
        a.spmv_into(&s.z2, &mut s.az2);
        // Orthogonalise z2 against z1 in the A-inner product.
        let beta = dot(&s.z2, &s.az1) / d1;
        s.p2.resize(n, 0.0);
        for ((pi, zi), z1i) in s.p2.iter_mut().zip(&s.z2).zip(&s.z1) {
            *pi = zi - beta * z1i;
        }
        s.ap2.resize(n, 0.0);
        for ((api, a2), a1) in s.ap2.iter_mut().zip(&s.az2).zip(&s.az1) {
            *api = a2 - beta * a1;
        }
        let d2 = dot(&s.p2, &s.ap2);
        if d2 <= 0.0 || !d2.is_finite() {
            for (xi, z1i) in x.iter_mut().zip(&s.z1) {
                *xi = alpha1 * z1i;
            }
            self.k_scratch.borrow_mut()[level] = s;
            return;
        }
        let alpha2 = dot(&s.p2, &s.r) / d2;
        for ((xi, z1i), p2i) in x.iter_mut().zip(&s.z1).zip(&s.p2) {
            *xi = alpha1 * z1i + alpha2 * p2i;
        }
        self.k_scratch.borrow_mut()[level] = s;
    }
}

impl Preconditioner for AmgPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.iter_mut().for_each(|v| *v = 0.0);
        self.run_cycle(0, r, z);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amg::hierarchy::AmgParams;
    use crate::csr::CsrMatrix;
    use crate::pcg::pcg;
    use crate::vector::norm2;

    fn laplacian_2d(nx: usize, ny: usize) -> CsrMatrix {
        let n = nx * ny;
        let idx = |i: usize, j: usize| i * ny + j;
        let mut t = Vec::new();
        for i in 0..nx {
            for j in 0..ny {
                let mut deg = 0.0;
                if i + 1 < nx {
                    t.push((idx(i, j), idx(i + 1, j), -1.0));
                    t.push((idx(i + 1, j), idx(i, j), -1.0));
                    deg += 1.0;
                }
                if i > 0 {
                    deg += 1.0;
                }
                if j + 1 < ny {
                    t.push((idx(i, j), idx(i, j + 1), -1.0));
                    t.push((idx(i, j + 1), idx(i, j), -1.0));
                    deg += 1.0;
                }
                if j > 0 {
                    deg += 1.0;
                }
                // Small shift keeps the Neumann-like operator SPD.
                t.push((idx(i, j), idx(i, j), deg + 0.01));
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn vcycle_preconditioned_pcg_converges() {
        let a = laplacian_2d(24, 24);
        let h = AmgHierarchy::build(&a, AmgParams::default());
        let m = AmgPreconditioner::new(h, CycleKind::VCycle);
        let b = vec![1.0; a.rows()];
        let res = pcg(&a, &b, &m, 1e-10, 100);
        assert!(res.converged, "final {:e}", res.trace.final_residual());
    }

    #[test]
    fn kcycle_preconditioned_pcg_converges() {
        let a = laplacian_2d(24, 24);
        let h = AmgHierarchy::build(&a, AmgParams::default());
        let m = AmgPreconditioner::new(h, CycleKind::KCycle);
        let b = vec![1.0; a.rows()];
        let res = pcg(&a, &b, &m, 1e-10, 100);
        assert!(res.converged);
        let mut r = vec![0.0; b.len()];
        a.residual_into(&b, &res.x, &mut r);
        assert!(norm2(&r) / norm2(&b) < 1e-9);
    }

    #[test]
    fn amg_pcg_beats_jacobi_pcg_in_iterations() {
        let a = laplacian_2d(32, 32);
        let b = vec![1.0; a.rows()];
        let h = AmgHierarchy::build(&a, AmgParams::default());
        let amg = AmgPreconditioner::new(h, CycleKind::KCycle);
        let jac = crate::pcg::JacobiPreconditioner::new(&a);
        let res_amg = pcg(&a, &b, &amg, 1e-8, 500);
        let res_jac = pcg(&a, &b, &jac, 1e-8, 500);
        assert!(res_amg.converged && res_jac.converged);
        assert!(
            res_amg.trace.iterations() < res_jac.trace.iterations(),
            "amg {} vs jacobi {}",
            res_amg.trace.iterations(),
            res_jac.trace.iterations()
        );
    }

    #[test]
    fn single_cycle_reduces_error() {
        let a = laplacian_2d(16, 16);
        let h = AmgHierarchy::build(&a, AmgParams::default());
        let m = AmgPreconditioner::new(h, CycleKind::VCycle);
        let x_true: Vec<f64> = (0..a.rows()).map(|i| ((i * 7) % 13) as f64).collect();
        let b = a.spmv(&x_true);
        let mut z = vec![0.0; b.len()];
        m.apply(&b, &mut z);
        let err0 = norm2(&x_true);
        let err1: f64 = x_true
            .iter()
            .zip(&z)
            .map(|(t, zi)| (t - zi) * (t - zi))
            .sum::<f64>()
            .sqrt();
        assert!(err1 < err0, "one cycle should reduce the error norm");
    }
}
