//! Multigrid cycling: V-cycle and Notay's K-cycle, wrapped as a PCG
//! preconditioner.

use crate::amg::hierarchy::{prolongate_add, restrict, AmgHierarchy};
use crate::pcg::Preconditioner;
use crate::smoother::smooth;
use crate::vector::dot;

/// Which multigrid cycling strategy the preconditioner applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CycleKind {
    /// Classic V-cycle: one recursive coarse correction per level.
    VCycle,
    /// Notay's K-cycle: the coarse problem is solved by up to two
    /// steps of flexible CG preconditioned by the next level's cycle.
    /// This is the scheme PowerRush (and hence IR-Fusion) uses: it
    /// "efficiently balances convergence speed and computational cost".
    #[default]
    KCycle,
}

/// An [`AmgHierarchy`] applied as the `M^{-1}` of PCG via a multigrid
/// cycle — the "AMG" in AMG-PCG.
///
/// # Example
///
/// ```
/// use irf_sparse::{TripletMatrix, pcg::pcg};
/// use irf_sparse::amg::{AmgHierarchy, AmgParams, AmgPreconditioner, CycleKind};
///
/// let n = 200;
/// let mut t = TripletMatrix::new(n, n);
/// for i in 0..n {
///     t.push(i, i, 2.0);
///     if i + 1 < n {
///         t.push(i, i + 1, -1.0);
///         t.push(i + 1, i, -1.0);
///     }
/// }
/// let a = t.to_csr();
/// let h = AmgHierarchy::build(&a, AmgParams::default());
/// let m = AmgPreconditioner::new(h, CycleKind::KCycle);
/// let res = pcg(&a, &vec![1.0; n], &m, 1e-10, 100);
/// assert!(res.converged);
/// ```
#[derive(Debug, Clone)]
pub struct AmgPreconditioner {
    hierarchy: AmgHierarchy,
    cycle: CycleKind,
}

impl AmgPreconditioner {
    /// Wraps a built hierarchy with the chosen cycle.
    #[must_use]
    pub fn new(hierarchy: AmgHierarchy, cycle: CycleKind) -> Self {
        AmgPreconditioner { hierarchy, cycle }
    }

    /// The wrapped hierarchy.
    #[must_use]
    pub fn hierarchy(&self) -> &AmgHierarchy {
        &self.hierarchy
    }

    /// The cycling strategy.
    #[must_use]
    pub fn cycle(&self) -> CycleKind {
        self.cycle
    }

    /// Runs one cycle on `A_level x = b`, updating `x` (which must be
    /// zero-initialised by the caller at the top level).
    fn run_cycle(&self, level: usize, b: &[f64], x: &mut [f64]) {
        let levels = self.hierarchy.levels();
        let lvl = &levels[level];
        let params = self.hierarchy.params();
        if lvl.agg.is_none() {
            // Coarsest level: exact solve.
            self.hierarchy.coarse_solve(b, x);
            return;
        }
        let agg = lvl.agg.as_ref().expect("non-coarsest level has aggregation");
        // Pre-smoothing.
        smooth(params.smoother, &lvl.a, b, x, params.smoothing_sweeps);
        // Coarse-grid correction on the residual.
        let mut r = vec![0.0; b.len()];
        lvl.a.residual_into(b, x, &mut r);
        let rc = restrict(agg, &r);
        let mut xc = vec![0.0; rc.len()];
        match self.cycle {
            CycleKind::VCycle => self.run_cycle(level + 1, &rc, &mut xc),
            CycleKind::KCycle => self.kcycle_coarse_solve(level + 1, &rc, &mut xc),
        }
        prolongate_add(agg, &xc, x);
        // Post-smoothing.
        smooth(params.smoother, &lvl.a, b, x, params.smoothing_sweeps);
    }

    /// Solves the coarse problem with at most two steps of flexible CG,
    /// each preconditioned by the next level's cycle (Notay's K-cycle).
    fn kcycle_coarse_solve(&self, level: usize, b: &[f64], x: &mut [f64]) {
        let a = &self.hierarchy.levels()[level].a;
        let n = b.len();
        // --- First inner iteration ---
        // z1 = cycle(b); the Krylov step decides how far to go along it.
        let mut z1 = vec![0.0; n];
        self.run_cycle(level, b, &mut z1);
        let az1 = a.spmv(&z1);
        let d1 = dot(&z1, &az1);
        if d1 <= 0.0 || !d1.is_finite() {
            x.copy_from_slice(&z1);
            return;
        }
        let rho1 = dot(&z1, b);
        let alpha1 = rho1 / d1;
        // Residual after the first step.
        let mut r: Vec<f64> = b.iter().zip(&az1).map(|(bi, azi)| bi - alpha1 * azi).collect();
        let rnorm2: f64 = dot(&r, &r);
        let bnorm2: f64 = dot(b, b);
        // Cheap skip: if the first step already reduced the residual a
        // lot, a second inner iteration buys little.
        if rnorm2 <= 0.04 * bnorm2 {
            for i in 0..n {
                x[i] = alpha1 * z1[i];
            }
            return;
        }
        // --- Second inner iteration (flexible CG step) ---
        let mut z2 = vec![0.0; n];
        self.run_cycle(level, &r, &mut z2);
        let az2 = a.spmv(&z2);
        // Orthogonalise z2 against z1 in the A-inner product.
        let beta = dot(&z2, &az1) / d1;
        let p2: Vec<f64> = z2.iter().zip(&z1).map(|(z, z1i)| z - beta * z1i).collect();
        let ap2: Vec<f64> = az2.iter().zip(&az1).map(|(a2, a1)| a2 - beta * a1).collect();
        let d2 = dot(&p2, &ap2);
        if d2 <= 0.0 || !d2.is_finite() {
            for i in 0..n {
                x[i] = alpha1 * z1[i];
            }
            return;
        }
        let alpha2 = dot(&p2, &r) / d2;
        for i in 0..n {
            x[i] = alpha1 * z1[i] + alpha2 * p2[i];
        }
        let _ = &mut r; // residual no longer needed
    }
}

impl Preconditioner for AmgPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.iter_mut().for_each(|v| *v = 0.0);
        self.run_cycle(0, r, z);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amg::hierarchy::AmgParams;
    use crate::csr::CsrMatrix;
    use crate::pcg::pcg;
    use crate::vector::norm2;

    fn laplacian_2d(nx: usize, ny: usize) -> CsrMatrix {
        let n = nx * ny;
        let idx = |i: usize, j: usize| i * ny + j;
        let mut t = Vec::new();
        for i in 0..nx {
            for j in 0..ny {
                let mut deg = 0.0;
                if i + 1 < nx {
                    t.push((idx(i, j), idx(i + 1, j), -1.0));
                    t.push((idx(i + 1, j), idx(i, j), -1.0));
                    deg += 1.0;
                }
                if i > 0 {
                    deg += 1.0;
                }
                if j + 1 < ny {
                    t.push((idx(i, j), idx(i, j + 1), -1.0));
                    t.push((idx(i, j + 1), idx(i, j), -1.0));
                    deg += 1.0;
                }
                if j > 0 {
                    deg += 1.0;
                }
                // Small shift keeps the Neumann-like operator SPD.
                t.push((idx(i, j), idx(i, j), deg + 0.01));
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn vcycle_preconditioned_pcg_converges() {
        let a = laplacian_2d(24, 24);
        let h = AmgHierarchy::build(&a, AmgParams::default());
        let m = AmgPreconditioner::new(h, CycleKind::VCycle);
        let b = vec![1.0; a.rows()];
        let res = pcg(&a, &b, &m, 1e-10, 100);
        assert!(res.converged, "final {:e}", res.trace.final_residual());
    }

    #[test]
    fn kcycle_preconditioned_pcg_converges() {
        let a = laplacian_2d(24, 24);
        let h = AmgHierarchy::build(&a, AmgParams::default());
        let m = AmgPreconditioner::new(h, CycleKind::KCycle);
        let b = vec![1.0; a.rows()];
        let res = pcg(&a, &b, &m, 1e-10, 100);
        assert!(res.converged);
        let mut r = vec![0.0; b.len()];
        a.residual_into(&b, &res.x, &mut r);
        assert!(norm2(&r) / norm2(&b) < 1e-9);
    }

    #[test]
    fn amg_pcg_beats_jacobi_pcg_in_iterations() {
        let a = laplacian_2d(32, 32);
        let b = vec![1.0; a.rows()];
        let h = AmgHierarchy::build(&a, AmgParams::default());
        let amg = AmgPreconditioner::new(h, CycleKind::KCycle);
        let jac = crate::pcg::JacobiPreconditioner::new(&a);
        let res_amg = pcg(&a, &b, &amg, 1e-8, 500);
        let res_jac = pcg(&a, &b, &jac, 1e-8, 500);
        assert!(res_amg.converged && res_jac.converged);
        assert!(
            res_amg.trace.iterations() < res_jac.trace.iterations(),
            "amg {} vs jacobi {}",
            res_amg.trace.iterations(),
            res_jac.trace.iterations()
        );
    }

    #[test]
    fn single_cycle_reduces_error() {
        let a = laplacian_2d(16, 16);
        let h = AmgHierarchy::build(&a, AmgParams::default());
        let m = AmgPreconditioner::new(h, CycleKind::VCycle);
        let x_true: Vec<f64> = (0..a.rows()).map(|i| ((i * 7) % 13) as f64).collect();
        let b = a.spmv(&x_true);
        let mut z = vec![0.0; b.len()];
        m.apply(&b, &mut z);
        let err0 = norm2(&x_true);
        let err1: f64 = x_true
            .iter()
            .zip(&z)
            .map(|(t, zi)| (t - zi) * (t - zi))
            .sum::<f64>()
            .sqrt();
        assert!(err1 < err0, "one cycle should reduce the error norm");
    }
}
