//! Strength-of-connection and greedy pairwise aggregation.
//!
//! Power-grid conductance matrices are symmetric M-matrices (positive
//! diagonal, non-positive off-diagonals), so the classic negative-
//! coupling strength measure applies: node `j` is strongly connected to
//! `i` when `-a_ij >= theta * max_k(-a_ik)`.

use crate::csr::CsrMatrix;

/// A fine-to-coarse aggregate assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Aggregation {
    /// `assign[i]` is the coarse aggregate index of fine node `i`.
    pub assign: Vec<usize>,
    /// Number of aggregates (coarse dimension).
    pub n_coarse: usize,
}

impl Aggregation {
    /// Sizes of each aggregate.
    #[must_use]
    pub fn aggregate_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.n_coarse];
        for &a in &self.assign {
            sizes[a] += 1;
        }
        sizes
    }

    /// Coarsening ratio `n_fine / n_coarse`.
    #[must_use]
    pub fn coarsening_ratio(&self) -> f64 {
        self.assign.len() as f64 / self.n_coarse.max(1) as f64
    }
}

/// Builds the strong-connection adjacency of `a`.
///
/// Returns, for each row, the strongly connected off-diagonal
/// neighbours sorted by descending coupling strength `-a_ij`.
///
/// `theta` in `[0, 1]` is the strength threshold; `0.0` keeps every
/// negative coupling, larger values keep only the strongest.
///
/// # Panics
///
/// Panics if `a` is not square.
#[must_use]
pub fn strength_graph(a: &CsrMatrix, theta: f64) -> Vec<Vec<(usize, f64)>> {
    assert_eq!(a.rows(), a.cols(), "strength graph needs a square matrix");
    let n = a.rows();
    let mut graph: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    // Row-parallel over the matrix's nnz-balanced chunks: each row's
    // neighbour list is built and sorted by one task with the same
    // serial routine, so the graph is identical at any thread count.
    irf_runtime::par_ragged_chunks_mut(&mut graph, a.row_chunks(), |ci, rows| {
        let base = a.row_chunks()[ci];
        for (j, slot) in rows.iter_mut().enumerate() {
            let i = base + j;
            let (cols, vals) = a.row(i);
            let max_neg = cols
                .iter()
                .zip(vals)
                .filter(|&(&c, _)| c != i)
                .map(|(_, &v)| -v)
                .fold(0.0_f64, f64::max);
            let mut neigh: Vec<(usize, f64)> = cols
                .iter()
                .zip(vals)
                .filter(|&(&c, &v)| c != i && -v >= theta * max_neg && v < 0.0)
                .map(|(&c, &v)| (c, -v))
                .collect();
            neigh.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            *slot = neigh;
        }
    });
    graph
}

/// Greedy pairwise aggregation on the strength graph.
///
/// Visits unaggregated nodes in order of ascending degree and pairs
/// each with its strongest unaggregated neighbour; leftover nodes form
/// singletons. Applying this twice (see
/// [`aggregate_double_pairwise`]) yields aggregates of up to 4 nodes —
/// the setup used by aggregation-based AMG solvers such as AGMG and
/// PowerRush.
///
/// # Panics
///
/// Panics if `a` is not square.
#[must_use]
pub fn aggregate_pairwise(a: &CsrMatrix, theta: f64) -> Aggregation {
    let n = a.rows();
    let graph = strength_graph(a, theta);
    const UNASSIGNED: usize = usize::MAX;
    let mut assign = vec![UNASSIGNED; n];
    // Visit low-degree nodes first: they have the fewest pairing options.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| graph[i].len());
    let mut n_coarse = 0;
    for &i in &order {
        if assign[i] != UNASSIGNED {
            continue;
        }
        // Strongest still-free neighbour, if any.
        let partner = graph[i]
            .iter()
            .find(|&&(j, _)| assign[j] == UNASSIGNED)
            .map(|&(j, _)| j);
        assign[i] = n_coarse;
        if let Some(j) = partner {
            assign[j] = n_coarse;
        }
        n_coarse += 1;
    }
    Aggregation { assign, n_coarse }
}

/// Two rounds of pairwise aggregation composed, giving aggregates of up
/// to four fine nodes (coarsening ratio approaching 4).
///
/// # Panics
///
/// Panics if `a` is not square.
#[must_use]
pub fn aggregate_double_pairwise(a: &CsrMatrix, theta: f64) -> Aggregation {
    let first = aggregate_pairwise(a, theta);
    let coarse = super::hierarchy::galerkin_coarse(a, &first);
    let second = aggregate_pairwise(&coarse, theta);
    let assign = first.assign.iter().map(|&mid| second.assign[mid]).collect();
    Aggregation {
        assign,
        n_coarse: second.n_coarse,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn strength_graph_of_chain() {
        let a = laplacian_1d(4);
        let g = strength_graph(&a, 0.5);
        assert_eq!(g[0].len(), 1);
        assert_eq!(g[1].len(), 2);
        assert_eq!(g[0][0].0, 1);
    }

    #[test]
    fn pairwise_covers_every_node() {
        let a = laplacian_1d(11);
        let agg = aggregate_pairwise(&a, 0.25);
        assert_eq!(agg.assign.len(), 11);
        assert!(agg.assign.iter().all(|&x| x < agg.n_coarse));
        // Every aggregate index is used.
        let sizes = agg.aggregate_sizes();
        assert!(sizes.iter().all(|&s| (1..=2).contains(&s)));
    }

    #[test]
    fn pairwise_roughly_halves() {
        let a = laplacian_1d(100);
        let agg = aggregate_pairwise(&a, 0.25);
        assert!(
            agg.n_coarse <= 60,
            "expected ~50 aggregates, got {}",
            agg.n_coarse
        );
        assert!(agg.coarsening_ratio() >= 1.6);
    }

    #[test]
    fn double_pairwise_coarsens_harder() {
        let a = laplacian_1d(100);
        let agg = aggregate_double_pairwise(&a, 0.25);
        assert!(
            agg.n_coarse <= 35,
            "expected ~25 aggregates, got {}",
            agg.n_coarse
        );
        let sizes = agg.aggregate_sizes();
        assert!(sizes.iter().all(|&s| (1..=4).contains(&s)));
    }

    #[test]
    fn singleton_matrix_aggregates_to_one() {
        let a = CsrMatrix::from_triplets(1, 1, &[(0, 0, 1.0)]);
        let agg = aggregate_pairwise(&a, 0.25);
        assert_eq!(agg.n_coarse, 1);
        assert_eq!(agg.assign, vec![0]);
    }
}
