//! AMG setup stage: the multilevel hierarchy of Galerkin operators.

use crate::amg::aggregation::{aggregate_double_pairwise, Aggregation};
use crate::csr::CsrMatrix;
use crate::smoother::SmootherKind;

/// Tunable parameters of the AMG setup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmgParams {
    /// Strength-of-connection threshold in `[0, 1]`.
    pub theta: f64,
    /// Stop coarsening once a level has at most this many unknowns.
    pub coarse_limit: usize,
    /// Hard cap on the number of levels.
    pub max_levels: usize,
    /// Pre-/post-smoothing sweeps per level.
    pub smoothing_sweeps: usize,
    /// Which smoother to run on each level.
    pub smoother: SmootherKind,
}

impl Default for AmgParams {
    fn default() -> Self {
        AmgParams {
            theta: 0.25,
            coarse_limit: 64,
            max_levels: 20,
            smoothing_sweeps: 1,
            smoother: SmootherKind::SymmetricGaussSeidel,
        }
    }
}

/// One level of the hierarchy: its operator and the aggregation that
/// maps it to the next coarser level (absent on the coarsest level).
#[derive(Debug, Clone)]
pub struct Level {
    /// Galerkin operator on this level.
    pub a: CsrMatrix,
    /// Fine-to-coarse map toward the next level, if any.
    pub agg: Option<Aggregation>,
}

/// The full multigrid hierarchy plus a dense Cholesky factor of the
/// coarsest operator.
#[derive(Debug, Clone)]
pub struct AmgHierarchy {
    levels: Vec<Level>,
    params: AmgParams,
    /// Lower-triangular dense Cholesky factor of the coarsest operator,
    /// stored row-major (`nc x nc`).
    coarse_chol: Vec<f64>,
    coarse_n: usize,
}

/// Computes the Galerkin coarse operator `A_c = P^T A P` for a
/// piecewise-constant prolongation defined by `agg`.
///
/// # Panics
///
/// Panics if `agg.assign.len() != a.rows()`.
#[must_use]
pub fn galerkin_coarse(a: &CsrMatrix, agg: &Aggregation) -> CsrMatrix {
    assert_eq!(agg.assign.len(), a.rows(), "aggregation size mismatch");
    // Two-pass bucketed product: count how many fine entries land in
    // each coarse row, prefix-sum into bucket offsets, then scatter
    // `(assign[c], v)` pairs directly into their coarse-row buckets in
    // fine-row iteration order. This replaces the old full triplet
    // buffer (24 B per fine non-zero — the AMG setup's memory hog at
    // million-node scale) with one exactly-sized 16 B/entry array.
    //
    // Bitwise identical to the triplet formulation: the bucket sort
    // inside `from_triplets` preserved per-coarse-row order of the
    // fine iteration, and the direct scatter writes the same per-row
    // sequences, so the shared sort+merge back half
    // (`from_bucketed`, parallel per coarse row) sums duplicates in
    // the same order.
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let values = a.values();
    let mut offsets = vec![0usize; agg.n_coarse + 1];
    for r in 0..a.rows() {
        offsets[agg.assign[r] + 1] += row_ptr[r + 1] - row_ptr[r];
    }
    for i in 0..agg.n_coarse {
        offsets[i + 1] += offsets[i];
    }
    let mut cursor = offsets[..agg.n_coarse].to_vec();
    let mut entries: Vec<(usize, f64)> = vec![(0, 0.0); a.nnz()];
    for r in 0..a.rows() {
        let coarse_r = agg.assign[r];
        for k in row_ptr[r]..row_ptr[r + 1] {
            entries[cursor[coarse_r]] = (agg.assign[col_idx[k]], values[k]);
            cursor[coarse_r] += 1;
        }
    }
    CsrMatrix::from_bucketed(agg.n_coarse, agg.n_coarse, &offsets, entries)
}

/// [`galerkin_coarse`] variant that scatter-adds into a known coarse
/// sparsity pattern instead of sorting a fresh one.
///
/// Returns `None` when the product's structure does not match
/// `pattern` (the caller falls back to [`galerkin_coarse`]). On
/// `Some`, the result is bitwise identical to [`galerkin_coarse`]:
/// both sum the mapped fine entries in the same serial triplet order.
fn galerkin_coarse_with_pattern(
    a: &CsrMatrix,
    agg: &Aggregation,
    pattern: &CsrMatrix,
) -> Option<CsrMatrix> {
    assert_eq!(agg.assign.len(), a.rows(), "aggregation size mismatch");
    if pattern.rows() != agg.n_coarse || pattern.cols() != agg.n_coarse {
        return None;
    }
    // Scatter-add each mapped fine entry straight into the pattern's
    // value slots, in fine-row iteration order — the same
    // accumulation order `from_triplets_with_pattern` used over the
    // old materialized triplet list, with no triplet buffer at all.
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let values = a.values();
    let p_row_ptr = pattern.row_ptr();
    let p_col_idx = pattern.col_idx();
    let mut out = vec![0.0f64; pattern.nnz()];
    for r in 0..a.rows() {
        let coarse_r = agg.assign[r];
        let (s, e) = (p_row_ptr[coarse_r], p_row_ptr[coarse_r + 1]);
        for k in row_ptr[r]..row_ptr[r + 1] {
            let coarse_c = agg.assign[col_idx[k]];
            let slot = p_col_idx[s..e].binary_search(&coarse_c).ok()?;
            out[s + slot] += values[k];
        }
    }
    CsrMatrix::with_pattern_values(pattern, out)
}

/// Restricts a fine-level vector: `r_c[a] = sum_{i in a} r[i]`
/// (`r_c = P^T r`).
#[must_use]
pub fn restrict(agg: &Aggregation, fine: &[f64]) -> Vec<f64> {
    let mut coarse = vec![0.0; agg.n_coarse];
    restrict_into(agg, fine, &mut coarse);
    coarse
}

/// [`restrict`] into a caller-owned buffer (overwritten), for cycle
/// inner loops that reuse scratch instead of allocating.
///
/// # Panics
///
/// Panics if `coarse.len() != agg.n_coarse`.
pub fn restrict_into(agg: &Aggregation, fine: &[f64], coarse: &mut [f64]) {
    assert_eq!(
        coarse.len(),
        agg.n_coarse,
        "restrict: coarse length mismatch"
    );
    coarse.iter_mut().for_each(|v| *v = 0.0);
    for (i, &v) in fine.iter().enumerate() {
        coarse[agg.assign[i]] += v;
    }
}

/// Prolongates a coarse correction and adds it to the fine vector:
/// `x[i] += x_c[agg[i]]` (`x += P x_c`).
pub fn prolongate_add(agg: &Aggregation, coarse: &[f64], fine: &mut [f64]) {
    for (i, xi) in fine.iter_mut().enumerate() {
        *xi += coarse[agg.assign[i]];
    }
}

impl AmgHierarchy {
    /// Runs the AMG setup stage on `a`.
    ///
    /// Recursively aggregates until the operator is small enough, then
    /// factors the coarsest operator with dense Cholesky so coarse
    /// solves are exact.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square, or if the coarsest operator is not
    /// positive definite (which indicates a non-SPD input).
    #[must_use]
    pub fn build(a: &CsrMatrix, params: AmgParams) -> Self {
        assert_eq!(a.rows(), a.cols(), "amg: matrix must be square");
        let mut levels = Vec::new();
        let mut current = a.clone();
        while current.rows() > params.coarse_limit && levels.len() + 1 < params.max_levels {
            let agg = aggregate_double_pairwise(&current, params.theta);
            if agg.n_coarse >= current.rows() {
                break; // aggregation stalled; stop coarsening
            }
            let coarse = galerkin_coarse(&current, &agg);
            levels.push(Level {
                a: current,
                agg: Some(agg),
            });
            current = coarse;
        }
        let coarse_n = current.rows();
        let coarse_chol = dense_cholesky(&current);
        levels.push(Level {
            a: current,
            agg: None,
        });
        AmgHierarchy {
            levels,
            params,
            coarse_chol,
            coarse_n,
        }
    }

    /// Re-runs the setup for a matrix with the same sparsity pattern as
    /// `base`'s finest operator, reusing base-level coarse *patterns*
    /// where the hierarchy shape is provably unchanged.
    ///
    /// Aggregation is value-dependent, so it is always recomputed —
    /// reusing a stale fine-to-coarse map would silently change the
    /// hierarchy and break the bitwise warm-equals-cold contract. What
    /// *can* be reused safely is the sorted sparsity pattern of each
    /// Galerkin product: when the fresh aggregation equals the base
    /// level's and the fine operators share a pattern, the coarse
    /// operator is scatter-assembled into the base coarse pattern
    /// (skipping the dominant sort) and is bitwise identical to what
    /// [`AmgHierarchy::build`] would produce. Any mismatch falls back
    /// to the full per-level build, so the result always equals
    /// `AmgHierarchy::build(a, params)` bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square, or if the coarsest operator is not
    /// positive definite.
    #[must_use]
    pub fn rebuild_from(a: &CsrMatrix, params: AmgParams, base: &AmgHierarchy) -> Self {
        assert_eq!(a.rows(), a.cols(), "amg: matrix must be square");
        let reuse = params == base.params;
        let mut levels = Vec::new();
        let mut current = a.clone();
        while current.rows() > params.coarse_limit && levels.len() + 1 < params.max_levels {
            let agg = aggregate_double_pairwise(&current, params.theta);
            if agg.n_coarse >= current.rows() {
                break; // aggregation stalled; stop coarsening
            }
            let li = levels.len();
            let coarse = if reuse {
                base.levels
                    .get(li)
                    .filter(|b| b.agg.as_ref() == Some(&agg) && b.a.same_pattern(&current))
                    .and_then(|_| base.levels.get(li + 1))
                    .and_then(|next| galerkin_coarse_with_pattern(&current, &agg, &next.a))
                    .unwrap_or_else(|| galerkin_coarse(&current, &agg))
            } else {
                galerkin_coarse(&current, &agg)
            };
            levels.push(Level {
                a: current,
                agg: Some(agg),
            });
            current = coarse;
        }
        let coarse_n = current.rows();
        let coarse_chol = dense_cholesky(&current);
        levels.push(Level {
            a: current,
            agg: None,
        });
        AmgHierarchy {
            levels,
            params,
            coarse_chol,
            coarse_n,
        }
    }

    /// Number of levels (including the coarsest).
    #[must_use]
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The levels, finest first.
    #[must_use]
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// The setup parameters used.
    #[must_use]
    pub fn params(&self) -> &AmgParams {
        &self.params
    }

    /// Operator complexity: total non-zeros across all levels divided
    /// by the finest-level non-zeros. A healthy aggregation hierarchy
    /// stays well below 2.
    #[must_use]
    pub fn operator_complexity(&self) -> f64 {
        let fine = self.levels[0].a.nnz().max(1) as f64;
        let total: usize = self.levels.iter().map(|l| l.a.nnz()).sum();
        total as f64 / fine
    }

    /// Solves the coarsest system exactly using the cached Cholesky
    /// factor.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the coarsest dimension.
    pub fn coarse_solve(&self, b: &[f64], x: &mut [f64]) {
        assert_eq!(b.len(), self.coarse_n, "coarse solve: rhs mismatch");
        assert_eq!(x.len(), self.coarse_n, "coarse solve: x mismatch");
        let n = self.coarse_n;
        let l = &self.coarse_chol;
        // Forward substitution L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for j in 0..i {
                s -= l[i * n + j] * y[j];
            }
            y[i] = s / l[i * n + i];
        }
        // Backward substitution L^T x = y.
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= l[j * n + i] * x[j];
            }
            x[i] = s / l[i * n + i];
        }
    }
}

/// Dense Cholesky of a small sparse SPD matrix; returns the
/// lower-triangular factor row-major.
///
/// # Panics
///
/// Panics if the matrix is not positive definite.
fn dense_cholesky(a: &CsrMatrix) -> Vec<f64> {
    let n = a.rows();
    let mut m = vec![0.0; n * n];
    for (r, c, v) in a.iter() {
        m[r * n + c] = v;
    }
    for i in 0..n {
        for j in 0..=i {
            let mut s = m[i * n + j];
            for k in 0..j {
                s -= m[i * n + k] * m[j * n + k];
            }
            if i == j {
                assert!(
                    s > 0.0,
                    "amg coarse operator is not positive definite (pivot {s:e} at row {i})"
                );
                m[i * n + j] = s.sqrt();
            } else {
                m[i * n + j] = s / m[j * n + j];
            }
        }
        for j in (i + 1)..n {
            m[i * n + j] = 0.0;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplacian_2d(nx: usize, ny: usize) -> CsrMatrix {
        let n = nx * ny;
        let idx = |i: usize, j: usize| i * ny + j;
        let mut t = Vec::new();
        for i in 0..nx {
            for j in 0..ny {
                t.push((idx(i, j), idx(i, j), 4.0));
                if i + 1 < nx {
                    t.push((idx(i, j), idx(i + 1, j), -1.0));
                    t.push((idx(i + 1, j), idx(i, j), -1.0));
                }
                if j + 1 < ny {
                    t.push((idx(i, j), idx(i, j + 1), -1.0));
                    t.push((idx(i, j + 1), idx(i, j), -1.0));
                }
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn hierarchy_coarsens_to_limit() {
        let a = laplacian_2d(20, 20);
        let h = AmgHierarchy::build(&a, AmgParams::default());
        assert!(h.num_levels() >= 2);
        let coarsest = &h.levels().last().unwrap().a;
        assert!(coarsest.rows() <= AmgParams::default().coarse_limit);
    }

    #[test]
    fn galerkin_preserves_symmetry() {
        let a = laplacian_2d(10, 10);
        let h = AmgHierarchy::build(&a, AmgParams::default());
        for level in h.levels() {
            assert!(level.a.is_symmetric(1e-12));
        }
    }

    #[test]
    fn operator_complexity_is_modest() {
        let a = laplacian_2d(24, 24);
        let h = AmgHierarchy::build(&a, AmgParams::default());
        assert!(h.operator_complexity() < 2.0, "{}", h.operator_complexity());
    }

    #[test]
    fn restrict_prolongate_are_transposes() {
        // <P^T r, e>_c == <r, P e>_f for arbitrary vectors.
        let a = laplacian_2d(6, 6);
        let agg = crate::amg::aggregation::aggregate_pairwise(&a, 0.25);
        let r: Vec<f64> = (0..36).map(|i| (i as f64).sin()).collect();
        let e: Vec<f64> = (0..agg.n_coarse).map(|i| (i as f64).cos()).collect();
        let rc = restrict(&agg, &r);
        let lhs: f64 = rc.iter().zip(&e).map(|(a, b)| a * b).sum();
        let mut pe = vec![0.0; 36];
        prolongate_add(&agg, &e, &mut pe);
        let rhs: f64 = r.iter().zip(&pe).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-10);
    }

    #[test]
    fn coarse_solve_is_exact() {
        let a = laplacian_2d(6, 6); // 36 <= coarse_limit: single level
        let h = AmgHierarchy::build(&a, AmgParams::default());
        assert_eq!(h.num_levels(), 1);
        let x_true: Vec<f64> = (0..36).map(|i| (i % 7) as f64).collect();
        let b = a.spmv(&x_true);
        let mut x = vec![0.0; 36];
        h.coarse_solve(&b, &mut x);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8);
        }
    }

    #[test]
    fn rebuild_from_matches_a_cold_build_bitwise() {
        let a = laplacian_2d(20, 20);
        let params = AmgParams::default();
        let base = AmgHierarchy::build(&a, params);

        // Same-pattern symmetric value edit: weaken a subset of the
        // couplings the way a strap-resistance edit does (the `r + c`
        // predicate keeps the matrix symmetric, and shrinking negative
        // off-diagonals preserves diagonal dominance / SPD-ness).
        let mut t: Vec<(usize, usize, f64)> = a.iter().collect();
        for e in t.iter_mut() {
            if e.0 != e.1 && (e.0 + e.1) % 7 == 0 {
                e.2 *= 0.5;
            }
        }
        let edited = CsrMatrix::from_triplets(400, 400, &t);

        let cold = AmgHierarchy::build(&edited, params);
        let warm = AmgHierarchy::rebuild_from(&edited, params, &base);
        assert_eq!(warm.num_levels(), cold.num_levels());
        for (w, c) in warm.levels().iter().zip(cold.levels()) {
            assert_eq!(w.a, c.a, "rebuilt level operator differs");
            assert_eq!(w.agg, c.agg, "rebuilt aggregation differs");
        }
        assert_eq!(warm.coarse_chol, cold.coarse_chol);

        // Rebuilding against an unrelated base still equals cold.
        let other = AmgHierarchy::build(&laplacian_2d(15, 15), params);
        let cross = AmgHierarchy::rebuild_from(&edited, params, &other);
        for (w, c) in cross.levels().iter().zip(cold.levels()) {
            assert_eq!(w.a, c.a);
        }
    }

    #[test]
    fn galerkin_coarse_row_sums_stay_nonnegative_diagonal() {
        let a = laplacian_2d(8, 8);
        let agg = crate::amg::aggregation::aggregate_pairwise(&a, 0.25);
        let ac = galerkin_coarse(&a, &agg);
        for i in 0..ac.rows() {
            assert!(ac.get(i, i) > 0.0);
        }
    }
}
