//! Aggregation-based algebraic multigrid (AMG).
//!
//! This module implements the solver core of PowerRush as described in
//! the IR-Fusion paper (Section III-B):
//!
//! 1. **Setup stage** — recursively group strongly connected nodes into
//!    aggregates, producing progressively coarser Galerkin operators
//!    `A_{l+1} = P^T A_l P` with piecewise-constant prolongation
//!    ([`aggregation`], [`hierarchy`]).
//! 2. **Preconditioning phase** — a multigrid cycle (V-cycle or Notay's
//!    K-cycle) applied as the implicit preconditioner `M^{-1}`
//!    ([`cycle`], [`AmgPreconditioner`]).
//! 3. **CG method** — the cycle is plugged into flexible PCG
//!    ([`crate::pcg::pcg`]) giving the **AMG-PCG** solver.

pub mod aggregation;
pub mod cycle;
pub mod hierarchy;

pub use aggregation::{aggregate_pairwise, strength_graph, Aggregation};
pub use cycle::{AmgCore, AmgPreconditioner, CycleKind};
pub use hierarchy::{AmgHierarchy, AmgParams};
