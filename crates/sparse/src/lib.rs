//! Sparse linear algebra and iterative solvers for power-grid analysis.
//!
//! This crate is the numerical substrate of the IR-Fusion reproduction.
//! It provides:
//!
//! - [`TripletMatrix`] / [`CsrMatrix`]: assembly and compressed storage
//!   for the symmetric positive-definite (SPD) conductance systems that
//!   modified nodal analysis produces for power grids.
//! - Classic iterative methods: [`cg::conjugate_gradient`] and the
//!   preconditioned variant [`pcg::pcg`] with pluggable
//!   [`Preconditioner`]s.
//! - An aggregation-based algebraic multigrid ([`amg::AmgHierarchy`])
//!   usable either as a standalone solver (V-cycle iteration) or as a
//!   K-cycle preconditioner inside PCG — the **AMG-PCG** solver of
//!   PowerRush that the IR-Fusion paper uses for its rough numerical
//!   solutions.
//! - Baselines: a sparse Cholesky direct solver ([`cholesky`]) used to
//!   produce golden reference solutions, and a random-walk Monte-Carlo
//!   solver ([`random_walk`]) in the spirit of Qian et al.
//!
//! # Example
//!
//! ```
//! use irf_sparse::{TripletMatrix, solver::{Solver, SolverKind}};
//!
//! // 1-D resistor chain with Dirichlet ends folded in: tridiag(-1, 2, -1).
//! let n = 50;
//! let mut t = TripletMatrix::new(n, n);
//! for i in 0..n {
//!     t.push(i, i, 2.0);
//!     if i + 1 < n {
//!         t.push(i, i + 1, -1.0);
//!         t.push(i + 1, i, -1.0);
//!     }
//! }
//! let a = t.to_csr();
//! let b = vec![1.0; n];
//! let report = Solver::new(SolverKind::AmgPcg).solve(&a, &b);
//! assert!(report.converged);
//! ```
// The scalar-only default build carries no unsafe code at all; the
// `simd` feature admits it solely inside the `sell` kernel module and
// its call sites, each carrying a narrow `#[allow]` + SAFETY comment.
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod amg;
pub mod builder;
pub mod cg;
pub mod cholesky;
pub mod csr;
pub mod error;
pub mod ic0;
pub mod matrix_market;
pub mod pcg;
pub mod random_walk;
mod sell;
pub mod smoother;
pub mod solver;
pub mod triplet;
pub mod vector;

pub use builder::CsrAssembler;
pub use csr::CsrMatrix;
pub use error::SolveError;
pub use ic0::Ic0Preconditioner;
pub use pcg::{IdentityPreconditioner, JacobiPreconditioner, Preconditioner};
pub use solver::{SolveReport, Solver, SolverKind, SolverSetup};
pub use triplet::TripletMatrix;
