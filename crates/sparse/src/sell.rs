//! SELL-4 (sliced ELLPACK) companion storage for the SIMD SpMV path.
//!
//! [`SellPlan`] repacks a [`CsrMatrix`](crate::CsrMatrix)'s non-zeros
//! into groups of 4 consecutive rows, transposed slot-major and padded
//! to the longest row in each group, so an AVX2 kernel can advance all
//! 4 rows with one 256-bit value load, one index load and one gather
//! per step. Groups never straddle the matrix's nnz-balanced
//! `row_chunks` boundaries — those boundaries derive from the structure
//! alone, so the grouping (and therefore the result) is identical at
//! any thread count.
//!
//! # Bitwise-determinism contract
//!
//! Per output row the kernel performs the exact scalar sequence
//! `acc = 0.0; acc += a_k * x[col_k]` in stored order — one rounded
//! multiply and one rounded add per step, no FMA, no reassociation.
//! Padding slots hold value `0.0` / column `0`, appended *after* the
//! row's real entries; they add `0.0 * x[0]` (which is `±0.0`) to an
//! accumulator that is either still `+0.0` or already past its real
//! entries. Under round-to-nearest a finite accumulator can only be
//! `+0.0` or non-zero at that point (`+0.0 + ±0.0 = +0.0`, and
//! `a + (-a) = +0.0` for finite `a`), and `acc + ±0.0` is then the
//! bitwise identity — so pads never change the result. The solvers
//! uphold the remaining precondition (finite `x`); NaN/inf inputs
//! propagate exactly as in the scalar loop on x86.
//!
//! The plan is built lazily on the first SIMD-dispatched kernel call
//! and cached on the matrix (`OnceLock`); cloning a matrix shares the
//! plan (values are immutable), while value-rebuilding constructors
//! start with an empty cache.

// In the default (scalar-only) build the plan type is compiled but the
// kernels that consume it are not.
#![cfg_attr(not(feature = "simd"), allow(dead_code))]

/// SELL-4 repacking of a CSR matrix, ready for 4-wide f64 kernels.
#[derive(Debug, Clone)]
pub(crate) struct SellPlan {
    /// Group storage: per group `len * 4` values, slot-major (step 0
    /// lanes 0..4, step 1 lanes 0..4, ...). Pads are `0.0`.
    vals: Vec<f64>,
    /// Column indices parallel to `vals`, as `i32` for the AVX2
    /// gather — half the memory traffic of the natural `usize`, which
    /// matters because SpMV is bandwidth-bound. Pads are `0`.
    cols: Vec<i32>,
    /// Per-group offsets into `vals`/`cols` (`n_groups + 1` entries).
    group_ptr: Vec<usize>,
    /// First group index of each row chunk (`n_chunks + 1` entries);
    /// groups cover up to 4 consecutive rows and never cross a chunk
    /// boundary.
    chunk_groups: Vec<usize>,
}

impl SellPlan {
    /// Repacks CSR arrays into SELL-4 groups aligned to `row_chunks`.
    pub(crate) fn build(
        row_ptr: &[usize],
        col_idx: &[usize],
        values: &[f64],
        row_chunks: &[usize],
    ) -> Self {
        let n_chunks = row_chunks.len() - 1;
        let mut chunk_groups = Vec::with_capacity(n_chunks + 1);
        chunk_groups.push(0usize);
        let mut group_ptr = vec![0usize];
        let mut total = 0usize;
        for ci in 0..n_chunks {
            let (base, end) = (row_chunks[ci], row_chunks[ci + 1]);
            let mut r = base;
            while r < end {
                let gend = (r + 4).min(end);
                let len = (r..gend)
                    .map(|row| row_ptr[row + 1] - row_ptr[row])
                    .max()
                    .unwrap_or(0);
                total += len * 4;
                group_ptr.push(total);
                r = gend;
            }
            chunk_groups.push(group_ptr.len() - 1);
        }
        let mut vals = vec![0.0f64; total];
        let mut cols = vec![0i32; total];
        let mut g = 0usize;
        for ci in 0..n_chunks {
            let (base, end) = (row_chunks[ci], row_chunks[ci + 1]);
            let mut r = base;
            while r < end {
                let gend = (r + 4).min(end);
                let off = group_ptr[g];
                for lane in 0..gend - r {
                    let row = r + lane;
                    for (step, k) in (row_ptr[row]..row_ptr[row + 1]).enumerate() {
                        vals[off + step * 4 + lane] = values[k];
                        cols[off + step * 4 + lane] = col_idx[k] as i32;
                    }
                }
                g += 1;
                r = gend;
            }
        }
        SellPlan {
            vals,
            cols,
            group_ptr,
            chunk_groups,
        }
    }
}

/// AVX2 SpMV / residual over one row chunk: `out[i] = Σ a_row * x`
/// (or `b[row] - Σ` when `b` is given). `out` is the chunk's slice of
/// the destination vector; `base` is the chunk's first absolute row
/// (used to index `b`).
///
/// # Safety
///
/// Caller must ensure AVX2 is available (gated on
/// [`irf_runtime::simd::enabled`]) and that `plan` was built from the
/// same matrix the chunk geometry refers to.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn spmv_chunk_avx2(
    plan: &SellPlan,
    ci: usize,
    base: usize,
    x: &[f64],
    out: &mut [f64],
    b: Option<&[f64]>,
) {
    use std::arch::x86_64::{
        __m256d, _mm256_add_pd, _mm256_i32gather_pd, _mm256_loadu_pd, _mm256_mul_pd,
        _mm256_setzero_pd, _mm256_storeu_pd, _mm256_sub_pd, _mm_loadu_si128,
    };
    let xp = x.as_ptr();
    // One fused step: `acc += vals[s] * x[cols[s]]` for a group's 4
    // lanes — one 32B value load, one 16B i32 index load, one gather.
    let step = |vp: *const f64, cp: *const i32, s: usize, acc: __m256d| -> __m256d {
        let idx = _mm_loadu_si128(cp.add(s * 4).cast());
        let xv = _mm256_i32gather_pd::<8>(xp, idx);
        _mm256_add_pd(acc, _mm256_mul_pd(_mm256_loadu_pd(vp.add(s * 4)), xv))
    };
    let g0 = plan.chunk_groups[ci];
    let g1 = plan.chunk_groups[ci + 1];
    let mut accs = vec![_mm256_setzero_pd(); g1 - g0];
    // Pass 1: accumulate pairs of groups interleaved. Groups cover
    // disjoint rows, so interleaving hides the per-group add-latency
    // chain without touching any single row's rounding order.
    let mut g = g0;
    while g + 2 <= g1 {
        let (off_a, off_b) = (plan.group_ptr[g], plan.group_ptr[g + 1]);
        let len_a = (off_b - off_a) / 4;
        let len_b = (plan.group_ptr[g + 2] - off_b) / 4;
        let (vp_a, cp_a) = (plan.vals.as_ptr().add(off_a), plan.cols.as_ptr().add(off_a));
        let (vp_b, cp_b) = (plan.vals.as_ptr().add(off_b), plan.cols.as_ptr().add(off_b));
        let mut acc_a = _mm256_setzero_pd();
        let mut acc_b = _mm256_setzero_pd();
        let both = len_a.min(len_b);
        for s in 0..both {
            acc_a = step(vp_a, cp_a, s, acc_a);
            acc_b = step(vp_b, cp_b, s, acc_b);
        }
        for s in both..len_a {
            acc_a = step(vp_a, cp_a, s, acc_a);
        }
        for s in both..len_b {
            acc_b = step(vp_b, cp_b, s, acc_b);
        }
        accs[g - g0] = acc_a;
        accs[g + 1 - g0] = acc_b;
        g += 2;
    }
    if g < g1 {
        let off = plan.group_ptr[g];
        let len = (plan.group_ptr[g + 1] - off) / 4;
        let (vp, cp) = (plan.vals.as_ptr().add(off), plan.cols.as_ptr().add(off));
        let mut acc = _mm256_setzero_pd();
        for s in 0..len {
            acc = step(vp, cp, s, acc);
        }
        accs[g - g0] = acc;
    }
    // Pass 2: write the accumulated row sums out.
    let mut row0 = 0usize;
    for g in g0..g1 {
        let acc = accs[g - g0];
        let nrows = (out.len() - row0).min(4);
        if let Some(b) = b {
            let bp = b.as_ptr().add(base + row0);
            if nrows == 4 {
                let bv = _mm256_loadu_pd(bp);
                _mm256_storeu_pd(out.as_mut_ptr().add(row0), _mm256_sub_pd(bv, acc));
            } else {
                let mut tmp = [0.0f64; 4];
                _mm256_storeu_pd(tmp.as_mut_ptr(), acc);
                for (l, &t) in tmp.iter().take(nrows).enumerate() {
                    out[row0 + l] = *bp.add(l) - t;
                }
            }
        } else if nrows == 4 {
            _mm256_storeu_pd(out.as_mut_ptr().add(row0), acc);
        } else {
            let mut tmp = [0.0f64; 4];
            _mm256_storeu_pd(tmp.as_mut_ptr(), acc);
            out[row0..row0 + nrows].copy_from_slice(&tmp[..nrows]);
        }
        row0 += nrows;
    }
}

/// AVX2 diagonal-scaled Jacobi update over one chunk:
/// `x[i] += omega * r[i] / diag[i]`, elementwise — each element is one
/// rounded multiply, one rounded divide and one rounded add, the exact
/// scalar sequence.
///
/// # Panics
///
/// Panics on a zero diagonal entry, with the same message as the
/// scalar path.
///
/// # Safety
///
/// Caller must ensure AVX2 is available (gated on
/// [`irf_runtime::simd::enabled`]). `r` and `diag` must be at least as
/// long as `xc`.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn scaled_update_chunk_avx2(
    xc: &mut [f64],
    r: &[f64],
    diag: &[f64],
    omega: f64,
    base_row: usize,
) {
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_cmp_pd, _mm256_div_pd, _mm256_loadu_pd, _mm256_movemask_pd,
        _mm256_mul_pd, _mm256_set1_pd, _mm256_setzero_pd, _mm256_storeu_pd, _CMP_EQ_OQ,
    };
    let n = xc.len();
    let om = _mm256_set1_pd(omega);
    let zero = _mm256_setzero_pd();
    let mut i = 0usize;
    while i + 4 <= n {
        let dv = _mm256_loadu_pd(diag.as_ptr().add(i));
        if _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_EQ_OQ>(dv, zero)) != 0 {
            for l in 0..4 {
                let row = base_row + i + l;
                assert!(diag[i + l] != 0.0, "jacobi: zero diagonal at row {row}");
            }
        }
        let rv = _mm256_loadu_pd(r.as_ptr().add(i));
        let t = _mm256_div_pd(_mm256_mul_pd(om, rv), dv);
        let xv = _mm256_loadu_pd(xc.as_ptr().add(i));
        _mm256_storeu_pd(xc.as_mut_ptr().add(i), _mm256_add_pd(xv, t));
        i += 4;
    }
    while i < n {
        let d = diag[i];
        let row = base_row + i;
        assert!(d != 0.0, "jacobi: zero diagonal at row {row}");
        xc[i] += omega * r[i] / d;
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_groups_align_to_chunks() {
        // 6 rows split into chunks [0, 5, 6]: groups must be
        // {0..4}, {4..5}, {5..6} — never straddling row 5.
        let row_ptr = [0usize, 1, 2, 3, 4, 5, 6];
        let col_idx = [0usize, 1, 2, 3, 4, 5];
        let values = [1.0f64; 6];
        let chunks = [0usize, 5, 6];
        let plan = SellPlan::build(&row_ptr, &col_idx, &values, &chunks);
        assert_eq!(plan.chunk_groups, vec![0, 2, 3]);
        assert_eq!(plan.group_ptr, vec![0, 4, 8, 12]);
        // Lane 0 of group 0, step 0 is row 0's single entry.
        assert_eq!(plan.vals[0], 1.0);
        assert_eq!(plan.cols[0], 0);
    }

    #[test]
    fn plan_pads_short_rows_with_zero() {
        // Rows of length 2 and 0 in one group: padded to len 2.
        let row_ptr = [0usize, 2, 2];
        let col_idx = [0usize, 1];
        let values = [3.0f64, 4.0];
        let chunks = [0usize, 2];
        let plan = SellPlan::build(&row_ptr, &col_idx, &values, &chunks);
        assert_eq!(plan.group_ptr, vec![0, 8]);
        // Slot-major: step 0 = [3.0, 0, 0, 0], step 1 = [4.0, 0, 0, 0].
        assert_eq!(plan.vals[0], 3.0);
        assert_eq!(plan.vals[4], 4.0);
        assert!(plan.vals[1..4].iter().all(|&v| v == 0.0));
        assert!(plan.cols[1..4].iter().all(|&c| c == 0));
    }
}
