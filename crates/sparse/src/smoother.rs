//! Stationary smoothers used inside the AMG cycles.

use crate::csr::CsrMatrix;

/// Which stationary smoother an AMG level applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SmootherKind {
    /// Damped (weighted) Jacobi; robust and cheap.
    #[default]
    Jacobi,
    /// ℓ1-Jacobi: Jacobi scaled by `a_ii + Σ_{j≠i} |a_ij|`. Always
    /// convergent for SPD matrices without damping, and — like plain
    /// Jacobi — embarrassingly parallel, unlike Gauss-Seidel.
    L1Jacobi,
    /// Forward Gauss-Seidel sweep.
    GaussSeidel,
    /// Symmetric Gauss-Seidel (forward then backward sweep) — keeps the
    /// preconditioner symmetric, as PCG requires.
    SymmetricGaussSeidel,
}

/// Performs `sweeps` damped-Jacobi iterations on `A x = b` in place.
///
/// `omega` is the damping factor; `2/3` is the classic choice for
/// Laplacian-like operators.
///
/// # Panics
///
/// Panics if dimensions mismatch or a diagonal entry is zero.
pub fn jacobi(a: &CsrMatrix, b: &[f64], x: &mut [f64], omega: f64, sweeps: usize) {
    let diag = a.diagonal();
    let mut r = vec![0.0; a.rows()];
    scaled_sweeps(a, b, x, omega, sweeps, &diag, &mut r);
}

/// Performs `sweeps` ℓ1-Jacobi iterations on `A x = b` in place: the
/// update is scaled by `d_i = a_ii + Σ_{j≠i} |a_ij|`, which makes the
/// iteration unconditionally convergent for SPD `A` (no damping factor
/// to tune) while remaining fully parallel across rows.
///
/// # Panics
///
/// Panics if dimensions mismatch or an ℓ1 diagonal entry is zero.
pub fn l1_jacobi(a: &CsrMatrix, b: &[f64], x: &mut [f64], sweeps: usize) {
    let diag = l1_diagonal(a);
    let mut r = vec![0.0; a.rows()];
    scaled_sweeps(a, b, x, 1.0, sweeps, &diag, &mut r);
}

/// The ℓ1 smoothing diagonal `d_i = a_ii + Σ_{j≠i} |a_ij|`.
#[must_use]
pub fn l1_diagonal(a: &CsrMatrix) -> Vec<f64> {
    let mut d = vec![0.0; a.rows()];
    irf_runtime::par_chunks_mut(&mut d, SWEEP_CHUNK, |ci, dc| {
        let base = ci * SWEEP_CHUNK;
        for (i, di) in dc.iter_mut().enumerate() {
            let row = base + i;
            let (cols, vals) = a.row(row);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += if c == row { v } else { v.abs() };
            }
            *di = acc;
        }
    });
    d
}

/// Rows per parallel work unit in diagonal-scaled sweeps. Fixed so that
/// partitioning never affects results.
const SWEEP_CHUNK: usize = 2048;

/// Shared kernel for Jacobi-family smoothers: `sweeps` iterations of
/// `x += omega * D^{-1} (b - A x)` with a caller-provided diagonal
/// `diag` and residual scratch buffer `r`. Exposed so AMG cycles can
/// reuse buffers across iterations instead of reallocating.
///
/// # Panics
///
/// Panics if dimensions mismatch or a diagonal entry is zero.
pub fn scaled_sweeps(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    omega: f64,
    sweeps: usize,
    diag: &[f64],
    r: &mut [f64],
) {
    let n = a.rows();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    assert_eq!(diag.len(), n);
    assert_eq!(r.len(), n);
    for _ in 0..sweeps {
        a.residual_into(b, x, r);
        let r = &*r;
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if irf_runtime::simd::enabled() {
            irf_runtime::par_chunks_mut(x, SWEEP_CHUNK, |ci, xc| {
                let base = ci * SWEEP_CHUNK;
                // SAFETY: `simd::enabled()` guarantees AVX2; r and
                // diag are full-length vectors, so the chunk slices
                // starting at `base` cover `xc`.
                #[allow(unsafe_code)]
                unsafe {
                    crate::sell::scaled_update_chunk_avx2(
                        xc,
                        &r[base..base + xc.len()],
                        &diag[base..base + xc.len()],
                        omega,
                        base,
                    );
                }
            });
            continue;
        }
        irf_runtime::par_chunks_mut(x, SWEEP_CHUNK, |ci, xc| {
            let base = ci * SWEEP_CHUNK;
            for (i, xi) in xc.iter_mut().enumerate() {
                let row = base + i;
                let d = diag[row];
                assert!(d != 0.0, "jacobi: zero diagonal at row {row}");
                *xi += omega * r[row] / d;
            }
        });
    }
}

/// Performs `sweeps` forward Gauss-Seidel iterations on `A x = b`.
///
/// # Panics
///
/// Panics if dimensions mismatch or a diagonal entry is zero.
pub fn gauss_seidel(a: &CsrMatrix, b: &[f64], x: &mut [f64], sweeps: usize) {
    gs_directed(a, b, x, sweeps, false);
}

/// Performs `sweeps` symmetric Gauss-Seidel iterations (forward then
/// backward). The resulting error propagator is symmetric, so this is
/// safe inside an SPD preconditioner.
///
/// # Panics
///
/// Panics if dimensions mismatch or a diagonal entry is zero.
pub fn symmetric_gauss_seidel(a: &CsrMatrix, b: &[f64], x: &mut [f64], sweeps: usize) {
    for _ in 0..sweeps {
        gs_directed(a, b, x, 1, false);
        gs_directed(a, b, x, 1, true);
    }
}

fn gs_directed(a: &CsrMatrix, b: &[f64], x: &mut [f64], sweeps: usize, backward: bool) {
    let n = a.rows();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    for _ in 0..sweeps {
        let order: Box<dyn Iterator<Item = usize>> = if backward {
            Box::new((0..n).rev())
        } else {
            Box::new(0..n)
        };
        for i in order {
            let (cols, vals) = a.row(i);
            let mut sigma = 0.0;
            let mut diag = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                if c == i {
                    diag = v;
                } else {
                    sigma += v * x[c];
                }
            }
            assert!(diag != 0.0, "gauss-seidel: zero diagonal at row {i}");
            x[i] = (b[i] - sigma) / diag;
        }
    }
}

/// Applies the chosen smoother for `sweeps` sweeps.
pub fn smooth(kind: SmootherKind, a: &CsrMatrix, b: &[f64], x: &mut [f64], sweeps: usize) {
    match kind {
        SmootherKind::Jacobi => jacobi(a, b, x, 2.0 / 3.0, sweeps),
        SmootherKind::L1Jacobi => l1_jacobi(a, b, x, sweeps),
        SmootherKind::GaussSeidel => gauss_seidel(a, b, x, sweeps),
        SmootherKind::SymmetricGaussSeidel => symmetric_gauss_seidel(a, b, x, sweeps),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::norm2;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    fn rel_residual(a: &CsrMatrix, b: &[f64], x: &[f64]) -> f64 {
        let mut r = vec![0.0; b.len()];
        a.residual_into(b, x, &mut r);
        norm2(&r) / norm2(b)
    }

    #[test]
    fn jacobi_reduces_residual() {
        let a = laplacian_1d(20);
        let b = vec![1.0; 20];
        let mut x = vec![0.0; 20];
        let before = rel_residual(&a, &b, &x);
        jacobi(&a, &b, &mut x, 2.0 / 3.0, 10);
        assert!(rel_residual(&a, &b, &x) < before);
    }

    #[test]
    fn l1_jacobi_reduces_residual_without_damping() {
        let a = laplacian_1d(20);
        let b = vec![1.0; 20];
        let mut x = vec![0.0; 20];
        let before = rel_residual(&a, &b, &x);
        l1_jacobi(&a, &b, &mut x, 500);
        assert!(rel_residual(&a, &b, &x) < 0.5 * before);
    }

    #[test]
    fn l1_diagonal_dominates_plain_diagonal() {
        let a = laplacian_1d(10);
        let plain = a.diagonal();
        for (l1, d) in l1_diagonal(&a).iter().zip(&plain) {
            assert!(l1 >= d);
        }
    }

    #[test]
    fn gauss_seidel_converges_on_small_system() {
        let a = laplacian_1d(8);
        let b = vec![1.0; 8];
        let mut x = vec![0.0; 8];
        gauss_seidel(&a, &b, &mut x, 500);
        assert!(rel_residual(&a, &b, &x) < 1e-8);
    }

    #[test]
    fn symmetric_gs_converges_faster_than_one_direction_sweepwise() {
        let a = laplacian_1d(16);
        let b = vec![1.0; 16];
        let mut x_gs = vec![0.0; 16];
        let mut x_sgs = vec![0.0; 16];
        gauss_seidel(&a, &b, &mut x_gs, 10);
        symmetric_gauss_seidel(&a, &b, &mut x_sgs, 10);
        assert!(rel_residual(&a, &b, &x_sgs) <= rel_residual(&a, &b, &x_gs) + 1e-12);
    }

    #[test]
    fn smoothers_fix_exact_solution() {
        // If x already solves A x = b, one sweep must leave it unchanged.
        let a = laplacian_1d(5);
        let x_true = vec![1.0, 2.0, 3.0, 2.0, 1.0];
        let b = a.spmv(&x_true);
        for kind in [
            SmootherKind::Jacobi,
            SmootherKind::L1Jacobi,
            SmootherKind::GaussSeidel,
            SmootherKind::SymmetricGaussSeidel,
        ] {
            let mut x = x_true.clone();
            smooth(kind, &a, &b, &mut x, 3);
            for (xi, ti) in x.iter().zip(&x_true) {
                assert!((xi - ti).abs() < 1e-12, "{kind:?} moved exact solution");
            }
        }
    }
}
