//! Matrix Market (`.mtx`) import/export.
//!
//! Power-grid conductance systems are a classic SuiteSparse benchmark
//! family; this module lets matrices cross between this crate and the
//! wider sparse-solver ecosystem (UMFPACK, CHOLMOD, AMGCL, ...) in the
//! standard `MatrixMarket matrix coordinate real` format.

use crate::csr::CsrMatrix;
use crate::error::SolveError;
use crate::triplet::TripletMatrix;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Error reading a Matrix Market stream.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseMtxError {
    /// Missing or foreign `%%MatrixMarket` banner.
    BadBanner,
    /// Unsupported qualifier (only `coordinate real
    /// general|symmetric` is handled).
    Unsupported(String),
    /// Malformed size or entry line.
    BadLine {
        /// 1-based line number.
        line: usize,
    },
    /// Entry out of the declared bounds.
    OutOfBounds {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for ParseMtxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseMtxError::BadBanner => write!(f, "missing %%MatrixMarket banner"),
            ParseMtxError::Unsupported(q) => write!(f, "unsupported matrix market flavor '{q}'"),
            ParseMtxError::BadLine { line } => write!(f, "malformed line {line}"),
            ParseMtxError::OutOfBounds { line } => write!(f, "entry out of bounds at line {line}"),
        }
    }
}

impl Error for ParseMtxError {}

/// Serializes a matrix as `coordinate real general` Matrix Market
/// text (1-based indices, full precision).
#[must_use]
pub fn write_matrix_market(a: &CsrMatrix) -> String {
    let mut out = String::from("%%MatrixMarket matrix coordinate real general\n");
    let _ = writeln!(out, "% written by irf-sparse");
    let _ = writeln!(out, "{} {} {}", a.rows(), a.cols(), a.nnz());
    for (r, c, v) in a.iter() {
        let _ = writeln!(out, "{} {} {v:e}", r + 1, c + 1);
    }
    out
}

/// Parses `coordinate real` Matrix Market text. `symmetric` storage is
/// expanded to both triangles.
///
/// # Errors
///
/// See [`ParseMtxError`].
pub fn parse_matrix_market(src: &str) -> Result<CsrMatrix, ParseMtxError> {
    let mut lines = src.lines().enumerate();
    // Banner.
    let (_, banner) = lines.next().ok_or(ParseMtxError::BadBanner)?;
    let banner_l = banner.to_ascii_lowercase();
    if !banner_l.starts_with("%%matrixmarket") {
        return Err(ParseMtxError::BadBanner);
    }
    if !banner_l.contains("coordinate") || !banner_l.contains("real") {
        return Err(ParseMtxError::Unsupported(banner.to_string()));
    }
    let symmetric = banner_l.contains("symmetric");
    if !symmetric && !banner_l.contains("general") {
        return Err(ParseMtxError::Unsupported(banner.to_string()));
    }
    // Size line (skipping comments).
    let mut size: Option<(usize, usize, usize)> = None;
    let mut triplets = TripletMatrix::new(0, 0);
    for (idx, line) in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match size {
            None => {
                if fields.len() != 3 {
                    return Err(ParseMtxError::BadLine { line: idx + 1 });
                }
                let rows = fields[0]
                    .parse()
                    .map_err(|_| ParseMtxError::BadLine { line: idx + 1 })?;
                let cols = fields[1]
                    .parse()
                    .map_err(|_| ParseMtxError::BadLine { line: idx + 1 })?;
                let nnz: usize = fields[2]
                    .parse()
                    .map_err(|_| ParseMtxError::BadLine { line: idx + 1 })?;
                size = Some((rows, cols, nnz));
                triplets = TripletMatrix::with_capacity(rows, cols, nnz);
            }
            Some((rows, cols, _)) => {
                if fields.len() != 3 {
                    return Err(ParseMtxError::BadLine { line: idx + 1 });
                }
                let r: usize = fields[0]
                    .parse()
                    .map_err(|_| ParseMtxError::BadLine { line: idx + 1 })?;
                let c: usize = fields[1]
                    .parse()
                    .map_err(|_| ParseMtxError::BadLine { line: idx + 1 })?;
                let v: f64 = fields[2]
                    .parse()
                    .map_err(|_| ParseMtxError::BadLine { line: idx + 1 })?;
                if r == 0 || c == 0 || r > rows || c > cols {
                    return Err(ParseMtxError::OutOfBounds { line: idx + 1 });
                }
                triplets.push(r - 1, c - 1, v);
                if symmetric && r != c {
                    triplets.push(c - 1, r - 1, v);
                }
            }
        }
    }
    if size.is_none() {
        return Err(ParseMtxError::BadLine { line: 2 });
    }
    Ok(triplets.to_csr())
}

/// Convenience: exports the matrix and solves round-trip consistency
/// in one call, returning the re-imported matrix. Mostly useful in
/// tests and tooling.
///
/// # Errors
///
/// Returns [`SolveError::NotSquare`] only to share the crate's error
/// type when the round-trip changes dimensions (which would indicate a
/// serializer bug — covered by tests).
pub fn roundtrip(a: &CsrMatrix) -> Result<CsrMatrix, SolveError> {
    let b = parse_matrix_market(&write_matrix_market(a)).map_err(|_| SolveError::NotSquare {
        rows: a.rows(),
        cols: a.cols(),
    })?;
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 2.0),
                (0, 1, -1.0),
                (1, 0, -1.0),
                (1, 1, 2.5),
                (2, 2, 1e-6),
            ],
        )
    }

    #[test]
    fn write_then_parse_roundtrip() {
        let a = sample();
        let b = parse_matrix_market(&write_matrix_market(&a)).expect("round-trips");
        assert_eq!(a, b);
    }

    #[test]
    fn symmetric_storage_expands() {
        let src = "\
%%MatrixMarket matrix coordinate real symmetric
2 2 2
1 1 2.0
2 1 -1.0
";
        let a = parse_matrix_market(src).expect("valid");
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let src = "\
%%MatrixMarket matrix coordinate real general
% a comment

2 2 1
1 2 3.5
";
        let a = parse_matrix_market(src).expect("valid");
        assert_eq!(a.get(0, 1), 3.5);
    }

    #[test]
    fn bad_banner_is_rejected() {
        assert_eq!(
            parse_matrix_market("hello\n1 1 0\n"),
            Err(ParseMtxError::BadBanner)
        );
    }

    #[test]
    fn unsupported_flavors_are_rejected() {
        let src = "%%MatrixMarket matrix coordinate complex general\n1 1 0\n";
        assert!(matches!(
            parse_matrix_market(src),
            Err(ParseMtxError::Unsupported(_))
        ));
    }

    #[test]
    fn out_of_bounds_entries_are_rejected() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert_eq!(
            parse_matrix_market(src),
            Err(ParseMtxError::OutOfBounds { line: 3 })
        );
    }

    #[test]
    fn one_based_indexing_is_respected() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(matches!(
            parse_matrix_market(src),
            Err(ParseMtxError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn roundtrip_helper() {
        let a = sample();
        assert_eq!(roundtrip(&a).expect("ok"), a);
    }
}
