//! Preconditioned conjugate gradient (PCG) with pluggable preconditioners.
//!
//! The AMG-PCG solver of PowerRush — and therefore of the IR-Fusion
//! paper — is exactly [`pcg`] with an
//! [`AmgPreconditioner`](crate::amg::AmgPreconditioner) plugged in.

use crate::cg::{CgResult, ConvergenceTrace};
use crate::csr::CsrMatrix;
use crate::vector::{axpy, dot, norm2, xpby};

/// An SPD preconditioner `M^{-1}` applied as `z = M^{-1} r`.
///
/// Implementations must be (approximately) symmetric positive definite
/// for PCG to retain its convergence guarantees; the flexible
/// Polak-Ribiere update used by [`pcg`] tolerates the mild
/// non-linearity of a K-cycle AMG preconditioner.
pub trait Preconditioner {
    /// Applies the preconditioner: writes `z = M^{-1} r`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `r.len() != z.len()` or the length
    /// does not match the operator dimension.
    fn apply(&self, r: &[f64], z: &mut [f64]);
}

/// The identity preconditioner; turns PCG into plain CG.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdentityPreconditioner;

impl Preconditioner for IdentityPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }
}

/// Diagonal (Jacobi) preconditioner `M = diag(A)`.
#[derive(Debug, Clone, PartialEq)]
pub struct JacobiPreconditioner {
    inv_diag: Vec<f64>,
}

impl JacobiPreconditioner {
    /// Builds the preconditioner from the diagonal of `a`.
    ///
    /// # Panics
    ///
    /// Panics if any diagonal entry is zero.
    #[must_use]
    pub fn new(a: &CsrMatrix) -> Self {
        let inv_diag = a
            .diagonal()
            .into_iter()
            .enumerate()
            .map(|(i, d)| {
                assert!(d != 0.0, "jacobi preconditioner: zero diagonal at row {i}");
                1.0 / d
            })
            .collect();
        JacobiPreconditioner { inv_diag }
    }
}

impl Preconditioner for JacobiPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        for ((zi, ri), di) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = ri * di;
        }
    }
}

/// Solves the SPD system `A x = b` with flexible preconditioned
/// conjugate gradient.
///
/// Uses the Polak-Ribiere (flexible) beta so that slightly non-linear
/// preconditioners — such as a K-cycle AMG — remain admissible.
/// Convergence is declared when `||b - A x|| / ||b|| < tol`.
///
/// # Panics
///
/// Panics if `A` is not square or `b.len() != A.rows()`.
#[must_use]
pub fn pcg<M: Preconditioner>(
    a: &CsrMatrix,
    b: &[f64],
    m: &M,
    tol: f64,
    max_iter: usize,
) -> CgResult {
    pcg_with_guess(a, b, m, vec![0.0; b.len()], tol, max_iter)
}

/// [`pcg`] starting from a caller-supplied initial guess `x0`.
///
/// # Panics
///
/// Panics if dimensions do not match.
#[must_use]
pub fn pcg_with_guess<M: Preconditioner>(
    a: &CsrMatrix,
    b: &[f64],
    m: &M,
    x0: Vec<f64>,
    tol: f64,
    max_iter: usize,
) -> CgResult {
    assert_eq!(a.rows(), a.cols(), "pcg: matrix must be square");
    assert_eq!(b.len(), a.rows(), "pcg: rhs length mismatch");
    assert_eq!(x0.len(), b.len(), "pcg: guess length mismatch");
    let n = b.len();
    let bnorm = norm2(b);
    let mut x = x0;
    if bnorm == 0.0 {
        return CgResult {
            x: vec![0.0; n],
            converged: true,
            trace: ConvergenceTrace { history: vec![0.0] },
        };
    }
    let mut r = vec![0.0; n];
    a.residual_into(b, &x, &mut r);
    let mut z = vec![0.0; n];
    m.apply(&r, &mut z);
    let mut p = z.clone();
    let mut ap = vec![0.0; n];
    // Scratch for the previous residual, reused across iterations so
    // the inner loop allocates nothing.
    let mut r_old = vec![0.0; n];
    let mut rz = dot(&r, &z);
    let mut history = vec![norm2(&r) / bnorm];
    let mut converged = history[0] < tol;
    let mut it = 0;
    while !converged && it < max_iter {
        a.spmv_into(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 || !pap.is_finite() {
            break;
        }
        let alpha = rz / pap;
        axpy(alpha, &p, &mut x);
        // Keep the previous residual for the flexible beta.
        r_old.copy_from_slice(&r);
        axpy(-alpha, &ap, &mut r);
        m.apply(&r, &mut z);
        // Polak-Ribiere: beta = z^T (r - r_old) / (z_old^T r_old).
        let num = {
            let (z, r, r_old) = (&z, &r, &r_old);
            irf_runtime::par_reduce(
                n,
                8192,
                0.0,
                |range| {
                    let mut acc = 0.0;
                    for i in range {
                        acc += z[i] * (r[i] - r_old[i]);
                    }
                    acc
                },
                |a, b| a + b,
            )
        };
        let beta = (num / rz).max(0.0);
        rz = dot(&r, &z);
        xpby(&z, beta, &mut p);
        it += 1;
        let rel = norm2(&r) / bnorm;
        history.push(rel);
        converged = rel < tol;
        if rz <= 0.0 || !rz.is_finite() {
            break;
        }
    }
    CgResult {
        x,
        converged,
        trace: ConvergenceTrace { history },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplacian_2d(nx: usize, ny: usize) -> CsrMatrix {
        let n = nx * ny;
        let idx = |i: usize, j: usize| i * ny + j;
        let mut t = Vec::new();
        for i in 0..nx {
            for j in 0..ny {
                t.push((idx(i, j), idx(i, j), 4.0));
                if i + 1 < nx {
                    t.push((idx(i, j), idx(i + 1, j), -1.0));
                    t.push((idx(i + 1, j), idx(i, j), -1.0));
                }
                if j + 1 < ny {
                    t.push((idx(i, j), idx(i, j + 1), -1.0));
                    t.push((idx(i, j + 1), idx(i, j), -1.0));
                }
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn identity_preconditioner_matches_plain_cg() {
        let a = laplacian_2d(10, 10);
        let b = vec![1.0; 100];
        let plain = crate::cg::conjugate_gradient(&a, &b, 1e-10, 500);
        let pre = pcg(&a, &b, &IdentityPreconditioner, 1e-10, 500);
        assert!(pre.converged);
        for (p, q) in plain.x.iter().zip(&pre.x) {
            assert!((p - q).abs() < 1e-6);
        }
    }

    #[test]
    fn jacobi_preconditioner_converges() {
        let a = laplacian_2d(10, 10);
        let b = vec![1.0; 100];
        let m = JacobiPreconditioner::new(&a);
        let res = pcg(&a, &b, &m, 1e-10, 500);
        assert!(res.converged);
        let mut r = vec![0.0; 100];
        a.residual_into(&b, &res.x, &mut r);
        assert!(norm2(&r) / norm2(&b) < 1e-9);
    }

    #[test]
    fn warm_start_converges_faster() {
        let a = laplacian_2d(10, 10);
        let b = vec![1.0; 100];
        let m = JacobiPreconditioner::new(&a);
        let cold = pcg(&a, &b, &m, 1e-10, 500);
        let warm = pcg_with_guess(&a, &b, &m, cold.x.clone(), 1e-10, 500);
        assert!(warm.trace.iterations() <= 1);
    }

    #[test]
    fn pcg_zero_rhs() {
        let a = laplacian_2d(4, 4);
        let res = pcg(&a, &[0.0; 16], &IdentityPreconditioner, 1e-10, 10);
        assert!(res.converged && res.x.iter().all(|&v| v == 0.0));
    }
}
