//! Bitwise parity of the AVX2 kernels against the scalar path.
//!
//! Only meaningful with `--features simd`; compiles to nothing
//! otherwise. Each test computes the scalar result (vector path
//! force-disabled via `irf_runtime::simd::set_disabled`) and the SIMD
//! result in the same process and asserts f64 **bit** equality at
//! 1/2/4/8 threads.
#![cfg(feature = "simd")]

use irf_sparse::{smoother, CsrMatrix};
use std::sync::Mutex;

/// The SIMD kill-switch and thread count are process globals; tests
/// that flip them must not interleave.
static GLOBALS: Mutex<()> = Mutex::new(());

fn lock_globals() -> std::sync::MutexGuard<'static, ()> {
    GLOBALS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Deterministic pseudo-random 2-D grid Laplacian with jittered
/// conductances — row lengths 3..5, the shape MNA produces.
fn grid_matrix(nx: usize, ny: usize, seed: u64) -> CsrMatrix {
    let mut rng = irf_runtime::Xoshiro256pp::seed_from_u64(seed);
    let n = nx * ny;
    let mut t: Vec<(usize, usize, f64)> = Vec::new();
    let idx = |x: usize, y: usize| y * nx + x;
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            let mut diag = 1e-3 + rng.random::<f64>();
            let mut link = |t: &mut Vec<(usize, usize, f64)>, j: usize, g: f64| {
                t.push((i, j, -g));
                diag += g;
            };
            if x + 1 < nx {
                link(&mut t, idx(x + 1, y), 0.5 + rng.random::<f64>());
            }
            if x > 0 {
                link(&mut t, idx(x - 1, y), 0.25 + rng.random::<f64>());
            }
            if y + 1 < ny {
                link(&mut t, idx(x, y + 1), 0.75 + rng.random::<f64>());
            }
            if y > 0 {
                link(&mut t, idx(x, y - 1), 1.0 + rng.random::<f64>());
            }
            t.push((i, i, diag));
        }
    }
    CsrMatrix::from_triplets(n, n, &t)
}

fn rand_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = irf_runtime::Xoshiro256pp::seed_from_u64(seed);
    (0..n).map(|_| rng.random::<f64>() * 2.0 - 1.0).collect()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn spmv_simd_is_bitwise_identical_to_scalar_at_any_thread_count() {
    let _g = lock_globals();
    // Big enough for several nnz-balanced chunks plus a ragged tail.
    let a = grid_matrix(97, 53, 0xABCD);
    let x = rand_vec(a.cols(), 7);

    irf_runtime::simd::set_disabled(true);
    irf_runtime::set_num_threads(1);
    let scalar = a.spmv(&x);
    irf_runtime::simd::set_disabled(false);

    if !irf_runtime::simd::enabled() {
        eprintln!("skipping: AVX2 unavailable at runtime");
        return;
    }
    for threads in [1usize, 2, 4, 8] {
        irf_runtime::set_num_threads(threads);
        let simd = a.spmv(&x);
        assert_eq!(
            bits(&scalar),
            bits(&simd),
            "spmv diverged at {threads} threads"
        );
    }
    assert!(a.simd_plan_built());
    irf_runtime::set_num_threads(1);
}

#[test]
fn residual_simd_is_bitwise_identical_to_scalar() {
    let _g = lock_globals();
    let a = grid_matrix(61, 41, 0x5EED);
    let x = rand_vec(a.cols(), 11);
    let b = rand_vec(a.rows(), 13);
    let mut scalar = vec![0.0; a.rows()];
    let mut simd = vec![0.0; a.rows()];

    irf_runtime::simd::set_disabled(true);
    irf_runtime::set_num_threads(1);
    a.residual_into(&b, &x, &mut scalar);
    irf_runtime::simd::set_disabled(false);

    if !irf_runtime::simd::enabled() {
        eprintln!("skipping: AVX2 unavailable at runtime");
        return;
    }
    for threads in [1usize, 2, 4, 8] {
        irf_runtime::set_num_threads(threads);
        a.residual_into(&b, &x, &mut simd);
        assert_eq!(
            bits(&scalar),
            bits(&simd),
            "residual diverged at {threads} threads"
        );
    }
    irf_runtime::set_num_threads(1);
}

#[test]
fn l1_jacobi_simd_is_bitwise_identical_to_scalar() {
    let _g = lock_globals();
    let a = grid_matrix(71, 67, 0xF00D);
    let b = rand_vec(a.rows(), 17);

    irf_runtime::simd::set_disabled(true);
    irf_runtime::set_num_threads(1);
    let mut scalar = vec![0.0; a.rows()];
    smoother::l1_jacobi(&a, &b, &mut scalar, 4);
    irf_runtime::simd::set_disabled(false);

    if !irf_runtime::simd::enabled() {
        eprintln!("skipping: AVX2 unavailable at runtime");
        return;
    }
    for threads in [1usize, 2, 4, 8] {
        irf_runtime::set_num_threads(threads);
        let mut simd = vec![0.0; a.rows()];
        smoother::l1_jacobi(&a, &b, &mut simd, 4);
        assert_eq!(
            bits(&scalar),
            bits(&simd),
            "l1-jacobi diverged at {threads} threads"
        );
    }
    irf_runtime::set_num_threads(1);
}

#[test]
fn pattern_rebuild_does_not_reuse_stale_plan() {
    let _g = lock_globals();
    let t1 = [(0usize, 0usize, 2.0f64), (0, 1, -1.0), (1, 1, 3.0)];
    let base = CsrMatrix::from_triplets(2, 2, &t1);
    // Materialise the plan on `base`.
    let _ = base.spmv(&[1.0, 1.0]);
    let t2: Vec<_> = t1.iter().map(|&(r, c, v)| (r, c, v * 2.0)).collect();
    let rebuilt = CsrMatrix::from_triplets_with_pattern(&base, &t2).expect("same pattern");
    assert!(!rebuilt.simd_plan_built(), "rebuild must start plan-less");
    let y = rebuilt.spmv(&[1.0, 1.0]);
    assert_eq!(y, vec![2.0, 6.0]);
}
