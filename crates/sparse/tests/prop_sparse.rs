//! Randomized-but-deterministic property tests for the sparse linear
//! algebra core: each property is checked over a fixed-seed family of
//! random instances, so failures reproduce exactly.

use irf_runtime::Xoshiro256pp;
use irf_sparse::cholesky::CholeskyFactor;
use irf_sparse::{CsrMatrix, Solver, SolverKind, TripletMatrix};

const CASES: u64 = 64;

/// A random connected resistor-chain SPD system of size `2..=40` with
/// grounded endpoints and positive conductances.
fn spd_chain(rng: &mut Xoshiro256pp) -> CsrMatrix {
    let n = rng.random_range(2usize..=40);
    let conds: Vec<f64> = (0..41).map(|_| rng.random_range(0.1f64..10.0)).collect();
    let mut t = TripletMatrix::new(n, n);
    for (i, g) in conds.iter().enumerate().take(n - 1) {
        t.stamp_conductance(i, i + 1, *g);
    }
    t.stamp_grounded_conductance(0, conds[40 - 1]);
    t.stamp_grounded_conductance(n - 1, conds[40 - 2]);
    t.to_csr()
}

fn random_triplets(
    rng: &mut Xoshiro256pp,
    rows: usize,
    cols: usize,
    max_len: usize,
    amp: f64,
) -> Vec<(usize, usize, f64)> {
    let len = rng.random_range(0usize..max_len);
    (0..len)
        .map(|_| {
            (
                rng.random_range(0usize..rows),
                rng.random_range(0usize..cols),
                rng.random_range(-amp..amp),
            )
        })
        .collect()
}

#[test]
fn csr_from_triplets_matches_get() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xC5_01);
    for _ in 0..CASES {
        let entries = random_triplets(&mut rng, 8, 8, 50, 5.0);
        let a = CsrMatrix::from_triplets(8, 8, &entries);
        // Dense accumulation as the oracle.
        let mut dense = [[0.0f64; 8]; 8];
        for &(r, c, v) in &entries {
            dense[r][c] += v;
        }
        for (r, row) in dense.iter().enumerate() {
            for (c, want) in row.iter().enumerate() {
                assert!((a.get(r, c) - want).abs() < 1e-12);
            }
        }
    }
}

#[test]
fn spmv_is_linear() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xC5_02);
    for _ in 0..CASES {
        let entries = random_triplets(&mut rng, 6, 6, 30, 3.0);
        let x: Vec<f64> = (0..6).map(|_| rng.random_range(-2.0f64..2.0)).collect();
        let y: Vec<f64> = (0..6).map(|_| rng.random_range(-2.0f64..2.0)).collect();
        let alpha = rng.random_range(-3.0f64..3.0);
        let a = CsrMatrix::from_triplets(6, 6, &entries);
        // A(alpha x + y) == alpha A x + A y
        let mixed: Vec<f64> = x.iter().zip(&y).map(|(xi, yi)| alpha * xi + yi).collect();
        let lhs = a.spmv(&mixed);
        let ax = a.spmv(&x);
        let ay = a.spmv(&y);
        for i in 0..6 {
            assert!((lhs[i] - (alpha * ax[i] + ay[i])).abs() < 1e-9);
        }
    }
}

#[test]
fn transpose_preserves_entries() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xC5_03);
    for _ in 0..CASES {
        let entries = random_triplets(&mut rng, 7, 5, 30, 4.0);
        let a = CsrMatrix::from_triplets(7, 5, &entries);
        let at = a.transpose();
        assert_eq!(at.rows(), 5);
        assert_eq!(at.cols(), 7);
        for (r, c, v) in a.iter() {
            assert!((at.get(c, r) - v).abs() < 1e-12);
        }
        assert_eq!(a.nnz(), at.nnz());
    }
}

#[test]
fn cholesky_solves_random_chains() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xC5_04);
    for _ in 0..CASES {
        let a = spd_chain(&mut rng);
        let rhs_seed = rng.random_range(0u64..1000);
        let n = a.rows();
        let b: Vec<f64> = (0..n)
            .map(|i| (((i as u64 + rhs_seed) % 17) as f64 - 8.0) / 8.0)
            .collect();
        let f = CholeskyFactor::factor(&a).expect("chain systems are SPD");
        let x = f.solve(&b);
        let mut r = vec![0.0; n];
        a.residual_into(&b, &x, &mut r);
        let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        let rn: f64 = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(rn <= 1e-8 * bn.max(1.0), "residual {rn}");
    }
}

#[test]
fn iterative_solvers_agree_with_direct() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xC5_05);
    for _ in 0..CASES / 2 {
        let a = spd_chain(&mut rng);
        let n = a.rows();
        let b = vec![1.0; n];
        let gold = Solver::new(SolverKind::Cholesky).solve(&a, &b);
        for kind in [SolverKind::Cg, SolverKind::JacobiPcg, SolverKind::AmgPcg] {
            let r = Solver::new(kind)
                .with_tolerance(1e-11)
                .with_max_iterations(10_000)
                .solve(&a, &b);
            assert!(r.converged, "{kind:?} did not converge");
            for (p, q) in r.x.iter().zip(&gold.x) {
                assert!((p - q).abs() < 1e-6, "{kind:?} mismatch");
            }
        }
    }
}

#[test]
fn solutions_of_m_matrices_with_nonnegative_rhs_are_nonnegative() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xC5_06);
    for _ in 0..CASES {
        // Monotone (M-matrix) systems map nonnegative currents to
        // nonnegative drops — the physical sanity the pipeline relies on.
        let a = spd_chain(&mut rng);
        let scale = rng.random_range(0.0f64..2.0);
        let n = a.rows();
        let b = vec![scale * 1e-3; n];
        let x = Solver::new(SolverKind::Cholesky).solve(&a, &b).x;
        for v in x {
            assert!(v >= -1e-12);
        }
    }
}
