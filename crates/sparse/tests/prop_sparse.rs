//! Property-based tests for the sparse linear algebra core.

use irf_sparse::cholesky::CholeskyFactor;
use irf_sparse::{CsrMatrix, Solver, SolverKind, TripletMatrix};
use proptest::prelude::*;

/// Strategy: a random connected resistor-chain SPD system of size
/// `2..=40` with grounded endpoints and positive conductances.
fn spd_chain() -> impl Strategy<Value = CsrMatrix> {
    (2usize..=40, proptest::collection::vec(0.1f64..10.0, 41))
        .prop_map(|(n, conds)| {
            let mut t = TripletMatrix::new(n, n);
            for i in 0..n - 1 {
                t.stamp_conductance(i, i + 1, conds[i]);
            }
            t.stamp_grounded_conductance(0, conds[40 - 1]);
            t.stamp_grounded_conductance(n - 1, conds[40 - 2]);
            t.to_csr()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_from_triplets_matches_get(entries in proptest::collection::vec(
        (0usize..8, 0usize..8, -5.0f64..5.0), 0..50)) {
        let a = CsrMatrix::from_triplets(8, 8, &entries);
        // Dense accumulation as the oracle.
        let mut dense = [[0.0f64; 8]; 8];
        for &(r, c, v) in &entries {
            dense[r][c] += v;
        }
        for r in 0..8 {
            for c in 0..8 {
                prop_assert!((a.get(r, c) - dense[r][c]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn spmv_is_linear(entries in proptest::collection::vec(
        (0usize..6, 0usize..6, -3.0f64..3.0), 1..30),
        x in proptest::collection::vec(-2.0f64..2.0, 6),
        y in proptest::collection::vec(-2.0f64..2.0, 6),
        alpha in -3.0f64..3.0) {
        let a = CsrMatrix::from_triplets(6, 6, &entries);
        // A(alpha x + y) == alpha A x + A y
        let mixed: Vec<f64> = x.iter().zip(&y).map(|(xi, yi)| alpha * xi + yi).collect();
        let lhs = a.spmv(&mixed);
        let ax = a.spmv(&x);
        let ay = a.spmv(&y);
        for i in 0..6 {
            prop_assert!((lhs[i] - (alpha * ax[i] + ay[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn transpose_preserves_entries(entries in proptest::collection::vec(
        (0usize..7, 0usize..5, -4.0f64..4.0), 0..30)) {
        let a = CsrMatrix::from_triplets(7, 5, &entries);
        let at = a.transpose();
        prop_assert_eq!(at.rows(), 5);
        prop_assert_eq!(at.cols(), 7);
        for (r, c, v) in a.iter() {
            prop_assert!((at.get(c, r) - v).abs() < 1e-12);
        }
        prop_assert_eq!(a.nnz(), at.nnz());
    }

    #[test]
    fn cholesky_solves_random_chains(a in spd_chain(),
        rhs_seed in 0u64..1000) {
        let n = a.rows();
        let b: Vec<f64> = (0..n)
            .map(|i| (((i as u64 + rhs_seed) % 17) as f64 - 8.0) / 8.0)
            .collect();
        let f = CholeskyFactor::factor(&a).expect("chain systems are SPD");
        let x = f.solve(&b);
        let mut r = vec![0.0; n];
        a.residual_into(&b, &x, &mut r);
        let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        let rn: f64 = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!(rn <= 1e-8 * bn.max(1.0), "residual {rn}");
    }

    #[test]
    fn iterative_solvers_agree_with_direct(a in spd_chain()) {
        let n = a.rows();
        let b = vec![1.0; n];
        let gold = Solver::new(SolverKind::Cholesky).solve(&a, &b);
        for kind in [SolverKind::Cg, SolverKind::JacobiPcg, SolverKind::AmgPcg] {
            let r = Solver::new(kind)
                .with_tolerance(1e-11)
                .with_max_iterations(10_000)
                .solve(&a, &b);
            prop_assert!(r.converged, "{kind:?} did not converge");
            for (p, q) in r.x.iter().zip(&gold.x) {
                prop_assert!((p - q).abs() < 1e-6, "{kind:?} mismatch");
            }
        }
    }

    #[test]
    fn solutions_of_m_matrices_with_nonnegative_rhs_are_nonnegative(
        a in spd_chain(), scale in 0.0f64..2.0) {
        // Monotone (M-matrix) systems map nonnegative currents to
        // nonnegative drops — the physical sanity the pipeline relies on.
        let n = a.rows();
        let b = vec![scale * 1e-3; n];
        let x = Solver::new(SolverKind::Cholesky).solve(&a, &b).x;
        for v in x {
            prop_assert!(v >= -1e-12);
        }
    }
}
