//! Property-based tests for the dataset substrate: every design the
//! generators can emit must be physically well-formed.

use irf_data::golden::golden_drops;
use irf_data::synth::{synthesize, SynthSpec};
use irf_data::{fake, real_like};
use irf_pg::PowerGrid;
use proptest::prelude::*;

fn small_spec() -> impl Strategy<Value = SynthSpec> {
    (
        6usize..=12,  // m1 stripes
        6usize..=12,  // m2 stripes
        2usize..=4,   // m4 stripes
        1usize..=4,   // pads
        0.01f64..0.1, // total current
        0.0f64..0.3,  // jitter
        0usize..=2,   // blockages
        0usize..=3,   // hotspot clusters
        0u64..1000,   // seed
    )
        .prop_map(
            |(m1, m2, m4, pads, current, jitter, blockages, clusters, seed)| SynthSpec {
                m1_stripes: m1,
                m2_stripes: m2,
                m4_stripes: m4,
                pads,
                total_current: current,
                stripe_jitter: jitter,
                blockages,
                hotspot_clusters: clusters,
                hotspot_fraction: if clusters > 0 { 0.5 } else { 0.0 },
                seed,
                ..SynthSpec::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_synthesized_design_is_well_formed(spec in small_spec()) {
        let netlist = synthesize(&spec);
        let grid = PowerGrid::from_netlist(&netlist).expect("generator emits valid grids");
        prop_assert!(grid.is_connected_to_pads(), "floating nodes");
        prop_assert_eq!(grid.pads.len(), spec.pads);
        prop_assert!(!grid.loads.is_empty());
        // Current conservation (netlist stores 7 significant digits).
        prop_assert!(
            (grid.total_load_current() - spec.total_current).abs()
                < 1e-4 * spec.total_current.max(1e-6)
        );
    }

    #[test]
    fn golden_solutions_are_physical(spec in small_spec()) {
        let grid = PowerGrid::from_netlist(&synthesize(&spec)).expect("valid");
        let drops = golden_drops(&grid);
        // Drops are non-negative and below the supply.
        prop_assert!(drops.iter().all(|&d| (-1e-12..grid.vdd()).contains(&d)));
        // Pads sit at exactly zero drop.
        for p in &grid.pads {
            prop_assert_eq!(drops[p.node], 0.0);
        }
        // Maximum principle: the worst drop is at a load-bearing or
        // interior node, never at a pad.
        let worst = drops.iter().cloned().fold(0.0, f64::max);
        prop_assert!(worst > 0.0);
    }

    #[test]
    fn class_generators_are_deterministic(seed in 0u64..500) {
        prop_assert_eq!(fake::generate(seed), fake::generate(seed));
        prop_assert_eq!(real_like::generate(seed), real_like::generate(seed));
    }

    #[test]
    fn netlists_roundtrip_via_spice_text(spec in small_spec()) {
        let n = synthesize(&spec);
        let text = irf_spice::write(&n);
        let again = irf_spice::parse(&text).expect("round-trips");
        prop_assert_eq!(n.resistors().len(), again.resistors().len());
        prop_assert_eq!(n.current_sources().len(), again.current_sources().len());
        prop_assert_eq!(n.voltage_sources().len(), again.voltage_sources().len());
        // And the rebuilt grid is equivalent node-for-node.
        let ga = PowerGrid::from_netlist(&n).expect("valid");
        let gb = PowerGrid::from_netlist(&again).expect("valid");
        prop_assert_eq!(ga.nodes.len(), gb.nodes.len());
        prop_assert_eq!(ga.segments.len(), gb.segments.len());
    }
}
