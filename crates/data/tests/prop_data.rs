//! Randomized-but-deterministic property tests for the dataset
//! substrate: every design the generators can emit must be physically
//! well-formed (fixed seeds, exact reproduction on failure).

use irf_data::golden::golden_drops;
use irf_data::synth::{synthesize, SynthSpec};
use irf_data::{fake, real_like};
use irf_pg::PowerGrid;
use irf_runtime::Xoshiro256pp;

const CASES: u64 = 24;

fn small_spec(rng: &mut Xoshiro256pp) -> SynthSpec {
    let clusters = rng.random_range(0usize..=3);
    SynthSpec {
        m1_stripes: rng.random_range(6usize..=12),
        m2_stripes: rng.random_range(6usize..=12),
        m4_stripes: rng.random_range(2usize..=4),
        pads: rng.random_range(1usize..=4),
        total_current: rng.random_range(0.01f64..0.1),
        stripe_jitter: rng.random_range(0.0f64..0.3),
        blockages: rng.random_range(0usize..=2),
        hotspot_clusters: clusters,
        hotspot_fraction: if clusters > 0 { 0.5 } else { 0.0 },
        seed: rng.random_range(0u64..1000),
        ..SynthSpec::default()
    }
}

#[test]
fn every_synthesized_design_is_well_formed() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xDA_01);
    for _ in 0..CASES {
        let spec = small_spec(&mut rng);
        let netlist = synthesize(&spec);
        let grid = PowerGrid::from_netlist(&netlist).expect("generator emits valid grids");
        assert!(grid.is_connected_to_pads(), "floating nodes");
        assert_eq!(grid.pads.len(), spec.pads);
        assert!(!grid.loads.is_empty());
        // Current conservation (netlist stores 7 significant digits).
        assert!(
            (grid.total_load_current() - spec.total_current).abs()
                < 1e-4 * spec.total_current.max(1e-6)
        );
    }
}

#[test]
fn golden_solutions_are_physical() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xDA_02);
    for _ in 0..CASES {
        let spec = small_spec(&mut rng);
        let grid = PowerGrid::from_netlist(&synthesize(&spec)).expect("valid");
        let drops = golden_drops(&grid);
        // Drops are non-negative and below the supply.
        assert!(drops.iter().all(|&d| (-1e-12..grid.vdd()).contains(&d)));
        // Pads sit at exactly zero drop.
        for p in &grid.pads {
            assert_eq!(drops[p.node], 0.0);
        }
        // Maximum principle: the worst drop is at a load-bearing or
        // interior node, never at a pad.
        let worst = drops.iter().cloned().fold(0.0, f64::max);
        assert!(worst > 0.0);
    }
}

#[test]
fn class_generators_are_deterministic() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xDA_03);
    for _ in 0..CASES {
        let seed = rng.random_range(0u64..500);
        assert_eq!(fake::generate(seed), fake::generate(seed));
        assert_eq!(real_like::generate(seed), real_like::generate(seed));
    }
}

#[test]
fn netlists_roundtrip_via_spice_text() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xDA_04);
    for _ in 0..CASES {
        let spec = small_spec(&mut rng);
        let n = synthesize(&spec);
        let text = irf_spice::write(&n);
        let again = irf_spice::parse(&text).expect("round-trips");
        assert_eq!(n.resistors().len(), again.resistors().len());
        assert_eq!(n.current_sources().len(), again.current_sources().len());
        assert_eq!(n.voltage_sources().len(), again.voltage_sources().len());
        // And the rebuilt grid is equivalent node-for-node.
        let ga = PowerGrid::from_netlist(&n).expect("valid");
        let gb = PowerGrid::from_netlist(&again).expect("valid");
        assert_eq!(ga.nodes.len(), gb.nodes.len());
        assert_eq!(ga.segments.len(), gb.segments.len());
    }
}
