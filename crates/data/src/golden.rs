//! Golden labelling via the exact direct solver.

use irf_pg::{GridMap, PowerGrid, Rasterizer};
use irf_sparse::cholesky::CholeskyFactor;

/// Exact per-node IR drops from a sparse Cholesky solve — the golden
/// reference the contest (and this reproduction) labels designs with.
///
/// # Panics
///
/// Panics if the reduced system is not SPD (which indicates a
/// disconnected grid; check
/// [`PowerGrid::is_connected_to_pads`](irf_pg::PowerGrid::is_connected_to_pads)).
#[must_use]
pub fn golden_drops(grid: &PowerGrid) -> Vec<f64> {
    let system = grid.build_system();
    let factor = CholeskyFactor::factor(&system.matrix)
        .expect("reduced PG system must be SPD; is the grid connected to pads?");
    let reduced = factor.solve(&system.rhs);
    system.expand_solution(&reduced)
}

/// The golden bottom-layer IR-drop map — the label `y` of the paper's
/// problem formulation.
#[must_use]
pub fn golden_label(grid: &PowerGrid, raster: &Rasterizer) -> GridMap {
    let drops = golden_drops(grid);
    irf_features::solution::bottom_layer_solution_map(grid, &drops, raster)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synthesize, SynthSpec};

    #[test]
    fn golden_drops_are_nonnegative_and_bounded() {
        let g = irf_pg::PowerGrid::from_netlist(&synthesize(&SynthSpec::default())).unwrap();
        let drops = golden_drops(&g);
        assert_eq!(drops.len(), g.nodes.len());
        assert!(drops.iter().all(|&d| d >= -1e-12));
        // Drops cannot exceed the supply.
        assert!(drops.iter().all(|&d| d < g.vdd()));
    }

    #[test]
    fn pads_have_zero_drop() {
        let g = irf_pg::PowerGrid::from_netlist(&synthesize(&SynthSpec::default())).unwrap();
        let drops = golden_drops(&g);
        for p in &g.pads {
            assert_eq!(drops[p.node], 0.0);
        }
    }

    #[test]
    fn label_map_has_hotspots() {
        let g = irf_pg::PowerGrid::from_netlist(&synthesize(&SynthSpec::default())).unwrap();
        let raster = Rasterizer::new(g.bounding_box(), 16, 16);
        let label = golden_label(&g, &raster);
        assert!(label.max() > 0.0);
        assert!(label.min() >= 0.0);
    }

    #[test]
    fn more_current_means_more_drop() {
        let base = SynthSpec::default();
        let heavy = SynthSpec {
            total_current: base.total_current * 2.0,
            ..base.clone()
        };
        let gb = irf_pg::PowerGrid::from_netlist(&synthesize(&base)).unwrap();
        let gh = irf_pg::PowerGrid::from_netlist(&synthesize(&heavy)).unwrap();
        let db = golden_drops(&gb);
        let dh = golden_drops(&gh);
        let max_b = db.iter().copied().fold(0.0, f64::max);
        let max_h = dh.iter().copied().fold(0.0, f64::max);
        assert!(
            (max_h - 2.0 * max_b).abs() < 1e-4 * max_b.max(1e-12),
            "linearity of G d = I: {max_h} vs {}",
            2.0 * max_b
        );
    }
}
