//! Parametric multi-layer power-grid synthesis.
//!
//! Both design classes share one generator: a three-layer
//! stripe-and-via topology (m1 horizontal, m2 vertical, m4 horizontal
//! coarse), pads on m4, and cell loads on m1. The
//! [`SynthSpec`] knobs — stripe jitter, blockages, hotspot clustering
//! — are what separate "fake" (regular) from "real-like" (irregular)
//! designs.

use irf_runtime::Xoshiro256pp;
use irf_spice::Netlist;
use std::io;
use std::path::Path;

/// Specification of one synthetic design.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthSpec {
    /// Die width in database units.
    pub die_w: i64,
    /// Die height in database units.
    pub die_h: i64,
    /// Number of m1 (horizontal) stripes.
    pub m1_stripes: usize,
    /// Number of m2 (vertical) stripes.
    pub m2_stripes: usize,
    /// Number of m4 (horizontal, coarse) stripes.
    pub m4_stripes: usize,
    /// Sheet resistance per database unit for (m1, m2, m4).
    pub r_per_dbu: (f64, f64, f64),
    /// Via resistance for m1-m2 and m2-m4 connections.
    pub via_r: (f64, f64),
    /// Number of power pads placed on m4 stripe crossings.
    pub pads: usize,
    /// Supply voltage.
    pub vdd: f64,
    /// Total load current (amperes), split over the cell loads.
    pub total_current: f64,
    /// Relative jitter of stripe positions (0 = perfectly regular).
    pub stripe_jitter: f64,
    /// Number of rectangular macro blockages (no loads inside, m1
    /// stripes broken).
    pub blockages: usize,
    /// Number of Gaussian hotspot clusters added on top of the smooth
    /// base current field.
    pub hotspot_clusters: usize,
    /// Fraction of total current concentrated in hotspot clusters.
    pub hotspot_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynthSpec {
    fn default() -> Self {
        SynthSpec {
            die_w: 12_800,
            die_h: 12_800,
            m1_stripes: 32,
            m2_stripes: 32,
            m4_stripes: 6,
            // Strong m1/m4 anisotropy: thin cell-layer wires over a
            // low-resistance top grid, the regime where truncated
            // AMG-PCG still has visible error at k = 10 (paper Fig. 7).
            r_per_dbu: (8e-3, 8e-4, 6e-5),
            via_r: (4.0, 1.5),
            pads: 4,
            vdd: 1.1,
            total_current: 0.08,
            stripe_jitter: 0.0,
            blockages: 0,
            hotspot_clusters: 0,
            hotspot_fraction: 0.0,
            seed: 1,
        }
    }
}

/// Synthesizes a SPICE netlist for the spec.
///
/// The output uses the ICCAD-2023 node naming convention so it parses
/// back through [`irf_spice::parse`] with full layer/coordinate
/// structure.
///
/// # Panics
///
/// Panics if the spec is degenerate (fewer than 2 stripes on any
/// layer, or zero pads).
#[must_use]
pub fn synthesize(spec: &SynthSpec) -> Netlist {
    let src = synthesize_to_string(spec);
    irf_spice::parse(&src).expect("synthesized netlist always parses")
}

/// Synthesizes the SPICE text for the spec without parsing it — the
/// same bytes [`synthesize`] parses.
///
/// # Panics
///
/// See [`synthesize`].
#[must_use]
pub fn synthesize_to_string(spec: &SynthSpec) -> String {
    let mut src = String::new();
    emit_netlist(spec, &mut src).expect("writing to a String cannot fail");
    src
}

/// Streams the spec's SPICE text into an [`io::Write`] sink —
/// writer-side generation with no in-memory netlist or source string,
/// the million-node front half of the bounded-memory pipeline. The
/// bytes are identical to [`synthesize_to_string`] for the same spec.
///
/// # Errors
///
/// Propagates the sink's I/O errors.
///
/// # Panics
///
/// See [`synthesize`].
pub fn synthesize_to_writer<W: io::Write>(spec: &SynthSpec, out: W) -> io::Result<()> {
    struct IoFmt<W: io::Write> {
        out: W,
        err: Option<io::Error>,
    }
    impl<W: io::Write> std::fmt::Write for IoFmt<W> {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            self.out.write_all(s.as_bytes()).map_err(|e| {
                self.err = Some(e);
                std::fmt::Error
            })
        }
    }
    let mut sink = IoFmt { out, err: None };
    match emit_netlist(spec, &mut sink) {
        Ok(()) => Ok(()),
        Err(_) => Err(sink
            .err
            .unwrap_or_else(|| io::Error::other("formatting failed"))),
    }
}

/// Streams the spec's SPICE text into a freshly created file at
/// `path` behind a large write buffer.
///
/// # Errors
///
/// Propagates file-creation and write errors.
///
/// # Panics
///
/// See [`synthesize`].
pub fn synthesize_to_path(spec: &SynthSpec, path: impl AsRef<Path>) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut writer = io::BufWriter::with_capacity(1 << 20, file);
    synthesize_to_writer(spec, &mut writer)?;
    io::Write::flush(&mut writer)
}

/// Rough node count the spec will synthesize: crossings on m1, m2 and
/// m4 (each m1×m2 crossing exists on both layers, plus the coarse m4
/// grid). Blockages reduce the real count; use this to size specs,
/// not to allocate exactly.
#[must_use]
pub fn approx_node_count(spec: &SynthSpec) -> usize {
    let m1 = spec.m1_stripes;
    let m2 = spec.m2_stripes;
    let m4 = spec.m4_stripes;
    m1 * m2 + m2 * (m1 + m4) + m2 * m4
}

impl SynthSpec {
    /// A spec sized so [`approx_node_count`] lands near
    /// `target_nodes`: square m1/m2 stripe counts, a proportionally
    /// coarse m4 grid, pads scaled with the perimeter, and mild
    /// irregularity (jitter + hotspots) so the grid is "real-like"
    /// rather than perfectly regular. The die grows with the stripe
    /// count so segment resistances stay in a realistic range.
    ///
    /// # Panics
    ///
    /// Panics if `target_nodes < 8`.
    #[must_use]
    pub fn scaled_to_nodes(target_nodes: usize, seed: u64) -> SynthSpec {
        assert!(target_nodes >= 8, "target too small to form a grid");
        // approx_node_count ≈ 2·s² for s = m1 = m2 (m4 term is minor).
        let s = (((target_nodes as f64) / 2.0).sqrt().round() as usize).max(2);
        let m4 = (s / 64).clamp(2, 64);
        let pads = (s / 16).clamp(4, 256);
        SynthSpec {
            die_w: 400 * s as i64,
            die_h: 400 * s as i64,
            m1_stripes: s,
            m2_stripes: s,
            m4_stripes: m4,
            pads,
            total_current: 0.08 * (s as f64 / 32.0),
            stripe_jitter: 0.05,
            hotspot_clusters: 4,
            hotspot_fraction: 0.3,
            seed,
            ..SynthSpec::default()
        }
    }
}

/// The single generator behind every `synthesize*` front door: emits
/// the spec's SPICE text card by card into `out`. All randomness
/// flows through one seeded RNG in a fixed consumption order, so the
/// emitted bytes depend only on the spec — never on the sink type.
fn emit_netlist<W: std::fmt::Write>(spec: &SynthSpec, out: &mut W) -> std::fmt::Result {
    assert!(
        spec.m1_stripes >= 2 && spec.m2_stripes >= 2 && spec.m4_stripes >= 1,
        "spec needs at least 2x2 stripes and one m4 stripe"
    );
    assert!(spec.pads >= 1, "spec needs at least one pad");
    let mut rng = Xoshiro256pp::seed_from_u64(spec.seed);
    let src = out;
    writeln!(src, "* synthetic PG design (seed {})", spec.seed)?;

    // Stripe coordinates with optional jitter.
    let m1_ys = stripe_positions(spec.die_h, spec.m1_stripes, spec.stripe_jitter, &mut rng);
    let m2_xs = stripe_positions(spec.die_w, spec.m2_stripes, spec.stripe_jitter, &mut rng);
    let m4_ys = stripe_positions(spec.die_h, spec.m4_stripes, spec.stripe_jitter, &mut rng);

    // Blockages: rectangles in which m1 has no nodes/loads.
    let blocks: Vec<(i64, i64, i64, i64)> = (0..spec.blockages)
        .map(|_| {
            let bw = spec.die_w / 5 + rng.random_range(0..spec.die_w / 5);
            let bh = spec.die_h / 5 + rng.random_range(0..spec.die_h / 5);
            let x0 = rng.random_range(0..(spec.die_w - bw).max(1));
            let y0 = rng.random_range(0..(spec.die_h - bh).max(1));
            (x0, y0, x0 + bw, y0 + bh)
        })
        .collect();
    let blocked = |x: i64, y: i64| {
        blocks
            .iter()
            .any(|&(x0, y0, x1, y1)| x >= x0 && x <= x1 && y >= y0 && y <= y1)
    };

    let name = |layer: u32, x: i64, y: i64| format!("n1_m{layer}_{x}_{y}");
    let mut r_id = 0usize;
    let mut emit_r = |src: &mut W, a: &str, b: &str, ohms: f64| -> std::fmt::Result {
        r_id += 1;
        writeln!(src, "R{r_id} {a} {b} {ohms:.6e}")
    };

    // m1 horizontal stripes: nodes at crossings with m2, broken by blockages.
    for &y in &m1_ys {
        let mut prev: Option<i64> = None;
        for &x in &m2_xs {
            if blocked(x, y) {
                prev = None;
                continue;
            }
            if let Some(px) = prev {
                let ohms = (x - px) as f64 * spec.r_per_dbu.0;
                emit_r(&mut *src, &name(1, px, y), &name(1, x, y), ohms.max(1e-6))?;
            }
            prev = Some(x);
        }
    }
    // m2 vertical stripes: nodes at crossings with m1 and m4.
    for &x in &m2_xs {
        let mut ys: Vec<(i64, u32)> = m1_ys.iter().map(|&y| (y, 1u32)).collect();
        ys.extend(m4_ys.iter().map(|&y| (y, 4u32)));
        ys.sort_unstable();
        ys.dedup_by_key(|&mut (y, _)| y);
        let mut prev: Option<i64> = None;
        for &(y, _) in &ys {
            if let Some(py) = prev {
                let ohms = (y - py) as f64 * spec.r_per_dbu.1;
                emit_r(&mut *src, &name(2, x, py), &name(2, x, y), ohms.max(1e-6))?;
            }
            prev = Some(y);
        }
        // Vias m1-m2 at m1 crossings (skip blocked), m2-m4 at m4 crossings.
        for &y in &m1_ys {
            if !blocked(x, y) {
                emit_r(&mut *src, &name(1, x, y), &name(2, x, y), spec.via_r.0)?;
            }
        }
        for &y in &m4_ys {
            emit_r(&mut *src, &name(2, x, y), &name(4, x, y), spec.via_r.1)?;
        }
    }
    // m4 horizontal coarse stripes.
    for &y in &m4_ys {
        for pair in m2_xs.windows(2) {
            let ohms = (pair[1] - pair[0]) as f64 * spec.r_per_dbu.2;
            emit_r(
                &mut *src,
                &name(4, pair[0], y),
                &name(4, pair[1], y),
                ohms.max(1e-6),
            )?;
        }
    }

    // Pads: evenly spread over m4 crossings.
    let mut pad_sites: Vec<(i64, i64)> = Vec::new();
    for &y in &m4_ys {
        for &x in &m2_xs {
            pad_sites.push((x, y));
        }
    }
    let step = (pad_sites.len() / spec.pads).max(1);
    let mut pad_count = 0;
    for (i, &(x, y)) in pad_sites.iter().enumerate() {
        if i % step == 0 && pad_count < spec.pads {
            pad_count += 1;
            writeln!(src, "V{pad_count} {} 0 {}", name(4, x, y), spec.vdd)?;
        }
    }

    // Load currents on m1 nodes: smooth base field + optional hotspots.
    let sites: Vec<(i64, i64)> = m1_ys
        .iter()
        .flat_map(|&y| m2_xs.iter().map(move |&x| (x, y)))
        .filter(|&(x, y)| !blocked(x, y))
        .collect();
    let base_total = spec.total_current * (1.0 - spec.hotspot_fraction);
    // Smooth base: low-frequency sinusoidal field with random phase.
    let (phx, phy): (f64, f64) = (
        rng.random_range(0.0..std::f64::consts::TAU),
        rng.random_range(0.0..std::f64::consts::TAU),
    );
    let mut weights: Vec<f64> = sites
        .iter()
        .map(|&(x, y)| {
            let fx = x as f64 / spec.die_w as f64;
            let fy = y as f64 / spec.die_h as f64;
            1.0 + 0.5 * (std::f64::consts::TAU * fx + phx).sin()
                + 0.5 * (std::f64::consts::TAU * fy + phy).cos()
        })
        .collect();
    let wsum: f64 = weights.iter().sum();
    for w in &mut weights {
        *w = *w / wsum * base_total;
    }
    // Hotspot clusters: Gaussian blobs of concentrated current.
    if spec.hotspot_clusters > 0 && spec.hotspot_fraction > 0.0 {
        let per_cluster = spec.total_current * spec.hotspot_fraction / spec.hotspot_clusters as f64;
        for _ in 0..spec.hotspot_clusters {
            let cx = rng.random_range(0..spec.die_w) as f64;
            let cy = rng.random_range(0..spec.die_h) as f64;
            let sigma = spec.die_w as f64 / rng.random_range(8.0_f64..16.0);
            let mut blob: Vec<f64> = sites
                .iter()
                .map(|&(x, y)| {
                    let dx = x as f64 - cx;
                    let dy = y as f64 - cy;
                    (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp()
                })
                .collect();
            let bsum: f64 = blob.iter().sum();
            if bsum > 0.0 {
                for (w, b) in weights.iter_mut().zip(&blob) {
                    *w += b / bsum * per_cluster;
                }
            }
            blob.clear();
        }
    }
    for (i, (&(x, y), w)) in sites.iter().zip(&weights).enumerate() {
        if *w > 0.0 {
            writeln!(src, "I{} {} 0 {:.6e}", i + 1, name(1, x, y), w)?;
        }
    }
    writeln!(src, ".end")
}

/// Evenly spaced stripe coordinates with optional relative jitter,
/// strictly increasing and inside `[0, extent]`.
fn stripe_positions(extent: i64, count: usize, jitter: f64, rng: &mut Xoshiro256pp) -> Vec<i64> {
    let pitch = extent as f64 / count as f64;
    let mut out: Vec<i64> = (0..count)
        .map(|i| {
            let base = (i as f64 + 0.5) * pitch;
            let j = if jitter > 0.0 {
                rng.random_range(-jitter..jitter) * pitch
            } else {
                0.0
            };
            (base + j).round().clamp(0.0, extent as f64) as i64
        })
        .collect();
    out.sort_unstable();
    out.dedup();
    // Guard against jitter collapsing stripes together.
    while out.len() < count {
        let extra = rng.random_range(0..=extent);
        if !out.contains(&extra) {
            out.push(extra);
            out.sort_unstable();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use irf_pg::PowerGrid;

    #[test]
    fn default_spec_synthesizes_valid_grid() {
        let n = synthesize(&SynthSpec::default());
        let g = PowerGrid::from_netlist(&n).expect("valid grid");
        assert!(g.nodes.len() > 200);
        assert_eq!(g.pads.len(), 4);
        assert_eq!(g.layers(), vec![1, 2, 4]);
        assert!(g.is_connected_to_pads());
        // Netlist values are written with 7 significant digits.
        assert!((g.total_load_current() - 0.08).abs() < 1e-5);
    }

    #[test]
    fn synthesis_is_deterministic() {
        let spec = SynthSpec::default();
        assert_eq!(synthesize(&spec), synthesize(&spec));
        let other = SynthSpec {
            seed: 2,
            ..SynthSpec::default()
        };
        assert_ne!(synthesize(&spec), synthesize(&other));
    }

    #[test]
    fn jitter_produces_irregular_stripes() {
        let spec = SynthSpec {
            stripe_jitter: 0.3,
            seed: 7,
            ..SynthSpec::default()
        };
        let n = synthesize(&spec);
        let g = PowerGrid::from_netlist(&n).expect("valid");
        // Check that m1 y-coordinates are not evenly spaced.
        let mut ys: Vec<i64> = g
            .nodes
            .iter()
            .filter(|nd| nd.layer == 1)
            .map(|nd| nd.y)
            .collect();
        ys.sort_unstable();
        ys.dedup();
        let gaps: Vec<i64> = ys.windows(2).map(|w| w[1] - w[0]).collect();
        let min = gaps.iter().min().copied().unwrap_or(0);
        let max = gaps.iter().max().copied().unwrap_or(0);
        assert!(max > min, "jittered stripes should have uneven pitch");
    }

    #[test]
    fn blockages_remove_loads_locally() {
        let with = SynthSpec {
            blockages: 3,
            seed: 11,
            ..SynthSpec::default()
        };
        let without = SynthSpec {
            seed: 11,
            ..SynthSpec::default()
        };
        let gw = PowerGrid::from_netlist(&synthesize(&with)).expect("valid");
        let go = PowerGrid::from_netlist(&synthesize(&without)).expect("valid");
        assert!(gw.loads.len() < go.loads.len());
        assert!(gw.is_connected_to_pads());
    }

    #[test]
    fn hotspots_concentrate_current() {
        let spec = SynthSpec {
            hotspot_clusters: 2,
            hotspot_fraction: 0.6,
            seed: 13,
            ..SynthSpec::default()
        };
        let g = PowerGrid::from_netlist(&synthesize(&spec)).expect("valid");
        // Netlist values are written with 7 significant digits.
        assert!((g.total_load_current() - 0.08).abs() < 1e-5);
        // The largest single load should be far above the mean.
        let max = g.loads.iter().map(|l| l.amps).fold(0.0, f64::max);
        let mean = g.total_load_current() / g.loads.len() as f64;
        assert!(max > 3.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn roundtrips_through_spice_writer() {
        let n = synthesize(&SynthSpec::default());
        let text = irf_spice::write(&n);
        let again = irf_spice::parse(&text).expect("reparses");
        assert_eq!(n.resistors().len(), again.resistors().len());
        assert_eq!(n.current_sources().len(), again.current_sources().len());
    }

    #[test]
    fn string_and_writer_sinks_emit_identical_bytes() {
        let spec = SynthSpec {
            blockages: 2,
            stripe_jitter: 0.1,
            seed: 17,
            ..SynthSpec::default()
        };
        let text = synthesize_to_string(&spec);
        let mut bytes: Vec<u8> = Vec::new();
        synthesize_to_writer(&spec, &mut bytes).expect("vec sink");
        assert_eq!(text.as_bytes(), &bytes[..]);
        // And the parsed netlist matches the materialized front door.
        let parsed = irf_spice::parse(&text).expect("parses");
        assert_eq!(parsed, synthesize(&spec));
        assert_eq!(parsed.content_hash(), synthesize(&spec).content_hash());
    }

    #[test]
    fn path_sink_matches_string_sink() {
        let spec = SynthSpec::default();
        let dir = std::env::temp_dir().join("irf_synth_path_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("synth.sp");
        synthesize_to_path(&spec, &path).expect("write file");
        let from_file = std::fs::read_to_string(&path).expect("read back");
        let _ = std::fs::remove_file(&path);
        assert_eq!(from_file, synthesize_to_string(&spec));
    }

    #[test]
    fn scaled_spec_lands_near_target() {
        for &target in &[50_000usize, 250_000] {
            let spec = SynthSpec::scaled_to_nodes(target, 3);
            let approx = approx_node_count(&spec);
            let ratio = approx as f64 / target as f64;
            assert!(
                (0.7..1.4).contains(&ratio),
                "target {target}: approx {approx} off by {ratio:.2}x"
            );
        }
        // Small scaled specs must still synthesize a valid grid.
        let spec = SynthSpec::scaled_to_nodes(5_000, 9);
        let g = PowerGrid::from_netlist(&synthesize(&spec)).expect("valid grid");
        assert!(g.is_connected_to_pads());
        let lo = approx_node_count(&spec) / 2;
        assert!(g.nodes.len() > lo, "{} nodes vs approx {lo}", g.nodes.len());
    }
}
