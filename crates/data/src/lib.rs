//! Dataset substrate: synthetic power-grid designs, golden labels,
//! augmentation, and curriculum scheduling.
//!
//! The paper evaluates on the ICCAD-2023 contest dataset (100
//! BeGAN-generated "fake" designs + 20 real designs). That data is not
//! redistributable, so this crate synthesizes an equivalent corpus
//! from first principles (see DESIGN.md, "Substitutions"):
//!
//! - [`synth::SynthSpec`] / [`synth::synthesize`] build multi-layer
//!   stripe-and-via power grids as SPICE netlists;
//! - [`fake`] produces regular, smooth-current designs (the "easy"
//!   class), [`real_like`] produces irregular designs with macro
//!   blockages and clustered hotspots (the "hard" class);
//! - [`golden`] labels every design with an exact sparse-Cholesky
//!   solve;
//! - [`augment`] implements the paper's 90/180/270-degree rotation
//!   augmentation and oversampling;
//! - [`curriculum`] implements the predefined easy-to-hard curriculum
//!   scheduler;
//! - [`dataset::Dataset`] ties it together with the contest-style
//!   train/test split;
//! - [`csv`] loads the contest's own image-based CSV data when the
//!   real dataset is available.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod augment;
pub mod csv;
pub mod curriculum;
pub mod dataset;
pub mod export;
pub mod fake;
pub mod golden;
pub mod real_like;
pub mod synth;

pub use dataset::{Dataset, Design, DesignClass};
pub use synth::{
    approx_node_count, synthesize, synthesize_to_path, synthesize_to_string, synthesize_to_writer,
    SynthSpec,
};
