//! Rotation augmentation and class oversampling (paper Section III-E
//! and IV-A).

use crate::dataset::DesignClass;

/// One training sample reference after augmentation planning: which
/// design, rotated by how many quarter turns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AugmentedSample {
    /// Index into the dataset's design list.
    pub design: usize,
    /// Clockwise quarter turns applied to every feature map and the
    /// label (0..=3).
    pub quarters: u32,
}

/// Expands design indices into the paper's augmentation plan:
///
/// - every design appears rotated by 0°, 90°, 180°, 270° (fourfold);
/// - oversampling on top: fake designs doubled, real designs
///   quintupled (the paper's "fake designs are doubled, and real ones
///   are quintupled").
#[must_use]
pub fn augmentation_plan(
    designs: &[(usize, DesignClass)],
    oversample: bool,
) -> Vec<AugmentedSample> {
    let mut plan = Vec::new();
    for &(idx, class) in designs {
        let copies = if oversample {
            match class {
                DesignClass::Fake => 2,
                DesignClass::Real => 5,
            }
        } else {
            1
        };
        for _ in 0..copies {
            for quarters in 0..4 {
                plan.push(AugmentedSample {
                    design: idx,
                    quarters,
                });
            }
        }
    }
    plan
}

/// Plan without rotations (the "w/o Data Aug." ablation), keeping the
/// oversampling so class balance stays comparable.
#[must_use]
pub fn no_rotation_plan(
    designs: &[(usize, DesignClass)],
    oversample: bool,
) -> Vec<AugmentedSample> {
    let mut plan = Vec::new();
    for &(idx, class) in designs {
        let copies = if oversample {
            match class {
                DesignClass::Fake => 2,
                DesignClass::Real => 5,
            }
        } else {
            1
        };
        for _ in 0..copies {
            plan.push(AugmentedSample {
                design: idx,
                quarters: 0,
            });
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourfold_rotation_without_oversampling() {
        let plan = augmentation_plan(&[(0, DesignClass::Fake)], false);
        assert_eq!(plan.len(), 4);
        let quarters: Vec<u32> = plan.iter().map(|s| s.quarters).collect();
        assert_eq!(quarters, vec![0, 1, 2, 3]);
    }

    #[test]
    fn oversampling_weights_classes() {
        let plan = augmentation_plan(&[(0, DesignClass::Fake), (1, DesignClass::Real)], true);
        let fake = plan.iter().filter(|s| s.design == 0).count();
        let real = plan.iter().filter(|s| s.design == 1).count();
        assert_eq!(fake, 2 * 4);
        assert_eq!(real, 5 * 4);
    }

    #[test]
    fn no_rotation_plan_keeps_copies_only() {
        let plan = no_rotation_plan(&[(3, DesignClass::Real)], true);
        assert_eq!(plan.len(), 5);
        assert!(plan.iter().all(|s| s.quarters == 0));
    }
}
