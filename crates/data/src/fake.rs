//! "Fake" (BeGAN-style artificially generated) designs — the easy
//! curriculum class.

use crate::synth::{synthesize, SynthSpec};
use irf_runtime::Xoshiro256pp;
use irf_spice::Netlist;

/// Generates the spec of one fake design: perfectly regular stripes,
/// smooth current, no blockages — mirroring the BeGAN generator's
/// clean synthetic grids.
#[must_use]
pub fn fake_spec(seed: u64) -> SynthSpec {
    let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0xFA4E);
    SynthSpec {
        m1_stripes: rng.random_range(24..=36),
        m2_stripes: rng.random_range(24..=36),
        m4_stripes: rng.random_range(4..=7),
        pads: rng.random_range(3..=6),
        total_current: rng.random_range(0.05..0.12),
        stripe_jitter: 0.0,
        blockages: 0,
        hotspot_clusters: 0,
        hotspot_fraction: 0.0,
        seed,
        ..SynthSpec::default()
    }
}

/// Synthesizes one fake design.
#[must_use]
pub fn generate(seed: u64) -> Netlist {
    synthesize(&fake_spec(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use irf_pg::PowerGrid;

    #[test]
    fn fake_designs_are_regular() {
        let spec = fake_spec(3);
        assert_eq!(spec.stripe_jitter, 0.0);
        assert_eq!(spec.blockages, 0);
        assert_eq!(spec.hotspot_clusters, 0);
    }

    #[test]
    fn fake_designs_vary_with_seed() {
        assert_ne!(fake_spec(1), fake_spec(2));
    }

    #[test]
    fn generated_design_is_well_formed() {
        let g = PowerGrid::from_netlist(&generate(5)).expect("valid");
        assert!(g.is_connected_to_pads());
    }
}
