//! Loader for the ICCAD-2023 contest's image-based data.
//!
//! Alongside SPICE netlists, the contest distributes per-design CSV
//! matrices — `current_map.csv`, `eff_dist_map.csv`,
//! `pdn_density.csv`, and the golden `ir_drop_map.csv` — where each
//! cell covers a 1 um x 1 um tile. This module parses that format so
//! the *real* contest data can be dropped into the training pipeline
//! in place of the synthetic corpus.

use irf_pg::GridMap;
use std::error::Error;
use std::fmt;

/// Error parsing a contest CSV matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseCsvError {
    /// A cell failed to parse as a number.
    BadNumber {
        /// 1-based row.
        row: usize,
        /// 1-based column.
        col: usize,
    },
    /// Rows have inconsistent lengths.
    RaggedRows {
        /// Row with the unexpected length (1-based).
        row: usize,
        /// Cells found.
        found: usize,
        /// Cells expected (from the first row).
        expected: usize,
    },
    /// The input had no rows.
    Empty,
}

impl fmt::Display for ParseCsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseCsvError::BadNumber { row, col } => {
                write!(f, "cell ({row},{col}) is not a number")
            }
            ParseCsvError::RaggedRows {
                row,
                found,
                expected,
            } => write!(f, "row {row} has {found} cells, expected {expected}"),
            ParseCsvError::Empty => write!(f, "csv contains no rows"),
        }
    }
}

impl Error for ParseCsvError {}

/// Parses one contest CSV matrix into a [`GridMap`] (row-major; the
/// first CSV row becomes pixel row `y = 0`).
///
/// # Errors
///
/// See [`ParseCsvError`].
pub fn parse_map_csv(src: &str) -> Result<GridMap, ParseCsvError> {
    let mut values: Vec<f32> = Vec::new();
    let mut width: Option<usize> = None;
    let mut height = 0usize;
    for (r, line) in src.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut count = 0usize;
        for (c, cell) in line.split(',').enumerate() {
            let v: f32 = cell.trim().parse().map_err(|_| ParseCsvError::BadNumber {
                row: r + 1,
                col: c + 1,
            })?;
            values.push(v);
            count += 1;
        }
        match width {
            None => width = Some(count),
            Some(w) if w != count => {
                return Err(ParseCsvError::RaggedRows {
                    row: r + 1,
                    found: count,
                    expected: w,
                })
            }
            Some(_) => {}
        }
        height += 1;
    }
    let width = width.ok_or(ParseCsvError::Empty)?;
    Ok(GridMap::from_vec(width, height, values))
}

/// The contest's per-design image bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct ContestImages {
    /// Tile current map (amperes).
    pub current: GridMap,
    /// Effective distance to the pads.
    pub eff_dist: GridMap,
    /// PDN density map.
    pub pdn_density: GridMap,
    /// Golden IR-drop map (volts), present for training designs.
    pub ir_drop: Option<GridMap>,
}

impl ContestImages {
    /// Assembles a bundle from CSV strings, verifying that every map
    /// shares one shape.
    ///
    /// # Errors
    ///
    /// Propagates [`ParseCsvError`], with a
    /// [`ParseCsvError::RaggedRows`] against row 0 when map shapes
    /// disagree.
    pub fn from_csv_strings(
        current: &str,
        eff_dist: &str,
        pdn_density: &str,
        ir_drop: Option<&str>,
    ) -> Result<Self, ParseCsvError> {
        let current = parse_map_csv(current)?;
        let eff_dist = parse_map_csv(eff_dist)?;
        let pdn_density = parse_map_csv(pdn_density)?;
        let ir_drop = ir_drop.map(parse_map_csv).transpose()?;
        let shape = (current.width(), current.height());
        for m in [&eff_dist, &pdn_density]
            .into_iter()
            .chain(ir_drop.as_ref())
        {
            if (m.width(), m.height()) != shape {
                return Err(ParseCsvError::RaggedRows {
                    row: 0,
                    found: m.width(),
                    expected: shape.0,
                });
            }
        }
        Ok(ContestImages {
            current,
            eff_dist,
            pdn_density,
            ir_drop,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_small_matrix() {
        let m = parse_map_csv("1,2,3\n4,5,6\n").expect("valid");
        assert_eq!((m.width(), m.height()), (3, 2));
        assert_eq!(m.get(2, 1), 6.0);
    }

    #[test]
    fn scientific_notation_and_spaces() {
        let m = parse_map_csv(" 1e-3 , 2.5E2 \n 0 , -4 \n").expect("valid");
        assert!((m.get(0, 0) - 1e-3).abs() < 1e-9);
        assert_eq!(m.get(1, 0), 250.0);
        assert_eq!(m.get(1, 1), -4.0);
    }

    #[test]
    fn ragged_rows_are_rejected() {
        let e = parse_map_csv("1,2\n3\n").unwrap_err();
        assert_eq!(
            e,
            ParseCsvError::RaggedRows {
                row: 2,
                found: 1,
                expected: 2
            }
        );
    }

    #[test]
    fn bad_cells_carry_coordinates() {
        let e = parse_map_csv("1,x\n").unwrap_err();
        assert_eq!(e, ParseCsvError::BadNumber { row: 1, col: 2 });
    }

    #[test]
    fn empty_input_is_rejected() {
        assert_eq!(parse_map_csv("\n\n"), Err(ParseCsvError::Empty));
    }

    #[test]
    fn bundle_checks_shapes() {
        let ok = ContestImages::from_csv_strings("1,2\n3,4\n", "0,0\n0,0\n", "1,1\n1,1\n", None);
        assert!(ok.is_ok());
        let bad =
            ContestImages::from_csv_strings("1,2\n3,4\n", "0,0,0\n0,0,0\n", "1,1\n1,1\n", None);
        assert!(bad.is_err());
    }

    #[test]
    fn golden_map_is_optional() {
        let b = ContestImages::from_csv_strings("1\n", "2\n", "3\n", Some("4\n")).expect("valid");
        assert_eq!(b.ir_drop.expect("present").get(0, 0), 4.0);
    }

    #[test]
    fn roundtrips_with_grid_map_csv_writer() {
        let m = GridMap::from_vec(2, 2, vec![0.5, 1.5, -2.0, 3.25]);
        let again = parse_map_csv(&m.to_csv()).expect("round-trips");
        assert_eq!(m, again);
    }
}
