//! Designs, datasets, and the contest-style split.

use crate::fake;
use crate::golden::golden_drops;
use crate::real_like;
use irf_pg::PowerGrid;

/// Difficulty class of a design (the curriculum's difficulty measurer
/// is *predefined* on exactly this label).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignClass {
    /// Artificially generated, regular — "easier".
    Fake,
    /// Real(-like), irregular — "harder".
    Real,
}

/// One labelled power-grid design.
#[derive(Debug, Clone)]
pub struct Design {
    /// Human-readable name.
    pub name: String,
    /// Difficulty class.
    pub class: DesignClass,
    /// The circuit model.
    pub grid: PowerGrid,
    /// Exact per-node IR drops (golden).
    pub golden: Vec<f64>,
}

impl Design {
    /// Builds a labelled fake design from a seed.
    #[must_use]
    pub fn fake(seed: u64) -> Self {
        let grid =
            PowerGrid::from_netlist(&fake::generate(seed)).expect("generator emits valid grids");
        let golden = golden_drops(&grid);
        Design {
            name: format!("fake_{seed:03}"),
            class: DesignClass::Fake,
            grid,
            golden,
        }
    }

    /// Builds a labelled real-like design from a seed.
    #[must_use]
    pub fn real_like(seed: u64) -> Self {
        let grid = PowerGrid::from_netlist(&real_like::generate(seed))
            .expect("generator emits valid grids");
        let golden = golden_drops(&grid);
        Design {
            name: format!("real_{seed:03}"),
            class: DesignClass::Real,
            grid,
            golden,
        }
    }

    /// Worst-case golden IR drop of the design.
    #[must_use]
    pub fn worst_drop(&self) -> f64 {
        self.golden.iter().copied().fold(0.0, f64::max)
    }
}

/// A corpus of designs with the contest-style split: some real designs
/// held out for testing, everything else (fake + remaining real) for
/// training.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// All designs.
    pub designs: Vec<Design>,
    /// Indices of the held-out test designs.
    pub test_indices: Vec<usize>,
}

impl Dataset {
    /// Generates the corpus: `n_fake` fake + `n_real` real-like
    /// designs, holding out `n_test` of the real designs for testing
    /// (the ICCAD-2023 setup holds out 10 of 20 real designs).
    ///
    /// # Panics
    ///
    /// Panics if `n_test > n_real`.
    #[must_use]
    pub fn generate(n_fake: usize, n_real: usize, n_test: usize, seed: u64) -> Self {
        assert!(
            n_test <= n_real,
            "cannot hold out more real designs than exist"
        );
        let mut designs = Vec::with_capacity(n_fake + n_real);
        for i in 0..n_fake {
            designs.push(Design::fake(seed.wrapping_add(i as u64)));
        }
        for i in 0..n_real {
            designs.push(Design::real_like(seed.wrapping_add(1000 + i as u64)));
        }
        // Hold out the last n_test real designs.
        let test_indices = (n_fake + n_real - n_test..n_fake + n_real).collect();
        Dataset {
            designs,
            test_indices,
        }
    }

    /// Indices of the training designs.
    #[must_use]
    pub fn train_indices(&self) -> Vec<usize> {
        (0..self.designs.len())
            .filter(|i| !self.test_indices.contains(i))
            .collect()
    }

    /// The training designs.
    pub fn train(&self) -> impl Iterator<Item = &Design> {
        self.train_indices().into_iter().map(|i| &self.designs[i])
    }

    /// The held-out test designs.
    pub fn test(&self) -> impl Iterator<Item = &Design> + '_ {
        self.test_indices.iter().map(|&i| &self.designs[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_respects_counts_and_split() {
        let ds = Dataset::generate(4, 3, 2, 42);
        assert_eq!(ds.designs.len(), 7);
        assert_eq!(ds.test_indices, vec![5, 6]);
        assert_eq!(ds.train_indices().len(), 5);
        // Test designs are all real.
        assert!(ds.test().all(|d| d.class == DesignClass::Real));
        // Training mixes fake and the remaining real.
        assert!(ds.train().any(|d| d.class == DesignClass::Fake));
        assert!(ds.train().any(|d| d.class == DesignClass::Real));
    }

    #[test]
    fn designs_carry_golden_labels() {
        let d = Design::fake(7);
        assert_eq!(d.golden.len(), d.grid.nodes.len());
        assert!(d.worst_drop() > 0.0);
    }

    #[test]
    fn real_designs_have_worse_hotspots_relative_to_mean() {
        // Hotspot clustering concentrates drop: peak/mean should be
        // higher for the real-like class on average.
        let ratio = |d: &Design| {
            let mean = d.golden.iter().sum::<f64>() / d.golden.len() as f64;
            d.worst_drop() / mean.max(1e-12)
        };
        let fake_avg: f64 = (0..3).map(|s| ratio(&Design::fake(s))).sum::<f64>() / 3.0;
        let real_avg: f64 = (0..3).map(|s| ratio(&Design::real_like(s))).sum::<f64>() / 3.0;
        assert!(
            real_avg > fake_avg,
            "real-like designs should be peakier: {real_avg:.2} vs {fake_avg:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "cannot hold out")]
    fn oversized_test_split_panics() {
        let _ = Dataset::generate(1, 1, 2, 0);
    }
}
