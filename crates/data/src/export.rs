//! Export a generated corpus to disk in the contest's layout.
//!
//! Each design gets a directory containing its SPICE netlist plus the
//! image-based CSVs (`current_map.csv`, `eff_dist_map.csv`,
//! `pdn_density.csv`, `ir_drop_map.csv`) — the exact shape of the
//! ICCAD-2023 release, so external tools (or the original contest
//! scoring scripts) can consume the synthetic corpus directly.

use crate::dataset::{Dataset, Design};
use irf_features::solution::bottom_layer_solution_map;
use irf_features::{current, density, distance};
use irf_pg::Rasterizer;
use std::fs;
use std::io;
use std::path::Path;

/// Writes one design's bundle into `dir` (created if absent) with the
/// given map resolution.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn export_design(design: &Design, dir: &Path, resolution: usize) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let grid = &design.grid;
    // SPICE netlist, regenerated through the writer so the exported
    // file round-trips through `irf_spice::parse`.
    let netlist = to_netlist(design);
    fs::write(dir.join("netlist.sp"), irf_spice::write(&netlist))?;
    let raster = Rasterizer::new(grid.bounding_box(), resolution, resolution);
    fs::write(
        dir.join("current_map.csv"),
        current::total_current_map(grid, &raster).to_csv(),
    )?;
    fs::write(
        dir.join("eff_dist_map.csv"),
        distance::effective_distance_map(grid, &raster).to_csv(),
    )?;
    fs::write(
        dir.join("pdn_density.csv"),
        density::pdn_density_map(grid, &raster).to_csv(),
    )?;
    fs::write(
        dir.join("ir_drop_map.csv"),
        bottom_layer_solution_map(grid, &design.golden, &raster).to_csv(),
    )?;
    Ok(())
}

/// Exports a whole dataset: one subdirectory per design (named after
/// the design) plus a `MANIFEST.csv` listing name, class and split.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn export_dataset(dataset: &Dataset, root: &Path, resolution: usize) -> io::Result<()> {
    fs::create_dir_all(root)?;
    let mut manifest = String::from("name,class,split\n");
    for (i, design) in dataset.designs.iter().enumerate() {
        export_design(design, &root.join(&design.name), resolution)?;
        let split = if dataset.test_indices.contains(&i) {
            "test"
        } else {
            "train"
        };
        manifest.push_str(&format!("{},{:?},{split}\n", design.name, design.class));
    }
    fs::write(root.join("MANIFEST.csv"), manifest)
}

/// Rebuilds a netlist from the structured grid (used by the exporter;
/// the generated grid does not retain its original netlist text).
fn to_netlist(design: &Design) -> irf_spice::Netlist {
    let grid = &design.grid;
    let mut src = String::from("* exported by irf-data\n");
    for (i, s) in grid.segments.iter().enumerate() {
        let a = &grid.nodes[s.a];
        let b = &grid.nodes[s.b];
        src.push_str(&format!("R{i} {} {} {:e}\n", a.name, b.name, s.ohms));
    }
    for (i, l) in grid.loads.iter().enumerate() {
        let n = &grid.nodes[l.node];
        src.push_str(&format!("I{i} {} 0 {:e}\n", n.name, l.amps));
    }
    for (i, p) in grid.pads.iter().enumerate() {
        let n = &grid.nodes[p.node];
        src.push_str(&format!("V{i} {} 0 {}\n", n.name, p.volts));
    }
    src.push_str(".end\n");
    irf_spice::parse(&src).expect("regenerated netlist always parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::parse_map_csv;
    use irf_pg::PowerGrid;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("irf_export_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn export_design_writes_all_files() {
        let design = Design::fake(4);
        let dir = scratch_dir("one");
        export_design(&design, &dir, 16).expect("writes");
        for f in [
            "netlist.sp",
            "current_map.csv",
            "eff_dist_map.csv",
            "pdn_density.csv",
            "ir_drop_map.csv",
        ] {
            assert!(dir.join(f).exists(), "{f} missing");
        }
        // The exported netlist parses and rebuilds the same grid shape.
        let text = fs::read_to_string(dir.join("netlist.sp")).expect("readable");
        let grid =
            PowerGrid::from_netlist(&irf_spice::parse(&text).expect("parses")).expect("valid grid");
        assert_eq!(grid.nodes.len(), design.grid.nodes.len());
        assert_eq!(grid.segments.len(), design.grid.segments.len());
        // The golden CSV parses back to a 16x16 map with the same peak.
        let m = parse_map_csv(&fs::read_to_string(dir.join("ir_drop_map.csv")).unwrap())
            .expect("valid csv");
        assert_eq!((m.width(), m.height()), (16, 16));
        assert!(m.max() > 0.0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn export_dataset_writes_manifest() {
        let ds = Dataset::generate(1, 1, 1, 5);
        let dir = scratch_dir("set");
        export_dataset(&ds, &dir, 8).expect("writes");
        let manifest = fs::read_to_string(dir.join("MANIFEST.csv")).expect("manifest");
        assert!(manifest.lines().count() == 3); // header + 2 designs
        assert!(manifest.contains("train"));
        assert!(manifest.contains("test"));
        let _ = fs::remove_dir_all(&dir);
    }
}
