//! Predefined curriculum learning (paper Section III-E, Fig. 5).
//!
//! The *difficulty measurer* is predefined: fake designs are "easier",
//! real designs are "harder". The *training scheduler* is a
//! continuous (linear pacing) scheduler: training starts on the easy
//! subset and the hard fraction grows every epoch until the full set
//! is in play.

use crate::augment::AugmentedSample;
use crate::dataset::DesignClass;

/// Continuous linear-pacing curriculum scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurriculumScheduler {
    /// Fraction of the hard samples visible at epoch 0.
    pub start_fraction: f64,
    /// Additional hard fraction revealed per epoch.
    pub fraction_per_epoch: f64,
}

impl Default for CurriculumScheduler {
    fn default() -> Self {
        CurriculumScheduler {
            start_fraction: 0.0,
            fraction_per_epoch: 0.25,
        }
    }
}

impl CurriculumScheduler {
    /// Fraction of hard samples included at `epoch` (clamped to 1).
    #[must_use]
    pub fn hard_fraction(&self, epoch: usize) -> f64 {
        (self.start_fraction + self.fraction_per_epoch * epoch as f64).min(1.0)
    }

    /// Selects the training subset for `epoch`: all easy samples plus
    /// the first `hard_fraction` of the hard samples (stable order, so
    /// the curriculum reveals the same designs progressively).
    ///
    /// `classes[i]` is the class of `plan[i]`'s design.
    ///
    /// # Panics
    ///
    /// Panics if `plan` and `classes` lengths differ.
    #[must_use]
    pub fn subset(
        &self,
        plan: &[AugmentedSample],
        classes: &[DesignClass],
        epoch: usize,
    ) -> Vec<AugmentedSample> {
        assert_eq!(plan.len(), classes.len(), "plan/classes length mismatch");
        let hard_total = classes.iter().filter(|&&c| c == DesignClass::Real).count();
        let hard_take = (self.hard_fraction(epoch) * hard_total as f64).round() as usize;
        let mut out = Vec::with_capacity(plan.len());
        let mut hard_seen = 0;
        for (s, &c) in plan.iter().zip(classes) {
            match c {
                DesignClass::Fake => out.push(*s),
                DesignClass::Real => {
                    if hard_seen < hard_take {
                        out.push(*s);
                    }
                    hard_seen += 1;
                }
            }
        }
        out
    }

    /// First epoch at which the whole training set is visible.
    #[must_use]
    pub fn epochs_to_full(&self) -> usize {
        if self.fraction_per_epoch <= 0.0 {
            return usize::MAX;
        }
        ((1.0 - self.start_fraction) / self.fraction_per_epoch).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_and_classes() -> (Vec<AugmentedSample>, Vec<DesignClass>) {
        let plan: Vec<AugmentedSample> = (0..8)
            .map(|i| AugmentedSample {
                design: i,
                quarters: 0,
            })
            .collect();
        let classes = vec![
            DesignClass::Fake,
            DesignClass::Fake,
            DesignClass::Fake,
            DesignClass::Fake,
            DesignClass::Real,
            DesignClass::Real,
            DesignClass::Real,
            DesignClass::Real,
        ];
        (plan, classes)
    }

    #[test]
    fn epoch_zero_is_easy_only_by_default() {
        let (plan, classes) = plan_and_classes();
        let sched = CurriculumScheduler::default();
        let subset = sched.subset(&plan, &classes, 0);
        assert_eq!(subset.len(), 4);
        assert!(subset.iter().all(|s| s.design < 4));
    }

    #[test]
    fn hard_fraction_grows_linearly() {
        let sched = CurriculumScheduler::default();
        assert_eq!(sched.hard_fraction(0), 0.0);
        assert_eq!(sched.hard_fraction(2), 0.5);
        assert_eq!(sched.hard_fraction(4), 1.0);
        assert_eq!(sched.hard_fraction(100), 1.0);
    }

    #[test]
    fn full_set_is_reached() {
        let (plan, classes) = plan_and_classes();
        let sched = CurriculumScheduler::default();
        assert_eq!(sched.epochs_to_full(), 4);
        let subset = sched.subset(&plan, &classes, sched.epochs_to_full());
        assert_eq!(subset.len(), plan.len());
    }

    #[test]
    fn progression_is_monotone_and_stable() {
        let (plan, classes) = plan_and_classes();
        let sched = CurriculumScheduler::default();
        let mut prev: Vec<usize> = Vec::new();
        for epoch in 0..5 {
            let subset: Vec<usize> = sched
                .subset(&plan, &classes, epoch)
                .iter()
                .map(|s| s.design)
                .collect();
            assert!(subset.len() >= prev.len());
            // Previously revealed designs stay revealed.
            for d in &prev {
                assert!(subset.contains(d));
            }
            prev = subset;
        }
    }

    #[test]
    fn zero_pacing_never_reaches_full() {
        let sched = CurriculumScheduler {
            start_fraction: 0.5,
            fraction_per_epoch: 0.0,
        };
        assert_eq!(sched.epochs_to_full(), usize::MAX);
    }
}
