//! "Real-like" designs — the hard curriculum class.
//!
//! Real tape-out power grids differ from synthetic ones in exactly the
//! ways the generator can emulate: irregular stripe pitches (routing
//! constraints), macro blockages that break the mesh, and load current
//! concentrated in a few hot macros instead of spread smoothly.

use crate::synth::{synthesize, SynthSpec};
use irf_runtime::Xoshiro256pp;
use irf_spice::Netlist;

/// Generates the spec of one real-like design.
#[must_use]
pub fn real_like_spec(seed: u64) -> SynthSpec {
    let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0x4EA1);
    SynthSpec {
        m1_stripes: rng.random_range(24..=40),
        m2_stripes: rng.random_range(24..=40),
        m4_stripes: rng.random_range(3..=6),
        pads: rng.random_range(2..=5),
        total_current: rng.random_range(0.06..0.15),
        stripe_jitter: rng.random_range(0.15..0.35),
        blockages: rng.random_range(1..=3),
        hotspot_clusters: rng.random_range(2..=4),
        hotspot_fraction: rng.random_range(0.4..0.7),
        seed,
        ..SynthSpec::default()
    }
}

/// Synthesizes one real-like design.
#[must_use]
pub fn generate(seed: u64) -> Netlist {
    synthesize(&real_like_spec(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use irf_pg::PowerGrid;

    #[test]
    fn real_like_specs_are_irregular() {
        let spec = real_like_spec(3);
        assert!(spec.stripe_jitter > 0.0);
        assert!(spec.blockages >= 1);
        assert!(spec.hotspot_clusters >= 2);
        assert!(spec.hotspot_fraction > 0.0);
    }

    #[test]
    fn generated_design_is_well_formed() {
        for seed in 0..3 {
            let g = PowerGrid::from_netlist(&generate(seed)).expect("valid");
            assert!(g.is_connected_to_pads(), "seed {seed} disconnected");
            assert!(!g.loads.is_empty());
        }
    }

    #[test]
    fn real_like_differs_from_fake() {
        let r = generate(9);
        let f = crate::fake::generate(9);
        assert_ne!(r, f);
    }
}
