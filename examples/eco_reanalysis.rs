//! ECO-style incremental re-analysis: after a small engineering
//! change order (one macro's load current shifts), warm-start the
//! AMG-PCG solve from the previous solution and measure how many
//! iterations the warm start saves — the workflow early IR-drop
//! tools exist to accelerate.
//!
//! ```bash
//! cargo run --example eco_reanalysis --release
//! ```

use irf_data::{synthesize, SynthSpec};
use irf_pg::PowerGrid;
use irf_sparse::{Solver, SolverKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Baseline design and its full-accuracy solution.
    let spec = SynthSpec {
        seed: 21,
        hotspot_clusters: 2,
        hotspot_fraction: 0.5,
        ..SynthSpec::default()
    };
    let grid = PowerGrid::from_netlist(&synthesize(&spec))?;
    let system = grid.build_system();
    let solver = Solver::new(SolverKind::AmgPcg).with_tolerance(1e-10);
    let base = solver.solve(&system.matrix, &system.rhs);
    println!(
        "baseline solve: {} unknowns, {} iterations to 1e-10",
        system.dim(),
        base.iterations
    );

    // ECO: one region's load current grows by 10 % — same topology,
    // same matrix, perturbed right-hand side.
    let mut eco_rhs = system.rhs.clone();
    let bump_from = eco_rhs.len() / 3;
    let bump_to = eco_rhs.len() / 2;
    for v in &mut eco_rhs[bump_from..bump_to] {
        *v *= 1.10;
    }

    let cold = solver.solve(&system.matrix, &eco_rhs);
    let warm = solver.solve_with_guess(&system.matrix, &eco_rhs, base.x.clone());
    println!(
        "ECO re-solve:   cold start {} iterations, warm start {} iterations",
        cold.iterations, warm.iterations
    );
    assert!(warm.converged && cold.converged);

    // The two solutions agree, and the warm start is never slower.
    let worst: f64 = cold
        .x
        .iter()
        .zip(&warm.x)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    println!("max disagreement between cold and warm solutions: {worst:.3e} V");
    println!(
        "warm start saved {} of {} iterations ({:.0} %)",
        cold.iterations.saturating_sub(warm.iterations),
        cold.iterations,
        100.0 * cold.iterations.saturating_sub(warm.iterations) as f64
            / cold.iterations.max(1) as f64
    );

    // Worst-case drop movement caused by the ECO.
    let before = base.x.iter().cloned().fold(0.0, f64::max);
    let after = cold.x.iter().cloned().fold(0.0, f64::max);
    println!(
        "worst-case IR drop: {:.3} mV -> {:.3} mV after the ECO",
        before * 1e3,
        after * 1e3
    );
    Ok(())
}
