//! A miniature of the paper's Fig. 7 trade-off study: how the raw
//! numerical solution improves with PCG iterations, versus the golden
//! reference.
//!
//! ```bash
//! cargo run --example tradeoff_sweep --release
//! ```

use ir_fusion::{FusionConfig, IrFusionPipeline};
use irf_data::Design;
use irf_metrics::{f1_score, mae};

fn main() {
    let design = Design::real_like(11);
    println!(
        "design {}: {} nodes, worst drop {:.3} mV",
        design.name,
        design.grid.nodes.len(),
        design.worst_drop() * 1e3
    );
    println!(
        "{:>4} | {:>12} | {:>8} | {:>10}",
        "k", "MAE (V)", "F1", "time (ms)"
    );
    println!("{}", "-".repeat(46));
    for k in 1..=10 {
        let mut config = FusionConfig::default();
        config.feature.width = 32;
        config.feature.height = 32;
        config.solver_iterations = k;
        let pipeline = IrFusionPipeline::new(config);
        let analysis = pipeline
            .stack_builder()
            .analyze(&design.grid, None)
            .expect("synthetic designs have pads");
        let golden = pipeline.golden_map(&design.grid);
        println!(
            "{k:>4} | {:>12.4e} | {:>8.3} | {:>10.2}",
            mae(analysis.rough_map.data(), golden.data()),
            f1_score(analysis.rough_map.data(), golden.data()),
            analysis.runtime_seconds * 1e3
        );
    }
    println!("\nThe fused flow reaches a given accuracy with fewer solver iterations");
    println!("once the ML refinement is trained; the measured crossover is printed by");
    println!("`cargo run -p irf-bench --bin fig7 --release`.");
}
