//! Train the Inception Attention U-Net on a synthetic corpus with the
//! full augmented-curriculum recipe, evaluate on held-out real-like
//! designs, and save a checkpoint.
//!
//! ```bash
//! cargo run --example train_fusion --release
//! ```

use ir_fusion::{evaluate_model, evaluate_numerical, train, FusionConfig, IrFusionPipeline};
use irf_data::Dataset;
use irf_metrics::MetricReport;
use irf_models::ModelKind;
use std::fs::File;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small corpus in the contest's shape: fake (easy) designs for
    // bulk, real-like (hard) designs with some held out for testing.
    println!("generating corpus (8 fake + 6 real-like, 3 held out)...");
    let dataset = Dataset::generate(8, 6, 3, 2023);

    let mut config = FusionConfig::default();
    config.feature.width = 32;
    config.feature.height = 32;
    config.train.epochs = 8;
    config.model.base_channels = 6;

    println!(
        "training IR-Fusion: {} epochs, rotations + oversampling + curriculum...",
        config.train.epochs
    );
    let trained = train(ModelKind::IrFusion, &dataset, &config);
    println!(
        "  {} scalar parameters, loss history: {:?}",
        trained.store.num_scalars(),
        trained
            .loss_history
            .iter()
            .map(|l| format!("{l:.4}"))
            .collect::<Vec<_>>()
    );

    let pipeline = IrFusionPipeline::new(config);
    let fused = MetricReport::mean(&evaluate_model(&trained, &dataset, &pipeline));
    let numerical = MetricReport::mean(&evaluate_numerical(&dataset, &pipeline));
    println!("held-out evaluation (mean over test designs):");
    println!(
        "  numerical only (k={}): {numerical}",
        config.solver_iterations
    );
    println!("  IR-Fusion:             {fused}");

    // Save the whole bundle (architecture + weights + fusion
    // metadata); `ir_fusion::load_model` restores it for inference.
    let path = "ir_fusion_checkpoint.bin";
    let mut model_cfg = config.model;
    model_cfg.in_channels = 11; // 5 shared + 3 layer-current + 3 layer-solution
    model_cfg.linear_head = trained.residual;
    ir_fusion::save_model(
        &trained,
        ModelKind::IrFusion,
        model_cfg,
        File::create(path)?,
    )?;
    let restored = ir_fusion::load_model(File::open(path)?)?;
    println!(
        "checkpoint written to {path} and verified ({} params)",
        restored.store.num_scalars()
    );
    Ok(())
}
