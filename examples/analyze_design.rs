//! Analyze a SPICE power-grid netlist from disk (or a built-in demo
//! design) and write the IR-drop maps as PGM images.
//!
//! ```bash
//! cargo run --example analyze_design --release -- path/to/design.sp
//! # with a Chrome/Perfetto trace of the whole analysis:
//! cargo run --example analyze_design --release -- --trace trace.json
//! ```
//!
//! `--trace OUT.json` records every pipeline span (SPICE parse, MNA
//! assembly, AMG setup, PCG solve, feature rasterization) into a
//! Chrome trace-event file loadable at <https://ui.perfetto.dev>, and
//! prints the aggregated self-profile tree.

use ir_fusion::{FusionConfig, IrFusionPipeline};
use irf_data::{synthesize, SynthSpec};
use irf_pg::PowerGrid;
use std::fs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut trace_out: Option<String> = None;
    let mut netlist_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace" => {
                trace_out = Some(args.next().ok_or("--trace needs an output path")?);
            }
            _ => netlist_path = Some(arg),
        }
    }
    let collector = if trace_out.is_some() {
        Some(
            irf_trace::Collector::install()
                .ok_or("another trace collector is already installed")?,
        )
    } else {
        None
    };
    let netlist = match netlist_path {
        Some(path) => {
            println!("parsing {path}");
            irf_spice::parse(&fs::read_to_string(&path)?)?
        }
        None => {
            println!("no netlist given; using a synthesized demo design");
            let netlist = synthesize(&SynthSpec {
                seed: 7,
                hotspot_clusters: 2,
                hotspot_fraction: 0.5,
                ..SynthSpec::default()
            });
            // Round-trip through the SPICE writer so the trace shows
            // the parse stage even for the synthetic design.
            irf_spice::parse(&irf_spice::write(&netlist))?
        }
    };
    let grid = PowerGrid::from_netlist(&netlist)?;
    println!(
        "{} nodes, {} segments, {} loads, {} pads, layers {:?}",
        grid.nodes.len(),
        grid.segments.len(),
        grid.loads.len(),
        grid.pads.len(),
        grid.layers()
    );
    if !grid.is_connected_to_pads() {
        eprintln!("warning: some nodes cannot reach a pad; the solve may fail");
    }

    let mut config = FusionConfig::default();
    config.feature.width = 64;
    config.feature.height = 64;
    config.solver_iterations = 2;
    let pipeline = IrFusionPipeline::new(config);

    let analysis = pipeline.stack_builder().analyze(&grid, None)?;
    let golden = pipeline.golden_map(&grid);

    fs::write("ir_drop_rough.pgm", analysis.rough_map.to_pgm())?;
    fs::write("ir_drop_golden.pgm", golden.to_pgm())?;
    println!("wrote ir_drop_rough.pgm and ir_drop_golden.pgm");
    println!(
        "golden worst drop {:.3} mV | rough worst drop {:.3} mV | runtime {:.1} ms",
        golden.max() * 1e3,
        analysis.rough_map.max() * 1e3,
        analysis.runtime_seconds * 1e3
    );

    // A quick ASCII rendering of the golden hotspots: each character
    // covers a block of pixels and shows the block's *worst* drop, so
    // single-pixel hotspots stay visible.
    println!("golden hotspot sketch (# > 90 %, + > 70 % of peak):");
    let (bx, by) = (golden.width().div_ceil(32), golden.height().div_ceil(16));
    for y0 in (0..golden.height()).step_by(by) {
        let mut line = String::new();
        for x0 in (0..golden.width()).step_by(bx) {
            let mut worst = 0.0f32;
            for y in y0..(y0 + by).min(golden.height()) {
                for x in x0..(x0 + bx).min(golden.width()) {
                    worst = worst.max(golden.get(x, y));
                }
            }
            line.push(if worst > golden.max() * 0.9 {
                '#'
            } else if worst > golden.max() * 0.7 {
                '+'
            } else {
                '.'
            });
        }
        println!("  {line}");
    }

    if let (Some(collector), Some(path)) = (collector, trace_out) {
        let trace = collector.finish();
        fs::write(&path, trace.to_chrome_json())?;
        println!(
            "wrote {path} ({} events) — open it at https://ui.perfetto.dev",
            trace.len()
        );
        println!("self-profile:\n{}", trace.profile_tree());
    }
    Ok(())
}
