//! Quickstart: synthesize a power grid, run the IR-Fusion pipeline,
//! and compare the rough numerical map against the golden solve.
//!
//! ```bash
//! cargo run --example quickstart --release
//! ```

use ir_fusion::{FusionConfig, IrFusionPipeline};
use irf_data::{synthesize, SynthSpec};
use irf_metrics::{f1_score, mae};
use irf_pg::{DesignStats, PowerGrid};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthesize a BeGAN-style power grid and show its statistics.
    let netlist = synthesize(&SynthSpec::default());
    let grid = PowerGrid::from_netlist(&netlist)?;
    println!("design: {}", DesignStats::from_grid(&grid));

    // 2. Run the fusion pipeline front end: a 2-iteration AMG-PCG
    //    rough solve plus rasterization.
    let mut config = FusionConfig::default();
    config.feature.width = 32;
    config.feature.height = 32;
    let pipeline = IrFusionPipeline::new(config);
    let analysis = pipeline.stack_builder().analyze(&grid, None)?;
    println!(
        "rough solve: {} iterations, relative residual {:.3e}, {:.1} ms",
        analysis.solve_report.iterations,
        analysis.solve_report.residual,
        analysis.runtime_seconds * 1e3
    );

    // 3. Compare against the exact (golden) solution.
    let golden = pipeline.golden_map(&grid);
    println!(
        "worst-case IR drop: golden {:.3} mV, rough {:.3} mV",
        golden.max() * 1e3,
        analysis.rough_map.max() * 1e3
    );
    println!(
        "rough-vs-golden: MAE {:.3e} V, hotspot F1 {:.3}",
        mae(analysis.rough_map.data(), golden.data()),
        f1_score(analysis.rough_map.data(), golden.data())
    );

    // 4. Sign-off check against a 10 % of VDD drop budget.
    let budget = (grid.vdd() * 0.1) as f32;
    print!("{}", analysis.signoff(budget));
    println!("(train a model with `cargo run --example train_fusion --release` to fuse)");
    Ok(())
}
