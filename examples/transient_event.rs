//! Transient di/dt event analysis: a macro switches on for a few
//! nanoseconds and the decap network rides through it — the classic
//! dynamic-IR companion to the paper's static flow.
//!
//! ```bash
//! cargo run --example transient_event --release
//! ```

use irf_data::{synthesize, SynthSpec};
use irf_pg::{PowerGrid, TransientSim};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = PowerGrid::from_netlist(&synthesize(&SynthSpec {
        m1_stripes: 16,
        m2_stripes: 16,
        m4_stripes: 3,
        seed: 31,
        ..SynthSpec::default()
    }))?;
    let dt = 0.1e-9; // 0.1 ns step
    for cap in [1e-12, 200e-12] {
        let mut sim = TransientSim::new(&grid, cap, dt)?;
        let base = sim.system().rhs.clone();
        // Event: the first third of the grid draws 5x for 0.5 ns.
        let mut event = base.clone();
        for v in event.iter_mut().take(base.len() / 3) {
            *v *= 5.0;
        }
        let mut worst = 0.0f64;
        let mut settle = 0.0f64;
        // 2 ns quiet, 0.5 ns event, 6 ns recovery.
        for (phase, steps) in [(&base, 20usize), (&event, 5), (&base, 60)] {
            for _ in 0..steps {
                let w = sim.step(phase)?;
                worst = worst.max(w);
                settle = w;
            }
        }
        println!(
            "decap {:>5.1} pF/node: transient peak {:.3} mV, settles back to {:.3} mV",
            cap * 1e12,
            worst * 1e3,
            settle * 1e3
        );
    }
    println!("more decap flattens the di/dt spike — the transient substrate the");
    println!("paper's related-work section attributes to KLU/CHOLMOD-style flows.");
    Ok(())
}
