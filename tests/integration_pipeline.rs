//! Cross-crate integration: SPICE text -> parser -> circuit model ->
//! solver -> features -> analysis.

use ir_fusion::{FusionConfig, IrFusionPipeline};
use irf_data::{synthesize, SynthSpec};
use irf_pg::PowerGrid;

fn tiny_pipeline() -> IrFusionPipeline {
    IrFusionPipeline::new(FusionConfig::tiny())
}

#[test]
fn netlist_text_flows_through_the_whole_stack() {
    // Write a synthesized netlist to text and push the *text* through
    // the same front door a user's SPICE file would take.
    let netlist = synthesize(&SynthSpec::default());
    let text = irf_spice::write(&netlist);
    let reparsed = irf_spice::parse(&text).expect("round-trips");
    let analysis = tiny_pipeline()
        .analyze_netlist(&reparsed)
        .expect("valid design");
    assert!(analysis.rough_map.max() > 0.0);
    assert!(analysis.fused_map.is_none());
}

#[test]
fn rough_and_golden_maps_share_hotspot_structure() {
    let spec = SynthSpec {
        hotspot_clusters: 2,
        hotspot_fraction: 0.5,
        seed: 3,
        ..SynthSpec::default()
    };
    let grid = PowerGrid::from_netlist(&synthesize(&spec)).expect("valid");
    let pipeline = tiny_pipeline();
    let analysis = pipeline.stack_builder().analyze(&grid, None).expect("pads");
    let golden = pipeline.golden_map(&grid);
    // Even the 2-iteration rough map must broadly agree in rank with
    // the golden map for the fusion premise to hold.
    let cc = irf_metrics::correlation(analysis.rough_map.data(), golden.data());
    assert!(cc > 0.5, "rough/golden correlation too weak: {cc}");
}

#[test]
fn feature_channels_match_config_prediction() {
    let grid = PowerGrid::from_netlist(&synthesize(&SynthSpec::default())).expect("valid");
    let pipeline = tiny_pipeline();
    let (drops, _) = pipeline.rough_solution(&grid);
    let extractor = irf_features::FeatureExtractor::new(pipeline.config().feature);
    let stack = extractor.extract(&grid, &drops).expect("grid has pads");
    assert_eq!(
        stack.len(),
        pipeline.config().feature_channels(grid.layers().len())
    );
}

#[test]
fn analysis_runtime_accounts_for_work() {
    let grid = PowerGrid::from_netlist(&synthesize(&SynthSpec::default())).expect("valid");
    let pipeline = tiny_pipeline();
    let analysis = pipeline.stack_builder().analyze(&grid, None).expect("pads");
    assert!(analysis.runtime_seconds > 0.0);
    assert_eq!(
        analysis.solve_report.iterations,
        pipeline.config().solver_iterations
    );
}

#[test]
fn disconnected_designs_are_caught_before_the_solver() {
    let src = "V1 p 0 1.0\nR1 p a 1.0\nR2 x y 1.0\nI1 a 0 1m\nI2 x 0 1m\n";
    let netlist = irf_spice::parse(src).expect("parses");
    let grid = PowerGrid::from_netlist(&netlist).expect("builds");
    assert!(!grid.is_connected_to_pads());
}
