//! The bounded-memory prepare path end to end: streaming SPICE parse
//! and grid ingest must be indistinguishable — bit for bit — from the
//! materialize-everything path, and the downstream assembly + AMG +
//! rough solve must stay bitwise identical at any thread count.

use ir_fusion::config::FusionConfig;
use ir_fusion::pipeline::IrFusionPipeline;
use irf_data::synth::{synthesize_to_path, synthesize_to_string, SynthSpec};
use irf_pg::{PgSystem, PowerGrid};
use irf_sparse::{CsrMatrix, Solver, SolverKind};
use std::io::Cursor;
use std::path::PathBuf;
use std::sync::Mutex;

/// The global thread count is process-wide state; tests in this binary
/// run concurrently, so every comparison holds this lock while it
/// flips between serial and parallel execution.
static THREAD_CONFIG: Mutex<()> = Mutex::new(());

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let _guard = THREAD_CONFIG.lock().unwrap_or_else(|e| e.into_inner());
    irf_runtime::set_num_threads(n);
    let result = f();
    irf_runtime::set_num_threads(0);
    result
}

fn medium_spec() -> SynthSpec {
    SynthSpec {
        m1_stripes: 96,
        m2_stripes: 96,
        m4_stripes: 8,
        blockages: 2,
        stripe_jitter: 0.1,
        hotspot_clusters: 3,
        hotspot_fraction: 0.4,
        seed: 23,
        ..SynthSpec::default()
    }
}

fn temp_netlist(name: &str, spec: &SynthSpec) -> PathBuf {
    let dir = std::env::temp_dir().join("irf_integration_streaming");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    synthesize_to_path(spec, &path).expect("stream netlist to file");
    path
}

type MatrixBits = (Vec<usize>, Vec<usize>, Vec<u64>);

fn matrix_bits(a: &CsrMatrix) -> MatrixBits {
    (
        a.row_ptr().to_vec(),
        a.col_idx().to_vec(),
        a.values().iter().map(|v| v.to_bits()).collect(),
    )
}

#[test]
fn streaming_parse_matches_materialized_parse() {
    let spec = medium_spec();
    let src = synthesize_to_string(&spec);
    let materialized = irf_spice::parse(&src).expect("materialized parse");
    let streamed = irf_spice::parse_reader(Cursor::new(src.as_bytes())).expect("streamed parse");
    assert_eq!(materialized, streamed, "netlists must be identical");
    assert_eq!(materialized.content_hash(), streamed.content_hash());

    let path = temp_netlist("parse_parity.sp", &spec);
    let from_file = irf_spice::parse_path(&path).expect("parse from file");
    let _ = std::fs::remove_file(&path);
    assert_eq!(materialized.content_hash(), from_file.content_hash());
}

#[test]
fn streaming_grid_ingest_matches_materialized_path() {
    let spec = medium_spec();
    let path = temp_netlist("ingest_parity.sp", &spec);
    let streamed = irf_pg::grid_from_spice_path(&path).expect("streaming ingest");

    let src = std::fs::read_to_string(&path).expect("read back");
    let _ = std::fs::remove_file(&path);
    let netlist = irf_spice::parse(&src).expect("parse");
    let materialized = PowerGrid::from_netlist(&netlist).expect("model grid");
    assert_eq!(streamed, materialized, "grids must be identical");

    let sys_streamed = PgSystem::try_build(&streamed).expect("assemble streamed");
    let sys_materialized = PgSystem::try_build(&materialized).expect("assemble materialized");
    assert_eq!(
        matrix_bits(&sys_streamed.matrix),
        matrix_bits(&sys_materialized.matrix),
        "assembled systems must be bitwise identical"
    );
    assert_eq!(sys_streamed.rhs, sys_materialized.rhs);
}

#[test]
fn large_grid_assembly_and_solve_are_thread_invariant() {
    let spec = SynthSpec::scaled_to_nodes(60_000, 5);
    let path = temp_netlist("thread_parity.sp", &spec);

    let mut reference: Option<(MatrixBits, Vec<u64>)> = None;
    for &threads in &[1usize, 2, 4, 8] {
        let (bits, solution) = with_threads(threads, || {
            let grid = irf_pg::grid_from_spice_path(&path).expect("streaming ingest");
            let system = PgSystem::try_build(&grid).expect("assemble");
            let setup = Solver::new(SolverKind::AmgPcg).prepare(&system.matrix);
            let report = setup
                .with_stopping(1e-3, 16)
                .solve(&system.matrix, &system.rhs);
            let solution: Vec<u64> = report.x.iter().map(|v| v.to_bits()).collect();
            (matrix_bits(&system.matrix), solution)
        });
        match &reference {
            None => reference = Some((bits, solution)),
            Some((ref_bits, ref_solution)) => {
                assert_eq!(ref_bits, &bits, "matrix differs at {threads} threads");
                assert_eq!(
                    ref_solution, &solution,
                    "rough solve differs at {threads} threads"
                );
            }
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn prepare_spice_path_matches_in_memory_prepare() {
    let spec = SynthSpec::default();
    let path = temp_netlist("prepare_parity.sp", &spec);

    let pipeline = IrFusionPipeline::new(FusionConfig::tiny());
    let from_path = pipeline
        .stack_builder()
        .bypass_cache()
        .prepare_spice_path(&path)
        .expect("streaming prepare");

    let src = std::fs::read_to_string(&path).expect("read back");
    let _ = std::fs::remove_file(&path);
    let grid = PowerGrid::from_netlist(&irf_spice::parse(&src).expect("parse")).expect("grid");
    let in_memory = pipeline
        .stack_builder()
        .bypass_cache()
        .prepare(&grid)
        .expect("in-memory prepare");

    assert_eq!(from_path.fingerprint, in_memory.fingerprint);
    let (_, _, _, path_data) = from_path.features.to_nchw();
    let (_, _, _, memory_data) = in_memory.features.to_nchw();
    let path_bits: Vec<u32> = path_data.iter().map(|v| v.to_bits()).collect();
    let memory_bits: Vec<u32> = memory_data.iter().map(|v| v.to_bits()).collect();
    assert_eq!(
        path_bits, memory_bits,
        "feature stacks must be bitwise identical"
    );
    let rough_path: Vec<u32> = from_path.rough.data().iter().map(|v| v.to_bits()).collect();
    let rough_memory: Vec<u32> = in_memory.rough.data().iter().map(|v| v.to_bits()).collect();
    assert_eq!(rough_path, rough_memory, "rough maps must match bitwise");
}
