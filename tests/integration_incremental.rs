//! Incremental what-if contract: stage fingerprints invalidate exactly
//! what an edit touches, warm artifacts never leak across designs, and
//! the incremental path is bitwise identical to a cold analysis at any
//! thread count.

use ir_fusion::{
    design_fingerprint, train, CachePolicy, FusionConfig, IrFusionPipeline, Stage, StagePlan,
    StageStore,
};
use irf_data::{synthesize, Dataset, SynthSpec};
use irf_models::ModelKind;
use irf_pg::PowerGrid;
use std::sync::{Arc, Mutex};

/// The global thread count is process-wide state; hold this lock while
/// flipping it (same pattern as `integration_determinism.rs`).
static THREAD_CONFIG: Mutex<()> = Mutex::new(());

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let _guard = THREAD_CONFIG.lock().unwrap_or_else(|e| e.into_inner());
    irf_runtime::set_num_threads(n);
    let result = f();
    irf_runtime::set_num_threads(0);
    result
}

fn grid(seed: u64) -> PowerGrid {
    let spec = SynthSpec {
        seed,
        ..SynthSpec::default()
    };
    PowerGrid::from_netlist(&synthesize(&spec)).expect("valid grid")
}

/// A grid whose stripe count — and therefore topology — differs from
/// [`grid`]'s, not just its load vector.
fn restriped_grid(seed: u64) -> PowerGrid {
    let spec = SynthSpec {
        seed,
        m1_stripes: SynthSpec::default().m1_stripes + 2,
        ..SynthSpec::default()
    };
    PowerGrid::from_netlist(&synthesize(&spec)).expect("valid grid")
}

fn bits32(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn current_edits_invalidate_only_the_current_dependent_stages() {
    let config = FusionConfig::tiny();
    let base = grid(5);
    let base_plan = StagePlan::for_design(&base, &config);

    // A load edit keeps every current-independent key ...
    let mut edited = base.clone();
    edited.loads[0].amps += 1e-3;
    let edited_plan = StagePlan::for_design(&edited, &config);
    assert_eq!(edited_plan.assembled, base_plan.assembled);
    assert_eq!(edited_plan.solver_setup, base_plan.solver_setup);
    assert_eq!(edited_plan.structural, base_plan.structural);
    assert_eq!(edited_plan.resistance, base_plan.resistance);
    // ... and changes every current-dependent one.
    assert_ne!(edited_plan.rough, base_plan.rough);
    assert_ne!(edited_plan.stack, base_plan.stack);
    assert_ne!(
        design_fingerprint(&edited, &config),
        design_fingerprint(&base, &config)
    );

    // A resistance edit invalidates the assembled system and the
    // ohms-dependent feature maps, but the *geometry* maps (pad
    // distance, PDN density) key only off node/segment placement and
    // stay warm.
    let mut rewired = base.clone();
    rewired.segments[0].ohms *= 1.5;
    let rewired_plan = StagePlan::for_design(&rewired, &config);
    assert_ne!(rewired_plan.assembled, base_plan.assembled);
    assert_ne!(rewired_plan.solver_setup, base_plan.solver_setup);
    assert_ne!(rewired_plan.rough, base_plan.rough);
    assert_eq!(
        rewired_plan.structural, base_plan.structural,
        "geometry maps survive a resistance-only edit"
    );
    assert_ne!(rewired_plan.resistance, base_plan.resistance);
    assert_ne!(rewired_plan.stack, base_plan.stack);

    // Moving a segment endpoint is a geometry edit: *everything*
    // structural goes, including the geometry maps.
    let mut moved = base.clone();
    moved.nodes[moved.segments[0].a].x += 1;
    let moved_plan = StagePlan::for_design(&moved, &config);
    assert_ne!(moved_plan.assembled, base_plan.assembled);
    assert_ne!(moved_plan.structural, base_plan.structural);
    assert_ne!(moved_plan.resistance, base_plan.resistance);

    // A pad-voltage edit is a topology edit too: it changes the
    // boundary conditions baked into the assembled system.
    let mut repadded = base.clone();
    repadded.pads[0].volts += 0.05;
    let repadded_plan = StagePlan::for_design(&repadded, &config);
    assert_ne!(repadded_plan.assembled, base_plan.assembled);
    assert_ne!(repadded_plan.stack, base_plan.stack);
}

#[test]
fn warm_current_edit_skips_assembly_and_setup_in_the_store() {
    let config = FusionConfig::tiny();
    let store = Arc::new(StageStore::new(8));
    let pipeline = IrFusionPipeline::new(config).with_cache(Arc::clone(&store));
    let base = Arc::new(grid(5));

    // Cold walk computes all six stage artifacts.
    pipeline.session(Arc::clone(&base)).prepare().expect("pads");
    assert_eq!(store.misses(), 6, "cold walk computes every stage");
    assert_eq!(store.hits(), 0);

    // Warm current edit: assembled / solver-setup / structural /
    // resistance are served from the store; only rough + stack
    // recompute.
    pipeline
        .session(Arc::clone(&base))
        .with_current_deltas(&[(1, 2e-3)])
        .prepare()
        .expect("pads");
    for stage in [
        Stage::Assembled,
        Stage::SolverSetup,
        Stage::Structural,
        Stage::Resistance,
    ] {
        let c = store.stage_counters(stage);
        assert_eq!(
            (c.hits, c.misses),
            (1, 1),
            "{} must be reused, not recomputed",
            stage.label()
        );
    }
    assert_eq!(store.stage_counters(Stage::Rough).misses, 2);
    assert_eq!(store.stage_counters(Stage::Stack).misses, 2);

    // A resistance edit must NOT ride the warm assembled system or the
    // warm ohms-dependent feature maps — but the geometry maps stay.
    let mut rewired = (*base).clone();
    rewired.segments[0].ohms *= 2.0;
    pipeline.session(Arc::new(rewired)).prepare().expect("pads");
    assert_eq!(
        store.stage_counters(Stage::Assembled).misses,
        2,
        "resistance edit reassembles the system"
    );
    assert_eq!(store.stage_counters(Stage::SolverSetup).misses, 2);
    assert_eq!(store.stage_counters(Stage::Resistance).misses, 2);
    assert_eq!(
        store.stage_counters(Stage::Structural).hits,
        2,
        "geometry maps are reused across a resistance edit"
    );
}

#[test]
fn warm_topology_edit_rebuilds_incrementally_and_stays_bitwise() {
    use ir_fusion::TopologyDelta;
    let config = FusionConfig::tiny();

    // Discover an on-layer strap and a cross-layer via pair so the
    // deltas are valid for the synthesized grid.
    let probe = grid(5);
    let strap_layer = probe
        .segments
        .iter()
        .find_map(|s| {
            let (a, b) = (probe.nodes[s.a].layer, probe.nodes[s.b].layer);
            (a == b).then_some(a)
        })
        .expect("synth grid has straps");
    let (lower, upper) = probe
        .segments
        .iter()
        .find_map(|s| {
            let (a, b) = (probe.nodes[s.a].layer, probe.nodes[s.b].layer);
            (a != b).then_some((a.min(b), a.max(b)))
        })
        .expect("synth grid has vias");
    let deltas = [
        TopologyDelta::Strap {
            layer: strap_layer,
            scale: 0.8,
        },
        TopologyDelta::Via {
            lower,
            upper,
            scale: 1.25,
        },
    ];

    // One cold + topology-warm walk at a given thread count.
    let run = |threads: usize| {
        with_threads(threads, || {
            let store = Arc::new(StageStore::new(8));
            let pipeline = IrFusionPipeline::new(config).with_cache(Arc::clone(&store));
            let base = Arc::new(grid(5));
            pipeline.session(Arc::clone(&base)).prepare().expect("pads");
            let session = pipeline
                .session(base)
                .with_topology_deltas(&deltas)
                .expect("valid deltas");
            let stack = session.prepare().expect("pads");

            // The geometry maps were reused from the warm store; the
            // assembled system and solver setup were rebuilt (as new
            // keys) from the recorded base artifacts.
            let structural = store.stage_counters(Stage::Structural);
            assert_eq!(
                (structural.hits, structural.misses),
                (1, 1),
                "geometry maps must be reused across a topology edit"
            );
            assert_eq!(store.stage_counters(Stage::Resistance).misses, 2);
            assert_eq!(store.stage_counters(Stage::Assembled).misses, 2);
            assert_eq!(store.stage_counters(Stage::SolverSetup).misses, 2);

            // And the incremental result equals a cold bypass analysis
            // of the same edited grid, bit for bit.
            let cold = session
                .clone()
                .cache_policy(CachePolicy::Bypass)
                .prepare()
                .expect("pads");
            assert_eq!(stack.fingerprint, cold.fingerprint);
            assert_eq!(
                bits32(stack.rough.data()),
                bits32(cold.rough.data()),
                "incremental rough solve != cold rough solve"
            );
            assert_eq!(
                bits32(&stack.features.to_nchw().3),
                bits32(&cold.features.to_nchw().3),
                "incremental features != cold features"
            );
            (stack.fingerprint, bits32(stack.rough.data()))
        })
    };

    let reference = run(1);
    for threads in [2, 4, 8] {
        assert_eq!(
            reference,
            run(threads),
            "topology-delta path differs at {threads} threads"
        );
    }
}

#[test]
fn distinct_designs_never_collide_on_warm_artifacts() {
    let config = FusionConfig::tiny();
    let store = Arc::new(StageStore::new(8));
    let pipeline = IrFusionPipeline::new(config).with_cache(Arc::clone(&store));
    let bypass = IrFusionPipeline::new(config);

    for (label, g) in [("base", grid(3)), ("restriped", restriped_grid(9))] {
        let g = Arc::new(g);
        // Through the shared (now possibly warm) store ...
        let cached = pipeline.session(Arc::clone(&g)).prepare().expect("pads");
        // ... versus a guaranteed-cold preparation of the same grid.
        let fresh = bypass
            .session(Arc::clone(&g))
            .cache_policy(CachePolicy::Bypass)
            .prepare()
            .expect("pads");
        assert_eq!(cached.fingerprint, fresh.fingerprint, "{label}");
        assert_eq!(
            bits32(cached.rough.data()),
            bits32(fresh.rough.data()),
            "{label}: rough map must come from this design's own solve"
        );
    }
    // Two designs were prepared; no artifact was shared between them.
    assert_eq!(store.hits(), 0, "different designs share no artifacts");
    assert_eq!(store.misses(), 12);
}

#[test]
fn incremental_path_is_bitwise_deterministic_across_thread_counts() {
    let config = FusionConfig::tiny();
    let dataset = Dataset::generate(1, 1, 0, 11);
    let trained = train(ModelKind::IrEdge, &dataset, &config);

    // One full cold + warm-edit walk at a given thread count, through
    // a fresh store each time so every run does the same work.
    let run = |threads: usize| {
        with_threads(threads, || {
            let store = Arc::new(StageStore::new(8));
            let pipeline = IrFusionPipeline::new(config).with_cache(Arc::clone(&store));
            let base = Arc::new(grid(5));
            pipeline.session(Arc::clone(&base)).prepare().expect("pads");
            let session = pipeline
                .session(base)
                .with_current_deltas(&[(1, 2e-3), (4, -5e-4)]);
            let stack = session.prepare().expect("pads");
            let prediction = session.predict(&trained).expect("pads");
            let (_, _, _, features) = stack.features.to_nchw();
            (
                stack.fingerprint,
                bits32(stack.rough.data()),
                bits32(&features),
                bits32(prediction.map.data()),
            )
        })
    };

    let reference = run(1);
    for threads in [2, 4, 8] {
        let result = run(threads);
        assert_eq!(
            reference.0, result.0,
            "fingerprint differs at {threads} threads"
        );
        assert_eq!(
            reference.1, result.1,
            "warm rough solve differs at {threads} threads"
        );
        assert_eq!(
            reference.2, result.2,
            "warm feature stack differs at {threads} threads"
        );
        assert_eq!(
            reference.3, result.3,
            "warm prediction differs at {threads} threads"
        );
    }

    // And the warm path equals a cold bypass analysis of the edited
    // grid, bit for bit.
    let (fingerprint, rough, features, map) = run(1);
    let cold = with_threads(1, || {
        let pipeline = IrFusionPipeline::new(config);
        let base = Arc::new(grid(5));
        let session = pipeline
            .session(base)
            .with_current_deltas(&[(1, 2e-3), (4, -5e-4)])
            .cache_policy(CachePolicy::Bypass);
        let stack = session.prepare().expect("pads");
        let prediction = session.predict(&trained).expect("pads");
        let (_, _, _, feats) = stack.features.to_nchw();
        (
            stack.fingerprint,
            bits32(stack.rough.data()),
            bits32(&feats),
            bits32(prediction.map.data()),
        )
    });
    assert_eq!(fingerprint, cold.0);
    assert_eq!(rough, cold.1, "warm rough != cold rough");
    assert_eq!(features, cold.2, "warm features != cold features");
    assert_eq!(map, cold.3, "warm prediction != cold prediction");
}

/// Warm-starting the rough solve is an explicit opt-in: the seeded
/// walk lives under seed-tagged stage keys, is a pure function of
/// (grid, config, seed) regardless of cache state or thread count,
/// converges in fewer iterations than the cold truncated solve, and
/// never perturbs the default path's bitwise cold contract.
#[test]
fn warm_started_rough_solve_is_opt_in_tagged_and_deterministic() {
    use ir_fusion::{warm_stage_fingerprint, TopologyDelta};
    let config = FusionConfig::tiny();
    let probe = grid(5);
    let strap_layer = probe
        .segments
        .iter()
        .find_map(|s| {
            let (a, b) = (probe.nodes[s.a].layer, probe.nodes[s.b].layer);
            (a == b).then_some(a)
        })
        .expect("synth grid has straps");
    let deltas = [TopologyDelta::Strap {
        layer: strap_layer,
        scale: 0.98,
    }];

    // One base + warm-started-edit walk at a given thread count.
    let run = |threads: usize, policy: CachePolicy| {
        with_threads(threads, || {
            let store = Arc::new(StageStore::new(8));
            let pipeline = IrFusionPipeline::new(config).with_cache(Arc::clone(&store));
            let base = Arc::new(grid(5));
            let seed = pipeline
                .session(Arc::clone(&base))
                .rough_solution()
                .expect("pads");
            let warm = pipeline
                .session(base)
                .with_topology_deltas(&deltas)
                .expect("valid deltas")
                .with_rough_warm_start(Arc::clone(&seed))
                .cache_policy(policy)
                .prepare()
                .expect("pads");
            let (_, _, _, features) = warm.features.to_nchw();
            (
                seed.fingerprint,
                warm.fingerprint,
                warm.solve_report.iterations,
                bits32(warm.rough.data()),
                bits32(&features),
            )
        })
    };

    let reference = run(1, CachePolicy::Shared);

    // Cache-state independence: bypassing the store entirely gives the
    // same bits, so a warm-started result never depends on what
    // happens to be cached.
    assert_eq!(
        reference,
        run(1, CachePolicy::Bypass),
        "warm-started walk depends on cache state"
    );
    // Thread-count invariance.
    for threads in [2, 4, 8] {
        assert_eq!(
            reference,
            run(threads, CachePolicy::Shared),
            "warm-started walk differs at {threads} threads"
        );
    }

    // The cold analysis of the same edited design, for comparison.
    let pipeline = IrFusionPipeline::new(config);
    let cold_session = pipeline
        .session(Arc::new(grid(5)))
        .with_topology_deltas(&deltas)
        .expect("valid deltas")
        .cache_policy(CachePolicy::Bypass);
    let cold = cold_session.prepare().expect("pads");

    let (seed_fp, warm_fp, warm_iters, _, _) = (
        reference.0,
        reference.1,
        reference.2,
        &reference.3,
        &reference.4,
    );
    // The warm stack lives under the seed-tagged key, never the cold
    // one, and the session's design fingerprint stays untagged.
    assert_eq!(warm_fp, warm_stage_fingerprint(cold.fingerprint, seed_fp));
    assert_ne!(warm_fp, cold.fingerprint);
    assert_eq!(cold_session.fingerprint(), cold.fingerprint);
    // The seeded solve exits early: the cold truncated solve spends
    // its whole iteration budget, the warm one at most one sweep.
    assert!(
        warm_iters < cold.solve_report.iterations,
        "warm solve ({warm_iters} iters) not faster than cold ({})",
        cold.solve_report.iterations
    );
    assert!(warm_iters <= 1);
}

/// A seed from a different geometry (mismatched reduced dimension) is
/// ignored: the tagged artifact is computed cold, bit-for-bit equal to
/// the untagged cold walk of the same design.
#[test]
fn warm_start_falls_back_to_cold_on_geometry_mismatch() {
    let config = FusionConfig::tiny();
    let pipeline = IrFusionPipeline::new(config);
    let foreign_seed = pipeline
        .session(Arc::new(restriped_grid(5)))
        .rough_solution()
        .expect("pads");
    let base = Arc::new(grid(5));
    let warm = pipeline
        .session(Arc::clone(&base))
        .with_rough_warm_start(foreign_seed)
        .prepare()
        .expect("pads");
    let cold = pipeline.session(base).prepare().expect("pads");
    assert_ne!(warm.fingerprint, cold.fingerprint, "keys must stay tagged");
    assert_eq!(
        bits32(warm.rough.data()),
        bits32(cold.rough.data()),
        "mismatched seed must be ignored, not applied"
    );
    assert_eq!(warm.solve_report.iterations, cold.solve_report.iterations);
}
