//! Batched inference correctness: `predict_batch(B samples)` must be
//! bitwise identical to B sequential `predict` calls, at one thread and
//! at many. This is the contract that lets the serving layer fuse
//! concurrent requests into one forward pass with zero accuracy
//! consequences.

use ir_fusion::{train, FusionConfig, IrFusionPipeline, PreparedStack, StageStore};
use irf_data::Dataset;
use irf_models::ModelKind;
use std::sync::{Arc, Mutex};

/// The global thread count is process-wide state; hold this lock while
/// flipping it (same pattern as `integration_determinism.rs`).
static THREAD_CONFIG: Mutex<()> = Mutex::new(());

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let _guard = THREAD_CONFIG.lock().unwrap_or_else(|e| e.into_inner());
    irf_runtime::set_num_threads(n);
    let result = f();
    irf_runtime::set_num_threads(0);
    result
}

fn bits32(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn predict_batch_is_bitwise_identical_to_sequential_predicts() {
    let config = FusionConfig::tiny();
    let dataset = Dataset::generate(2, 2, 1, 7);
    let trained = train(ModelKind::IrFusion, &dataset, &config);
    let pipeline = IrFusionPipeline::new(config);

    let stacks: Vec<PreparedStack> = dataset
        .designs
        .iter()
        .map(|d| pipeline.prepare_stack(&d.grid).expect("grid has pads"))
        .collect();
    let refs: Vec<&PreparedStack> = stacks.iter().collect();

    // Reference: sequential single-sample predicts at one thread.
    let sequential = with_threads(1, || {
        refs.iter()
            .map(|s| pipeline.predict(&trained, s))
            .collect::<Vec<_>>()
    });

    for threads in [1, 4, 8] {
        let batched = with_threads(threads, || pipeline.predict_batch(&trained, &refs));
        assert_eq!(batched.len(), sequential.len());
        for (i, (b, s)) in batched.iter().zip(&sequential).enumerate() {
            assert_eq!(
                bits32(b.data()),
                bits32(s.data()),
                "design {i} differs from sequential predict at {threads} threads"
            );
        }
        // And sequential predicts themselves are thread-count invariant.
        let solo = with_threads(threads, || {
            refs.iter()
                .map(|s| pipeline.predict(&trained, s))
                .collect::<Vec<_>>()
        });
        for (i, (a, s)) in solo.iter().zip(&sequential).enumerate() {
            assert_eq!(
                bits32(a.data()),
                bits32(s.data()),
                "solo predict of design {i} differs at {threads} threads"
            );
        }
    }
}

#[test]
fn cached_stacks_feed_identical_predictions() {
    // A stack served from the cache must yield the same prediction as
    // a freshly prepared one, and the builder's analyze must hit the
    // cache on repeated designs.
    let config = FusionConfig::tiny();
    let dataset = Dataset::generate(1, 1, 0, 13);
    let trained = train(ModelKind::IrEdge, &dataset, &config);
    let grid = &dataset.designs[0].grid;

    let cache = Arc::new(StageStore::new(4));
    let cached_pipeline = IrFusionPipeline::new(config).with_cache(Arc::clone(&cache));
    let plain_pipeline = IrFusionPipeline::new(config);

    let analyze = |p: &IrFusionPipeline| {
        p.stack_builder()
            .analyze(grid, Some(&trained))
            .expect("grid has pads")
    };
    let first = analyze(&cached_pipeline);
    let second = analyze(&cached_pipeline);
    let fresh = analyze(&plain_pipeline);
    // Cold walk computes all six stage artifacts (assembled, setup,
    // rough, structural, resistance, stack); the warm repeat
    // short-circuits on the stack.
    assert_eq!(cache.misses(), 6, "first analyze fills every stage");
    assert_eq!(cache.hits(), 1, "second analyze hits the stack artifact");

    let a = first.fused_map.expect("fused");
    let b = second.fused_map.expect("fused");
    let c = fresh.fused_map.expect("fused");
    assert_eq!(bits32(a.data()), bits32(b.data()), "hit == miss");
    assert_eq!(bits32(a.data()), bits32(c.data()), "cached == uncached");
}
