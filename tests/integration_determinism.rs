//! Bitwise determinism of the parallel hot paths: every result must be
//! identical — bit for bit — whether the runtime uses one thread or
//! many. The kernels in `irf-runtime` guarantee this by fixing the
//! partition and reduction order independently of the thread count.

use ir_fusion::config::FusionConfig;
use ir_fusion::pipeline::{IrFusionPipeline, PreparedSample};
use irf_data::synth::{synthesize, SynthSpec};
use irf_data::Dataset;
use irf_features::{FeatureConfig, FeatureExtractor};
use irf_nn::{ParamStore, Tape, Tensor};
use irf_pg::PowerGrid;
use irf_runtime::Xoshiro256pp;
use irf_sparse::{CsrMatrix, TripletMatrix};
use std::sync::Mutex;

/// The global thread count is process-wide state; tests in this binary
/// run concurrently, so every comparison holds this lock while it
/// flips between serial and parallel execution.
static THREAD_CONFIG: Mutex<()> = Mutex::new(());

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let _guard = THREAD_CONFIG.lock().unwrap_or_else(|e| e.into_inner());
    irf_runtime::set_num_threads(n);
    let result = f();
    irf_runtime::set_num_threads(0);
    result
}

fn bits64(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn bits32(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// A 2-D grid Laplacian with grounded corners — large enough that the
/// parallel kernels split it across several chunks.
fn grid_laplacian(side: usize) -> CsrMatrix {
    let n = side * side;
    let mut t = TripletMatrix::new(n, n);
    let mut rng = Xoshiro256pp::seed_from_u64(0xDE_7E);
    for r in 0..side {
        for c in 0..side {
            let i = r * side + c;
            if c + 1 < side {
                t.stamp_conductance(i, i + 1, rng.random_range(0.5f64..2.0));
            }
            if r + 1 < side {
                t.stamp_conductance(i, i + side, rng.random_range(0.5f64..2.0));
            }
        }
    }
    t.stamp_grounded_conductance(0, 1.0);
    t.stamp_grounded_conductance(n - 1, 1.0);
    t.to_csr()
}

#[test]
fn spmv_and_residual_are_bitwise_identical_across_thread_counts() {
    let a = grid_laplacian(80); // 6400 rows -> several 2048-row chunks
    let n = a.rows();
    let mut rng = Xoshiro256pp::seed_from_u64(0xDE_01);
    let x: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0f64..1.0)).collect();
    let b: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0f64..1.0)).collect();

    let (y1, r1) = with_threads(1, || {
        let mut y = vec![0.0; n];
        let mut r = vec![0.0; n];
        a.spmv_into(&x, &mut y);
        a.residual_into(&b, &x, &mut r);
        (y, r)
    });
    for threads in [2, 4, 8] {
        let (yn, rn) = with_threads(threads, || {
            let mut y = vec![0.0; n];
            let mut r = vec![0.0; n];
            a.spmv_into(&x, &mut y);
            a.residual_into(&b, &x, &mut r);
            (y, r)
        });
        assert_eq!(
            bits64(&y1),
            bits64(&yn),
            "spmv differs at {threads} threads"
        );
        assert_eq!(
            bits64(&r1),
            bits64(&rn),
            "residual differs at {threads} threads"
        );
    }
}

#[test]
fn dot_product_is_bitwise_identical_across_thread_counts() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xDE_02);
    let n = 50_000; // spans several reduction chunks
    let x: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0f64..1.0)).collect();
    let y: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0f64..1.0)).collect();
    let d1 = with_threads(1, || irf_sparse::vector::dot(&x, &y));
    for threads in [2, 4, 8] {
        let dn = with_threads(threads, || irf_sparse::vector::dot(&x, &y));
        assert_eq!(
            d1.to_bits(),
            dn.to_bits(),
            "dot differs at {threads} threads"
        );
    }
}

/// Runs one conv2d forward + backward pass and returns the output and
/// all three gradients.
fn conv_pass(x0: &Tensor, w0: &Tensor, b0: &Tensor) -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut store = ParamStore::new();
    let mut tape = Tape::new();
    let x = tape.leaf(x0.clone());
    let w = tape.leaf(w0.clone());
    let b = tape.leaf(b0.clone());
    let y = tape.conv2d(x, w, b, 1, 1);
    let out = tape.value(y).data().to_vec();
    let seed = Tensor::filled(tape.value(y).shape(), 1.0);
    tape.backward(y, seed, &mut store);
    let dx = tape.grad(x).expect("dx").data().to_vec();
    let dw = tape.grad(w).expect("dw").data().to_vec();
    let db = tape.grad(b).expect("db").data().to_vec();
    (out, dx, dw, db)
}

#[test]
fn conv2d_forward_and_backward_are_bitwise_identical_across_thread_counts() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xDE_03);
    let mut tensor = |shape: [usize; 4]| {
        let n: usize = shape.iter().product();
        let data: Vec<f32> = (0..n).map(|_| rng.random_range(-1.0f32..1.0)).collect();
        Tensor::from_vec(shape, data)
    };
    let x = tensor([2, 3, 16, 16]);
    let w = tensor([4, 3, 3, 3]);
    let b = tensor([1, 4, 1, 1]);

    let serial = with_threads(1, || conv_pass(&x, &w, &b));
    for threads in [2, 4, 8] {
        let par = with_threads(threads, || conv_pass(&x, &w, &b));
        assert_eq!(
            bits32(&serial.0),
            bits32(&par.0),
            "conv output at {threads}"
        );
        assert_eq!(bits32(&serial.1), bits32(&par.1), "conv dx at {threads}");
        assert_eq!(bits32(&serial.2), bits32(&par.2), "conv dw at {threads}");
        assert_eq!(bits32(&serial.3), bits32(&par.3), "conv db at {threads}");
    }
}

#[test]
fn feature_stack_is_bitwise_identical_across_thread_counts() {
    let grid = PowerGrid::from_netlist(&synthesize(&SynthSpec::default())).expect("valid");
    let mut rng = Xoshiro256pp::seed_from_u64(0xDE_04);
    let drops: Vec<f64> = (0..grid.nodes.len())
        .map(|_| rng.random_range(0.0f64..2e-3))
        .collect();
    let extractor = FeatureExtractor::new(FeatureConfig::default());

    let serial = with_threads(1, || extractor.extract(&grid, &drops)).expect("grid has pads");
    for threads in [2, 4, 8] {
        let par =
            with_threads(threads, || extractor.extract(&grid, &drops)).expect("grid has pads");
        assert_eq!(serial.names(), par.names(), "channel order at {threads}");
        for ((a, b), name) in serial.maps().iter().zip(par.maps()).zip(serial.names()) {
            assert_eq!(
                bits32(a.data()),
                bits32(b.data()),
                "channel {name} differs at {threads} threads"
            );
        }
    }
}

#[test]
fn shortest_path_fanout_is_bitwise_identical_across_thread_counts() {
    // Many pads -> several per-pad Dijkstra chunks; the in-order fold
    // must make the averaged resistances thread-count invariant.
    let spec = SynthSpec {
        pads: 9,
        seed: 21,
        ..SynthSpec::default()
    };
    let grid = PowerGrid::from_netlist(&synthesize(&spec)).expect("valid");
    assert!(grid.pads.len() > 4, "need multiple Dijkstra chunks");

    let serial = with_threads(1, || {
        irf_features::shortest_path::shortest_path_resistance_per_node(&grid)
    })
    .expect("grid has pads");
    for threads in [2, 4, 8] {
        let par = with_threads(threads, || {
            irf_features::shortest_path::shortest_path_resistance_per_node(&grid)
        })
        .expect("grid has pads");
        assert_eq!(
            bits64(&serial),
            bits64(&par),
            "per-node resistance differs at {threads} threads"
        );
    }
}

#[test]
fn chunked_spice_parse_is_identical_across_thread_counts() {
    // The parallel parser must produce the same netlist — same element
    // order, same interned node ids — as a serial single-chunk parse,
    // at any thread count and chunk granularity.
    let text = irf_spice::write(&synthesize(&SynthSpec {
        seed: 22,
        ..SynthSpec::default()
    }));
    let reference = with_threads(1, || irf_spice::parse_chunked(&text, usize::MAX))
        .expect("netlist round-trips");
    for threads in [1, 2, 4, 8] {
        for cards_per_chunk in [7, 64, 1024] {
            let parsed = with_threads(threads, || irf_spice::parse_chunked(&text, cards_per_chunk))
                .expect("netlist round-trips");
            assert_eq!(
                parsed, reference,
                "parse differs at {threads} threads, {cards_per_chunk} cards/chunk"
            );
        }
    }
}

fn assert_samples_bitwise_equal(a: &PreparedSample, b: &PreparedSample, what: &str) {
    assert_eq!(
        a.features.names(),
        b.features.names(),
        "{what}: channel order"
    );
    for ((ma, mb), name) in a
        .features
        .maps()
        .iter()
        .zip(b.features.maps())
        .zip(a.features.names())
    {
        assert_eq!(
            bits32(ma.data()),
            bits32(mb.data()),
            "{what}: channel {name}"
        );
    }
    assert_eq!(
        bits32(a.label.data()),
        bits32(b.label.data()),
        "{what}: label"
    );
    assert_eq!(
        bits32(a.rough.data()),
        bits32(b.rough.data()),
        "{what}: rough map"
    );
}

#[test]
fn pipeline_prepare_is_bitwise_identical_across_thread_counts() {
    let dataset = Dataset::generate(1, 1, 0, 11);
    let design = &dataset.designs[0];

    let mut cfg = FusionConfig::tiny();
    cfg.num_threads = 1;
    let serial = {
        let _guard = THREAD_CONFIG.lock().unwrap_or_else(|e| e.into_inner());
        let sample = IrFusionPipeline::new(cfg).prepare(design);
        irf_runtime::set_num_threads(0);
        sample
    };
    for threads in [4, 8] {
        cfg.num_threads = threads;
        let par = {
            let _guard = THREAD_CONFIG.lock().unwrap_or_else(|e| e.into_inner());
            let sample = IrFusionPipeline::new(cfg).prepare(design);
            irf_runtime::set_num_threads(0);
            sample
        };
        assert_samples_bitwise_equal(&serial, &par, &format!("{threads} threads"));
        // Rotation augmentation is parallel too and must agree.
        let (r1, rn) = (
            with_threads(1, || serial.rotated(1)),
            with_threads(threads, || serial.rotated(1)),
        );
        assert_samples_bitwise_equal(&r1, &rn, &format!("rot90 at {threads} threads"));
    }
}
