//! The tracing determinism contract: installing a [`Collector`] only
//! *observes* the pipeline — every output is bitwise identical with
//! tracing enabled or disabled, at any thread count — and the captured
//! trace covers every major stage (SPICE parse, MNA assembly, AMG
//! setup, PCG solve, feature extraction, NN forward).

use ir_fusion::config::FusionConfig;
use ir_fusion::pipeline::IrFusionPipeline;
use ir_fusion::TrainedModel;
use irf_data::synth::{synthesize, SynthSpec};
use irf_data::Dataset;
use irf_models::ModelKind;
use irf_pg::{GridMap, PowerGrid};
use irf_trace::Collector;
use std::sync::Mutex;

/// The global thread count and the trace collector are both
/// process-wide state; runs that touch either hold this lock.
static PROCESS_STATE: Mutex<()> = Mutex::new(());

fn bits32(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// One full end-to-end run: SPICE text -> grid -> rough solve +
/// features -> NN forward. Returns everything float-valued.
fn run_pipeline(
    pipeline: &IrFusionPipeline,
    trained: &TrainedModel,
    spice_text: &str,
) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let netlist = irf_spice::parse(spice_text).expect("valid netlist");
    let grid = PowerGrid::from_netlist(&netlist).expect("valid grid");
    let stack = pipeline.prepare_stack(&grid).expect("grid has pads");
    let fused: GridMap = pipeline.predict(trained, &stack);
    let feature_bits: Vec<u32> = stack
        .features
        .maps()
        .iter()
        .flat_map(|m| m.data().iter().map(|x| x.to_bits()))
        .collect();
    (
        feature_bits,
        bits32(stack.rough.data()),
        bits32(fused.data()),
    )
}

#[test]
fn tracing_is_zero_overhead_and_covers_every_stage() {
    let config = FusionConfig::tiny();
    let dataset = Dataset::generate(2, 2, 1, 7);
    let trained = ir_fusion::train(ModelKind::IrEdge, &dataset, &config);
    let pipeline = IrFusionPipeline::new(config);
    let spice_text = irf_spice::write(&synthesize(&SynthSpec {
        seed: 3,
        ..SynthSpec::default()
    }));

    let guard = PROCESS_STATE.lock().unwrap_or_else(|e| e.into_inner());
    let baseline = {
        irf_runtime::set_num_threads(1);
        let out = run_pipeline(&pipeline, &trained, &spice_text);
        irf_runtime::set_num_threads(0);
        out
    };

    for threads in [1, 4, 8] {
        irf_runtime::set_num_threads(threads);

        // Without a collector: the relaxed-load fast path.
        let silent = run_pipeline(&pipeline, &trained, &spice_text);

        // With a collector: identical numbers, plus a trace.
        let collector = Collector::install().expect("no competing collector");
        let recorded = run_pipeline(&pipeline, &trained, &spice_text);
        let trace = collector.finish();

        irf_runtime::set_num_threads(0);

        assert_eq!(
            baseline, silent,
            "untraced outputs differ at {threads} threads"
        );
        assert_eq!(
            baseline, recorded,
            "traced outputs differ at {threads} threads"
        );

        let names: Vec<&str> = trace.events.iter().map(|e| e.name).collect();
        for stage in [
            "spice_parse",
            "mna_assembly",
            "rough_solve",
            "amg_setup",
            "pcg_solve",
            "feature_stack",
            "nn_forward",
        ] {
            assert!(
                names.contains(&stage),
                "stage {stage} missing from trace at {threads} threads: {names:?}"
            );
        }

        // The solver spans carry their telemetry as attributes.
        let pcg = trace
            .events
            .iter()
            .find(|e| e.name == "pcg_solve")
            .expect("pcg span");
        assert!(pcg.args.iter().any(|(k, _)| *k == "iterations"));
        assert!(pcg.args.iter().any(|(k, _)| *k == "residual_history"));
        let amg = trace
            .events
            .iter()
            .find(|e| e.name == "amg_setup")
            .expect("amg span");
        assert!(amg.args.iter().any(|(k, _)| *k == "levels"));
        assert!(amg.args.iter().any(|(k, _)| *k == "operator_complexity"));

        // The export round-trips into non-empty Chrome JSON and a
        // profile tree mentioning the solve.
        let json = trace.to_chrome_json();
        assert!(json.contains("\"name\":\"pcg_solve\""));
        assert!(trace.profile_tree().contains("rough_solve"));
    }
    drop(guard);
}
