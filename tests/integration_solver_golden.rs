//! Cross-crate integration: every solver agrees with the direct
//! factorization on realistic synthesized grids.

use irf_data::{synthesize, SynthSpec};
use irf_pg::PowerGrid;
use irf_sparse::random_walk::{RandomWalkConfig, RandomWalkSolver};
use irf_sparse::{Solver, SolverKind};

fn system() -> (irf_pg::PgSystem, PowerGrid) {
    let grid = PowerGrid::from_netlist(&synthesize(&SynthSpec::default())).expect("valid");
    (grid.build_system(), grid)
}

#[test]
fn iterative_solvers_match_cholesky_on_a_real_grid() {
    let (sys, _) = system();
    let golden = Solver::new(SolverKind::Cholesky).solve(&sys.matrix, &sys.rhs);
    for kind in [SolverKind::Cg, SolverKind::JacobiPcg, SolverKind::AmgPcg] {
        let r = Solver::new(kind)
            .with_tolerance(1e-11)
            .with_max_iterations(5000)
            .solve(&sys.matrix, &sys.rhs);
        assert!(r.converged, "{kind:?} failed to converge");
        let worst =
            r.x.iter()
                .zip(&golden.x)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
        assert!(worst < 1e-8, "{kind:?} deviates by {worst:e}");
    }
}

#[test]
fn amg_pcg_converges_much_faster_than_cg_on_pg_systems() {
    let (sys, _) = system();
    let cg = Solver::new(SolverKind::Cg)
        .with_tolerance(1e-8)
        .with_max_iterations(20_000)
        .solve(&sys.matrix, &sys.rhs);
    let amg = Solver::new(SolverKind::AmgPcg)
        .with_tolerance(1e-8)
        .solve(&sys.matrix, &sys.rhs);
    assert!(cg.converged && amg.converged);
    assert!(
        amg.iterations * 3 < cg.iterations,
        "AMG-PCG {} vs CG {} iterations",
        amg.iterations,
        cg.iterations
    );
}

#[test]
fn random_walk_estimates_the_worst_node() {
    let (sys, _) = system();
    let golden = Solver::new(SolverKind::Cholesky).solve(&sys.matrix, &sys.rhs);
    let worst = golden
        .x
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap();
    let rw = RandomWalkSolver::new(
        &sys.matrix,
        RandomWalkConfig {
            walks_per_node: 3000,
            ..RandomWalkConfig::default()
        },
    );
    let est = rw.solve_node(&sys.rhs, worst);
    let exact = golden.x[worst];
    assert!(
        (est - exact).abs() < 0.15 * exact,
        "random walk {est:e} vs exact {exact:e}"
    );
}

#[test]
fn drop_coordinates_keep_solutions_nonnegative() {
    for seed in [1u64, 5, 9] {
        let spec = SynthSpec {
            seed,
            hotspot_clusters: 2,
            hotspot_fraction: 0.5,
            stripe_jitter: 0.2,
            blockages: 1,
            ..SynthSpec::default()
        };
        let grid = PowerGrid::from_netlist(&synthesize(&spec)).expect("valid");
        let sys = grid.build_system();
        let r = Solver::new(SolverKind::Cholesky).solve(&sys.matrix, &sys.rhs);
        assert!(
            r.x.iter().all(|&d| d >= -1e-12),
            "seed {seed}: negative drop found"
        );
    }
}
