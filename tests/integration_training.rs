//! Cross-crate integration: the training loop improves over the raw
//! numerical baseline's weaknesses and checkpoints round-trip.

use ir_fusion::{evaluate_model, train, FusionConfig, IrFusionPipeline};
use irf_data::Dataset;
use irf_metrics::MetricReport;
use irf_models::ModelKind;

fn tiny_cfg(epochs: usize) -> FusionConfig {
    let mut cfg = FusionConfig::tiny();
    cfg.train.epochs = epochs;
    cfg
}

#[test]
fn training_beats_an_untrained_model() {
    // Fitting capability: on a design the model *trained on*, the
    // trained weights must beat the random initialization. (Held-out
    // generalization at this smoke scale is too noisy to assert on;
    // the bench harness measures it at the paper-shaped scale.)
    let ds = Dataset::generate(3, 2, 1, 17);
    let mut cfg = tiny_cfg(8);
    cfg.train.curriculum = None;
    let untrained = train(ModelKind::IrFusion, &ds, &tiny_cfg(0));
    let trained = train(ModelKind::IrFusion, &ds, &cfg);
    // Evaluate both on training design 0 by re-pointing the split.
    let mut eval_ds = ds.clone();
    eval_ds.test_indices = vec![0];
    let pipeline = IrFusionPipeline::new(cfg);
    let before = MetricReport::mean(&evaluate_model(&untrained, &eval_ds, &pipeline));
    let after = MetricReport::mean(&evaluate_model(&trained, &eval_ds, &pipeline));
    assert!(
        after.mae_volts < before.mae_volts,
        "training should reduce MAE on a training design: {:.3e} -> {:.3e}",
        before.mae_volts,
        after.mae_volts
    );
}

#[test]
fn checkpoint_roundtrip_preserves_predictions() {
    let ds = Dataset::generate(2, 2, 1, 23);
    let cfg = tiny_cfg(2);
    let trained = train(ModelKind::IrEdge, &ds, &cfg);
    let pipeline = IrFusionPipeline::new(cfg);
    let before = evaluate_model(&trained, &ds, &pipeline);

    // Save, then reload into a second bundle of the same architecture
    // (trained for zero epochs, so its weights differ until loaded).
    let mut buf = Vec::new();
    irf_nn::serialize::save(&trained.store, &mut buf).expect("save");
    let mut reloaded = train(ModelKind::IrEdge, &ds, &tiny_cfg(0));
    irf_nn::serialize::load(&mut reloaded.store, buf.as_slice()).expect("load");
    reloaded.label_scale = trained.label_scale;
    let after = evaluate_model(&reloaded, &ds, &pipeline);
    for (a, b) in before.iter().zip(&after) {
        assert!((a.mae_volts - b.mae_volts).abs() < 1e-9, "prediction drift");
    }
}

#[test]
fn all_table1_models_survive_a_training_step() {
    let ds = Dataset::generate(1, 1, 1, 31);
    let cfg = tiny_cfg(1);
    for kind in ModelKind::TABLE1 {
        let trained = train(kind, &ds, &cfg);
        assert!(
            trained.loss_history[0].is_finite(),
            "{:?} produced a non-finite loss",
            kind
        );
        let reports = evaluate_model(&trained, &ds, &IrFusionPipeline::new(cfg));
        assert!(reports[0].mae_volts.is_finite());
    }
}

#[test]
fn ablated_feature_configs_train_end_to_end() {
    let ds = Dataset::generate(1, 1, 1, 37);
    let mut cfg = tiny_cfg(1);
    cfg.feature.numerical = false;
    let t = train(ModelKind::IrFusion, &ds, &cfg);
    assert!(t.loss_history[0].is_finite());
    cfg.feature.hierarchical = false;
    let t = train(ModelKind::IrFusion, &ds, &cfg);
    assert!(t.loss_history[0].is_finite());
}
